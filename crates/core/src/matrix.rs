//! Precomputed dominance probabilities for the refinement phase.
//!
//! During refinement, CP evaluates `Pr(an)` on `P − Γ` for many candidate
//! contingency sets `Γ`. By Lemma 1 (and Lemma 3), only the candidate
//! causes influence `Pr(an)`, so the evaluation reduces to
//!
//! ```text
//! Pr(an | P − Γ) = Σ_i  w_i · Π_{c ∈ Cc − Γ} (1 − dp[c][i])
//! ```
//!
//! where `w_i` is the appearance weight of `an`'s `i`-th sample (or
//! discretisation cell, for the pdf model) and `dp[c][i]` is Eq. 3's
//! probability that candidate `c` dominates `q` w.r.t. that sample. This
//! struct stores `dp` once so every subset check is a tight loop.

use crp_geom::{Point, PROB_EPSILON};
use crp_skyline::dominance_probability;
use crp_uncertain::UncertainDataset;

/// Dominance-probability matrix of one non-answer against its candidate
/// causes. Rows are candidates (by *candidate index*, the position within
/// the candidate list); columns are the non-answer's samples/cells.
///
/// Two layouts are kept side by side:
///
/// * `dp` — candidate-major (`dp[c][i]`), the natural build order and
///   the layout of the exact reference kernels,
/// * `comp` — **sample-major complements** (`comp[i][c] = 1 − dp[c][i]`),
///   so the per-sample survival product of the refine hot path walks
///   contiguous memory and chunks into independent partial products
///   (see [`DominanceMatrix::pr_with_removed_columnar`]).
#[derive(Clone, Debug)]
pub struct DominanceMatrix {
    /// `dp[c * samples + i]`, row-major.
    dp: Vec<f64>,
    /// `1 − dp`, sample-major: `comp[i * candidates + c]`.
    comp: Vec<f64>,
    /// `w_i`: appearance weight per sample/cell of the non-answer.
    weights: Vec<f64>,
    candidates: usize,
}

/// Builds the sample-major complement layout from the row-major `dp`.
fn sample_major_complements(dp: &[f64], candidates: usize, samples: usize) -> Vec<f64> {
    let mut comp = vec![1.0f64; candidates * samples];
    for c in 0..candidates {
        for i in 0..samples {
            comp[i * candidates + c] = 1.0 - dp[c * samples + i];
        }
    }
    comp
}

/// Survival product of one sample-major row under a removal mask, with
/// 4 independent accumulator lanes so the loop is free of the serial
/// multiply dependency (auto-vectorization-friendly). Removed
/// candidates contribute an exact `1.0` factor; since `x * 1.0 == x`
/// for every finite `x`, masking never perturbs the value — only the
/// lane reassociation can, by a few ulp (call sites guard-band their
/// classifications against the exact reference kernel).
#[inline]
fn masked_product(row: &[f64], removed: &[bool]) -> f64 {
    const LANES: usize = 4;
    let chunks = row.len() / LANES * LANES;
    let mut acc = [1.0f64; LANES];
    for (vals, gone) in row[..chunks]
        .chunks_exact(LANES)
        .zip(removed[..chunks].chunks_exact(LANES))
    {
        for l in 0..LANES {
            acc[l] *= if gone[l] { 1.0 } else { vals[l] };
        }
    }
    let mut prod = (acc[0] * acc[1]) * (acc[2] * acc[3]);
    for (v, g) in row[chunks..].iter().zip(&removed[chunks..]) {
        prod *= if *g { 1.0 } else { *v };
    }
    prod
}

impl DominanceMatrix {
    /// Builds the matrix for the discrete-sample model: candidate rows
    /// are dataset positions `cand_positions`, columns are the samples of
    /// the object at `an_pos`.
    pub fn build(
        ds: &UncertainDataset,
        an_pos: usize,
        q: &Point,
        cand_positions: &[usize],
    ) -> Self {
        let an = ds.object_at(an_pos);
        let samples = an.sample_count();
        let mut dp = Vec::with_capacity(cand_positions.len() * samples);
        for &c in cand_positions {
            let obj = ds.object_at(c);
            for s in an.samples() {
                dp.push(dominance_probability(obj, s.point(), q));
            }
        }
        let weights: Vec<f64> = an.samples().iter().map(|s| s.prob()).collect();
        let comp = sample_major_complements(&dp, cand_positions.len(), weights.len());
        Self {
            dp,
            comp,
            weights,
            candidates: cand_positions.len(),
        }
    }

    /// Builds the matrix from raw parts (used by the pdf model, which
    /// computes `dp` by closed-form box integration).
    ///
    /// # Panics
    ///
    /// Panics if `dp.len() != candidates * weights.len()`.
    pub fn from_parts(dp: Vec<f64>, weights: Vec<f64>, candidates: usize) -> Self {
        assert_eq!(
            dp.len(),
            candidates * weights.len(),
            "matrix shape mismatch"
        );
        let comp = sample_major_complements(&dp, candidates, weights.len());
        Self {
            dp,
            comp,
            weights,
            candidates,
        }
    }

    /// Number of candidate rows.
    #[inline]
    pub fn candidates(&self) -> usize {
        self.candidates
    }

    /// Number of sample/cell columns.
    #[inline]
    pub fn samples(&self) -> usize {
        self.weights.len()
    }

    /// `dp[c][i]`.
    #[inline]
    pub fn dominance(&self, c: usize, i: usize) -> f64 {
        self.dp[c * self.weights.len() + i]
    }

    /// Appearance weight of sample/cell `i`.
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// True when candidate `c` dominates `q` w.r.t. every sample with
    /// probability 1 — the Lemma 4 membership test (`c ∈ Ca`).
    pub fn forces_zero(&self, c: usize) -> bool {
        (0..self.samples()).all(|i| self.dominance(c, i) >= 1.0 - PROB_EPSILON)
    }

    /// True when candidate `c` has any dominating mass at all; rows that
    /// fail this are not candidates (Lemma 1) and should be filtered out
    /// before refinement.
    pub fn has_mass(&self, c: usize) -> bool {
        (0..self.samples()).any(|i| self.dominance(c, i) > 0.0)
    }

    /// Weighted total dominance mass of candidate `c` — a heuristic for
    /// how much removing `c` can lift `Pr(an)`. Used to order the FMCS
    /// search space so high-impact subsets are tried first (any order is
    /// correct; this one finds valid sets sooner on deep non-answers).
    pub fn impact(&self, c: usize) -> f64 {
        let l = self.weights.len();
        self.weights
            .iter()
            .enumerate()
            .map(|(i, &w)| w * self.dp[c * l + i])
            .sum()
    }

    /// `Pr(an | P − Γ)` where `removed[c]` marks candidates in `Γ`.
    pub fn pr_with_removed(&self, removed: &[bool]) -> f64 {
        debug_assert_eq!(removed.len(), self.candidates);
        let l = self.weights.len();
        let mut total = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            let mut survive = w;
            for (c, &gone) in removed.iter().enumerate() {
                if gone {
                    continue;
                }
                survive *= 1.0 - self.dp[c * l + i];
                if survive == 0.0 {
                    break;
                }
            }
            total += survive;
        }
        total
    }

    /// `Pr(an | P − Γ)` over the sample-major complement layout — the
    /// columnar fast kernel of the refine hot path. Same candidate set
    /// semantics as [`DominanceMatrix::pr_with_removed`]; values can
    /// differ by a few ulp because the 4-lane chunking reassociates the
    /// per-sample product, so classification call sites re-verify
    /// near-threshold verdicts against the exact reference kernel.
    pub fn pr_with_removed_columnar(&self, removed: &[bool]) -> f64 {
        debug_assert_eq!(removed.len(), self.candidates);
        let n = self.candidates;
        let mut total = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            total += w * masked_product(&self.comp[i * n..(i + 1) * n], removed);
        }
        total
    }

    /// `Pr(an)` with nothing removed.
    pub fn pr_full(&self) -> f64 {
        self.pr_with_removed(&vec![false; self.candidates])
    }

    /// Builds the incremental evaluator (see [`PrEvaluator`]).
    pub fn evaluator(&self) -> PrEvaluator<'_> {
        PrEvaluator::new(self)
    }

    /// For each subset size `t`, an upper bound on `Pr(an | P − Γ)` over
    /// all `Γ` with `|Γ| ≤ t` — the probability-based pruning extension.
    ///
    /// Per sample `i`, removing `Γ` divides out at most the `t` smallest
    /// factors `(1 − dp[c][i])`; dropping those factors entirely bounds
    /// the reachable product from above. Sound because each per-sample
    /// bound is independent of which `Γ` is chosen.
    ///
    /// This is the allocating reference; the hot path serves the same
    /// (bit-identical) values through the scratch workspace's memoised
    /// `max_pr_bound`, which sorts the factors once per matrix and
    /// memoises per `t`.
    pub fn max_pr_after_removing(&self, t: usize) -> f64 {
        let l = self.weights.len();
        let mut total = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            // Collect the factors, keep all but the t smallest.
            let mut factors: Vec<f64> = (0..self.candidates)
                .map(|c| 1.0 - self.dp[c * l + i])
                .collect();
            factors.sort_by(|a, b| a.partial_cmp(b).expect("finite probabilities"));
            let prod: f64 = factors.iter().skip(t.min(factors.len())).product();
            total += w * prod;
        }
        total
    }
}

/// Reusable workspace of the refine/FMCS hot path: every buffer a
/// subset check needs, owned outside the per-explain call chain so the
/// steady state allocates **nothing per candidate** (and nothing per
/// explain once the per-thread pool is warm — see [`with_scratch`]).
///
/// Holds three groups of state:
///
/// * the current **removal mask** over candidates (maintained by delta
///   moves; also the exact-fallback input and the `Γ` reconstruction
///   source),
/// * the **delta state** of the incremental evaluator — per sample, the
///   annihilator count and log-factor sum of the currently removed set,
///   refreshed from the mask every [`DELTA_REFRESH_INTERVAL`] moves so
///   floating-point drift stays far inside the guard band,
/// * the **probability-bound memo**: per-sample ascending factors sorted
///   once per matrix, plus one memoised bound value per subset size
///   (bit-identical to [`DominanceMatrix::max_pr_after_removing`]).
///
/// FMCS's forced/search/list index buffers ride along and are borrowed
/// by `std::mem::take` while a candidate search runs.
#[derive(Debug, Default)]
pub struct Scratch {
    /// `mask[c]`: candidate `c` is in the current removal set.
    pub(crate) mask: Vec<bool>,
    /// Per sample: annihilating members of the current removal set.
    delta_ones: Vec<u32>,
    /// Per sample: `Σ ln(1 − dp)` over the removed regular candidates.
    delta_logq: Vec<f64>,
    /// Delta moves since the last drift refresh.
    delta_moves: u64,
    /// Per sample, ascending `(1 − dp)` factors (`samples × candidates`,
    /// built lazily on the first bound request).
    sorted_factors: Vec<f64>,
    sorted_built: bool,
    /// Memoised `max_pr_after_removing(t)` per `t` (NaN = unset).
    bound_memo: Vec<f64>,
    /// FMCS forced-set buffer (candidate indices).
    pub(crate) forced: Vec<usize>,
    /// FMCS search-space buffer (candidate indices, impact-ordered).
    pub(crate) search: Vec<usize>,
    /// General removal-list buffer (Lemma 5/6 checks).
    pub(crate) list: Vec<usize>,
}

/// Delta moves between drift refreshes. Each move perturbs the
/// per-sample log sum by at most one ulp of its magnitude (bounded by
/// `|Γ|·|ln PROB_EPSILON|`), so the accumulated drift between refreshes
/// stays orders of magnitude below the classification guard band.
const DELTA_REFRESH_INTERVAL: u64 = 4096;

impl Scratch {
    /// Re-shapes every buffer for `matrix`, keeping allocations.
    pub(crate) fn reset_for(&mut self, matrix: &DominanceMatrix) {
        let n = matrix.candidates();
        let l = matrix.samples();
        self.mask.clear();
        self.mask.resize(n, false);
        self.delta_ones.clear();
        self.delta_ones.resize(l, 0);
        self.delta_logq.clear();
        self.delta_logq.resize(l, 0.0);
        self.delta_moves = 0;
        self.sorted_built = false;
        self.bound_memo.clear();
        self.bound_memo.resize(n + 1, f64::NAN);
    }

    /// [`DominanceMatrix::max_pr_after_removing`] without the per-call
    /// allocation and sort: factors are sorted once per matrix, each
    /// subset size is computed at most once, and the product runs in the
    /// reference's exact order — values are bit-identical, so pruning
    /// decisions (and with them every counter) cannot drift between the
    /// reference and the scratch-served path.
    pub(crate) fn max_pr_bound(&mut self, matrix: &DominanceMatrix, t: usize) -> f64 {
        let n = matrix.candidates();
        let l = matrix.samples();
        let t = t.min(n);
        let memo = self.bound_memo[t];
        if !memo.is_nan() {
            return memo;
        }
        if !self.sorted_built {
            self.sorted_factors.clear();
            self.sorted_factors.extend_from_slice(&matrix.comp);
            for i in 0..l {
                self.sorted_factors[i * n..(i + 1) * n]
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite probabilities"));
            }
            self.sorted_built = true;
        }
        let mut total = 0.0;
        for (i, &w) in matrix.weights.iter().enumerate() {
            let mut prod = 1.0f64;
            for &f in &self.sorted_factors[i * n + t..(i + 1) * n] {
                prod *= f;
            }
            total += w * prod;
        }
        self.bound_memo[t] = total;
        total
    }

    /// Clears the removal mask (delta state is reset separately by
    /// [`PrEvaluator::delta_begin`] / the direct-mode checker).
    pub(crate) fn clear_mask(&mut self) {
        self.mask.iter_mut().for_each(|m| *m = false);
    }
}

/// The probability-bound table shared by the candidate-parallel FMCS
/// workers: the per-sample factor sort is paid once at construction
/// (not once per candidate, which a per-worker [`Scratch`] memo would
/// cost), and each subset size's bound is computed at most once across
/// all workers — values are deterministic, so the lock-free publish is
/// idempotent and every reader sees the same (reference-bit-identical)
/// bound.
pub(crate) struct SharedBounds {
    /// Per sample, ascending `(1 − dp)` factors (`samples × candidates`).
    sorted: Vec<f64>,
    /// `max_pr_after_removing(t)` per `t`, as f64 bits; NaN bits = unset
    /// (a bound is a finite probability, so NaN cannot collide).
    memo: Vec<std::sync::atomic::AtomicU64>,
}

impl SharedBounds {
    pub(crate) fn new(matrix: &DominanceMatrix) -> Self {
        let n = matrix.candidates();
        let l = matrix.samples();
        let mut sorted = matrix.comp.clone();
        for i in 0..l {
            sorted[i * n..(i + 1) * n]
                .sort_by(|a, b| a.partial_cmp(b).expect("finite probabilities"));
        }
        Self {
            sorted,
            memo: (0..=n)
                .map(|_| std::sync::atomic::AtomicU64::new(f64::NAN.to_bits()))
                .collect(),
        }
    }

    /// The bound for subset size `t` — bit-identical to
    /// [`DominanceMatrix::max_pr_after_removing`] (same factor order,
    /// same product order).
    pub(crate) fn get(&self, matrix: &DominanceMatrix, t: usize) -> f64 {
        use std::sync::atomic::Ordering;
        let n = matrix.candidates();
        let t = t.min(n);
        let cached = f64::from_bits(self.memo[t].load(Ordering::Relaxed));
        if !cached.is_nan() {
            return cached;
        }
        let mut total = 0.0;
        for (i, &w) in matrix.weights.iter().enumerate() {
            let mut prod = 1.0f64;
            for &f in &self.sorted[i * n + t..(i + 1) * n] {
                prod *= f;
            }
            total += w * prod;
        }
        self.memo[t].store(total.to_bits(), Ordering::Relaxed);
        total
    }
}

thread_local! {
    static SCRATCH_POOL: std::cell::RefCell<Vec<Scratch>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Lends a per-thread [`Scratch`] to `f`. A stack (not a single slot)
/// so re-entrant borrows — the candidate-parallel FMCS driver running a
/// worker item on the calling thread — get their own workspace instead
/// of a `RefCell` panic. One scratch per rayon worker / per shard
/// thread on steady state; nothing is allocated once the pool is warm.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    let mut scratch = SCRATCH_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default();
    let out = f(&mut scratch);
    SCRATCH_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < 8 {
            pool.push(scratch);
        }
    });
    out
}

/// Incremental `Pr(an | P − Γ)` evaluation for large candidate sets.
///
/// The direct evaluation is `O(|Cc| · L)` per contingency-set check; FMCS
/// on deep non-answers (e.g. the NBA case study, hundreds of candidates)
/// performs millions of checks. This evaluator precomputes, per sample:
/// the count of *annihilating* factors (`dp = 1`, product term 0) and the
/// log-sum of the remaining factors over **all** candidates. A check for
/// a removal list `Γ` then only walks `Γ`: subtract its annihilator
/// count and its log-factors — `O(|Γ| · L)`.
///
/// Verdicts within `GUARD` of the threshold are re-verified by the exact
/// direct evaluation, so the log-space rounding (≤ ~1e-12 relative here)
/// can never flip a classification relative to [`DominanceMatrix::pr_with_removed`].
pub struct PrEvaluator<'a> {
    matrix: &'a DominanceMatrix,
    /// Per (candidate, sample): `ln(1 − dp)` for regular factors, NaN for
    /// annihilators (`dp ≥ 1 − PROB_EPSILON`).
    log_factors: Vec<f64>,
    /// Per sample: number of annihilating candidates.
    ones: Vec<u32>,
    /// Per sample: `Σ ln(1 − dp)` over the regular candidates.
    log_prod: Vec<f64>,
}

/// Width of the re-verification band around the decision threshold —
/// shared by every fast kernel (incremental log-space, delta-maintained,
/// and the chunked columnar product), whose absolute error is orders of
/// magnitude smaller.
pub(crate) const GUARD: f64 = 1e-6;

impl<'a> PrEvaluator<'a> {
    fn new(matrix: &'a DominanceMatrix) -> Self {
        let l = matrix.samples();
        let n = matrix.candidates();
        let mut log_factors = vec![f64::NAN; n * l];
        let mut ones = vec![0u32; l];
        let mut log_prod = vec![0.0f64; l];
        for c in 0..n {
            for i in 0..l {
                let dp = matrix.dominance(c, i);
                if dp >= 1.0 - crp_geom::PROB_EPSILON {
                    ones[i] += 1;
                } else {
                    let lf = (1.0 - dp).ln();
                    log_factors[c * l + i] = lf;
                    log_prod[i] += lf;
                }
            }
        }
        Self {
            matrix,
            log_factors,
            ones,
            log_prod,
        }
    }

    /// `Pr(an | P − Γ)` for a removal *list* of candidate indices
    /// (duplicates not allowed). Exact up to the guard band; use
    /// [`PrEvaluator::is_answer_with_removed`] for classifications.
    pub fn pr_with_removed_list(&self, removed: &[usize]) -> f64 {
        let l = self.matrix.samples();
        let mut total = 0.0;
        for i in 0..l {
            let w = self.matrix.weight(i);
            let mut ones = self.ones[i];
            let mut logq = 0.0;
            for &c in removed {
                let lf = self.log_factors[c * l + i];
                if lf.is_nan() {
                    ones -= 1;
                } else {
                    logq += lf;
                }
            }
            if ones == 0 {
                total += w * (self.log_prod[i] - logq).exp().min(1.0);
            }
        }
        total
    }

    /// Classifies `Pr(an | P − Γ) ≥ α` (within the shared probability
    /// tolerance), re-verifying near-threshold values with the exact
    /// direct evaluation.
    pub fn is_answer_with_removed(&self, removed: &[usize], alpha: f64) -> bool {
        let fast = self.pr_with_removed_list(removed);
        if (fast - alpha).abs() <= GUARD {
            // Near the decision boundary: recompute exactly.
            let mut mask = vec![false; self.matrix.candidates()];
            for &c in removed {
                mask[c] = true;
            }
            return self.matrix.pr_with_removed(&mask) >= alpha - crp_geom::PROB_EPSILON;
        }
        fast >= alpha - crp_geom::PROB_EPSILON
    }

    // --- delta-maintained state (the FMCS hot path) -------------------
    //
    // Instead of re-walking the removal list per subset, the enumerator
    // reports each successive subset as add/remove-one moves and the
    // per-sample state (annihilator count + log-factor sum of the
    // removed set) is maintained in a [`Scratch`] — `O(L)` per move and
    // `O(L)` per evaluation, independent of `|Γ|`.

    /// Resets the scratch delta state to `Γ = ∅`. The caller owns the
    /// mask and must have cleared it.
    pub(crate) fn delta_begin(&self, scratch: &mut Scratch) {
        scratch.delta_ones.iter_mut().for_each(|o| *o = 0);
        scratch.delta_logq.iter_mut().for_each(|q| *q = 0.0);
        scratch.delta_moves = 0;
    }

    /// Folds candidate `c` into the removed set. `scratch.mask[c]` must
    /// already be set (the periodic drift refresh rebuilds from the
    /// mask).
    pub(crate) fn delta_add(&self, c: usize, scratch: &mut Scratch) {
        debug_assert!(scratch.mask[c]);
        let l = self.matrix.samples();
        for i in 0..l {
            let lf = self.log_factors[c * l + i];
            if lf.is_nan() {
                scratch.delta_ones[i] += 1;
            } else {
                scratch.delta_logq[i] += lf;
            }
        }
        self.delta_tick(scratch);
    }

    /// Removes candidate `c` from the removed set. `scratch.mask[c]`
    /// must already be cleared.
    pub(crate) fn delta_remove(&self, c: usize, scratch: &mut Scratch) {
        debug_assert!(!scratch.mask[c]);
        let l = self.matrix.samples();
        for i in 0..l {
            let lf = self.log_factors[c * l + i];
            if lf.is_nan() {
                scratch.delta_ones[i] -= 1;
            } else {
                scratch.delta_logq[i] -= lf;
            }
        }
        self.delta_tick(scratch);
    }

    fn delta_tick(&self, scratch: &mut Scratch) {
        scratch.delta_moves += 1;
        if scratch.delta_moves >= DELTA_REFRESH_INTERVAL {
            self.delta_refresh(scratch);
        }
    }

    /// Rebuilds the delta state from the mask, zeroing accumulated
    /// floating-point drift.
    fn delta_refresh(&self, scratch: &mut Scratch) {
        scratch.delta_ones.iter_mut().for_each(|o| *o = 0);
        scratch.delta_logq.iter_mut().for_each(|q| *q = 0.0);
        scratch.delta_moves = 0;
        let l = self.matrix.samples();
        for c in 0..self.matrix.candidates() {
            if !scratch.mask[c] {
                continue;
            }
            for i in 0..l {
                let lf = self.log_factors[c * l + i];
                if lf.is_nan() {
                    scratch.delta_ones[i] += 1;
                } else {
                    scratch.delta_logq[i] += lf;
                }
            }
        }
    }

    /// `Pr(an | P − Γ)` for the delta-maintained removal set — `O(L)`,
    /// matching [`PrEvaluator::pr_with_removed_list`] up to the bounded
    /// drift the guard band absorbs.
    pub(crate) fn delta_pr(&self, scratch: &Scratch) -> f64 {
        let mut total = 0.0;
        for (i, &w) in self.matrix.weights.iter().enumerate() {
            if self.ones[i] == scratch.delta_ones[i] {
                total += w * (self.log_prod[i] - scratch.delta_logq[i]).exp().min(1.0);
            }
        }
        total
    }

    /// [`PrEvaluator::delta_pr`] with one extra candidate folded in on
    /// the fly — FMCS condition (ii), `Pr(an | P − Γ − {cc})`, without
    /// touching the maintained state.
    pub(crate) fn delta_pr_with_extra(&self, cc: usize, scratch: &Scratch) -> f64 {
        let l = self.matrix.samples();
        let mut total = 0.0;
        for (i, &w) in self.matrix.weights.iter().enumerate() {
            let lf = self.log_factors[cc * l + i];
            let (extra_one, extra_lf) = if lf.is_nan() { (1, 0.0) } else { (0, lf) };
            if self.ones[i] == scratch.delta_ones[i] + extra_one {
                total += w
                    * (self.log_prod[i] - scratch.delta_logq[i] - extra_lf)
                        .exp()
                        .min(1.0);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_uncertain::{ObjectId, UncertainObject};

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    /// an at (10,10) [certain]; q at (5,5); candidates:
    /// * c0 at (7,7): dominates with prob 1,
    /// * c1 two samples, one dominating: prob 0.5,
    /// * c2 far away: prob 0.
    fn fixture() -> (UncertainDataset, Point) {
        let ds = UncertainDataset::from_objects(vec![
            UncertainObject::certain(ObjectId(0), pt(10.0, 10.0)),
            UncertainObject::certain(ObjectId(1), pt(7.0, 7.0)),
            UncertainObject::with_equal_probs(ObjectId(2), vec![pt(8.0, 9.0), pt(30.0, 30.0)])
                .unwrap(),
            UncertainObject::certain(ObjectId(3), pt(40.0, 40.0)),
        ])
        .unwrap();
        (ds, pt(5.0, 5.0))
    }

    #[test]
    fn matrix_entries() {
        let (ds, q) = fixture();
        let m = DominanceMatrix::build(&ds, 0, &q, &[1, 2, 3]);
        assert_eq!(m.candidates(), 3);
        assert_eq!(m.samples(), 1);
        assert!((m.dominance(0, 0) - 1.0).abs() < 1e-12);
        assert!((m.dominance(1, 0) - 0.5).abs() < 1e-12);
        assert_eq!(m.dominance(2, 0), 0.0);
        assert!(m.forces_zero(0));
        assert!(!m.forces_zero(1));
        assert!(m.has_mass(0) && m.has_mass(1));
        assert!(!m.has_mass(2));
    }

    #[test]
    fn pr_with_removed_matches_reference() {
        let (ds, q) = fixture();
        let m = DominanceMatrix::build(&ds, 0, &q, &[1, 2, 3]);
        // Nothing removed: (1-1)(1-0.5)(1-0) = 0.
        assert_eq!(m.pr_full(), 0.0);
        // Remove c0: (1-0.5) = 0.5.
        assert!((m.pr_with_removed(&[true, false, false]) - 0.5).abs() < 1e-12);
        // Remove c0 and c1: 1.
        assert!((m.pr_with_removed(&[true, true, false]) - 1.0).abs() < 1e-12);
        // Cross-check against the skyline-crate evaluator.
        let reference = crp_skyline::pr_reverse_skyline(&ds, 0, &q, |j| j == 1);
        assert!((m.pr_with_removed(&[true, false, false]) - reference).abs() < 1e-12);
    }

    #[test]
    fn pr_is_monotone_in_removals() {
        let (ds, q) = fixture();
        let m = DominanceMatrix::build(&ds, 0, &q, &[1, 2, 3]);
        let base = m.pr_with_removed(&[false, false, false]);
        let one = m.pr_with_removed(&[true, false, false]);
        let two = m.pr_with_removed(&[true, true, false]);
        assert!(base <= one && one <= two);
    }

    #[test]
    fn probability_bound_is_sound_and_tight_at_extremes() {
        let (ds, q) = fixture();
        let m = DominanceMatrix::build(&ds, 0, &q, &[1, 2, 3]);
        // t = 0: bound equals Pr(an).
        assert!((m.max_pr_after_removing(0) - m.pr_full()).abs() < 1e-12);
        // t = all: bound is 1 (everything removable).
        assert!((m.max_pr_after_removing(3) - 1.0).abs() < 1e-12);
        // Bound dominates every actual removal of size <= t.
        for mask in 0u32..8 {
            let removed: Vec<bool> = (0..3).map(|c| mask & (1 << c) != 0).collect();
            let t = removed.iter().filter(|r| **r).count();
            assert!(
                m.pr_with_removed(&removed) <= m.max_pr_after_removing(t) + 1e-12,
                "mask {mask:b}"
            );
        }
    }

    #[test]
    fn multi_sample_weights() {
        // an with two samples of weight 0.5 each; one candidate dominating
        // w.r.t. sample 0 only.
        let ds = UncertainDataset::from_objects(vec![
            UncertainObject::with_equal_probs(ObjectId(0), vec![pt(10.0, 10.0), pt(0.0, 0.0)])
                .unwrap(),
            UncertainObject::certain(ObjectId(1), pt(7.0, 7.0)),
        ])
        .unwrap();
        let q = pt(5.0, 5.0);
        let m = DominanceMatrix::build(&ds, 0, &q, &[1]);
        assert_eq!(m.samples(), 2);
        // Pr(an) = 0.5·(1-1) + 0.5·(1-dp(sample1)).
        let expected = crp_skyline::pr_reverse_skyline(&ds, 0, &q, |_| false);
        assert!((m.pr_full() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_parts_validates_shape() {
        let _ = DominanceMatrix::from_parts(vec![0.0; 5], vec![1.0; 2], 3);
    }

    #[test]
    fn evaluator_matches_direct_on_random_matrices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6006);
        for round in 0..40 {
            let n = rng.random_range(1..=120);
            let l = rng.random_range(1..=6);
            let weights = vec![1.0 / l as f64; l];
            let dp: Vec<f64> = (0..n * l)
                .map(|_| match rng.random_range(0..5) {
                    0 => 0.0,
                    1 => 1.0,
                    2 => 1.0 - 1e-12, // inside the "one" tolerance
                    _ => rng.random_range(0.01..0.99),
                })
                .collect();
            let m = DominanceMatrix::from_parts(dp, weights, n);
            let ev = m.evaluator();
            for _ in 0..30 {
                let k = rng.random_range(0..=n.min(20));
                let mut removed: Vec<usize> = (0..n).collect();
                for i in (1..removed.len()).rev() {
                    let j = rng.random_range(0..=i);
                    removed.swap(i, j);
                }
                removed.truncate(k);
                let mut mask = vec![false; n];
                for &c in &removed {
                    mask[c] = true;
                }
                let exact = m.pr_with_removed(&mask);
                let fast = ev.pr_with_removed_list(&removed);
                assert!(
                    (exact - fast).abs() < 1e-9,
                    "round {round}: exact {exact} vs fast {fast}"
                );
                // Classification agreement at assorted thresholds,
                // including right at the computed value.
                for alpha in [0.1, 0.5, 0.9, exact.clamp(1e-6, 1.0)] {
                    assert_eq!(
                        ev.is_answer_with_removed(&removed, alpha),
                        exact >= alpha - crp_geom::PROB_EPSILON,
                        "round {round} alpha {alpha}"
                    );
                }
            }
        }
    }

    /// Random matrix mixing exact 0/1, near-1 and fractional entries —
    /// shared by the kernel-agreement tests below.
    fn random_matrix(rng: &mut rand::rngs::StdRng, n: usize, l: usize) -> DominanceMatrix {
        use rand::Rng;
        let weights = vec![1.0 / l as f64; l];
        let dp: Vec<f64> = (0..n * l)
            .map(|_| match rng.random_range(0..5) {
                0 => 0.0,
                1 => 1.0,
                2 => 1.0 - 1e-12,
                _ => rng.random_range(0.01..0.99),
            })
            .collect();
        DominanceMatrix::from_parts(dp, weights, n)
    }

    #[test]
    fn columnar_kernel_matches_reference_within_guard() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC01);
        for round in 0..40 {
            let n = rng.random_range(1..=97);
            let l = rng.random_range(1..=5);
            let m = random_matrix(&mut rng, n, l);
            for _ in 0..20 {
                let removed: Vec<bool> = (0..n).map(|_| rng.random_range(0..3) == 0).collect();
                let exact = m.pr_with_removed(&removed);
                let fast = m.pr_with_removed_columnar(&removed);
                // The chunked product only reassociates: agreement far
                // inside the classification guard band.
                assert!(
                    (exact - fast).abs() < GUARD / 1e3,
                    "round {round}: exact {exact} vs columnar {fast}"
                );
            }
        }
    }

    #[test]
    fn scratch_bound_is_bit_identical_to_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xB0_07);
        for _ in 0..20 {
            let n: usize = rng.random_range(0..=40);
            let l = rng.random_range(1..=4);
            let m = random_matrix(&mut rng, n.max(1), l);
            let mut scratch = Scratch::default();
            scratch.reset_for(&m);
            // Query in scattered order so the memo path (not just the
            // lazy sort) is exercised.
            for t in [3usize, 0, 7, 3, n + 5, 1, 0] {
                let reference = m.max_pr_after_removing(t);
                let served = scratch.max_pr_bound(&m, t);
                assert_eq!(reference.to_bits(), served.to_bits(), "t = {t}");
            }
        }
    }

    #[test]
    fn shared_bounds_are_bit_identical_to_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5B_0B);
        for _ in 0..10 {
            let n = rng.random_range(1..=40);
            let l = rng.random_range(1..=4);
            let m = random_matrix(&mut rng, n, l);
            let shared = SharedBounds::new(&m);
            for t in [0usize, 1, 3, n / 2, n, n + 3, 1] {
                let reference = m.max_pr_after_removing(t);
                let served = shared.get(&m, t);
                assert_eq!(reference.to_bits(), served.to_bits(), "t = {t}");
            }
        }
    }

    /// The satellite property test: the delta-maintained evaluator
    /// agrees with direct evaluation (within the guard band) on random
    /// matrices, across removal-set cardinalities, under long
    /// add/remove move sequences including drift refreshes.
    #[test]
    fn delta_state_matches_direct_across_cardinalities() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xDE17A);
        for round in 0..25 {
            let n = rng.random_range(2..=150);
            let l = rng.random_range(1..=5);
            let m = random_matrix(&mut rng, n, l);
            let ev = m.evaluator();
            let mut scratch = Scratch::default();
            scratch.reset_for(&m);
            ev.delta_begin(&mut scratch);
            // A long random walk over removal sets: every prefix is a
            // different cardinality; drift refresh fires on long walks.
            for step in 0..600 {
                let c = rng.random_range(0..n);
                if scratch.mask[c] {
                    scratch.mask[c] = false;
                    ev.delta_remove(c, &mut scratch);
                } else {
                    scratch.mask[c] = true;
                    ev.delta_add(c, &mut scratch);
                }
                if step % 7 != 0 {
                    continue;
                }
                let exact = m.pr_with_removed(&scratch.mask);
                let fast = ev.delta_pr(&scratch);
                assert!(
                    (exact - fast).abs() < GUARD / 1e2,
                    "round {round} step {step}: exact {exact} vs delta {fast}"
                );
                // Condition (ii) variant: fold one extra candidate in.
                let cc = rng.random_range(0..n);
                if !scratch.mask[cc] {
                    let mut mask2 = scratch.mask.clone();
                    mask2[cc] = true;
                    let exact2 = m.pr_with_removed(&mask2);
                    let fast2 = ev.delta_pr_with_extra(cc, &scratch);
                    assert!(
                        (exact2 - fast2).abs() < GUARD / 1e2,
                        "round {round} step {step}: extra {cc}: {exact2} vs {fast2}"
                    );
                }
            }
        }
    }

    #[test]
    fn evaluator_handles_annihilators() {
        // One annihilating candidate: Pr = 0 until it is removed.
        let m = DominanceMatrix::from_parts(vec![1.0, 0.5], vec![1.0], 2);
        let ev = m.evaluator();
        assert_eq!(ev.pr_with_removed_list(&[]), 0.0);
        assert_eq!(ev.pr_with_removed_list(&[1]), 0.0);
        assert!((ev.pr_with_removed_list(&[0]) - 0.5).abs() < 1e-12);
        assert!((ev.pr_with_removed_list(&[0, 1]) - 1.0).abs() < 1e-12);
    }
}
