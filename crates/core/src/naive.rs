//! The baselines of the paper's evaluation.
//!
//! * **Naive-I** (Fig. 6 comparator): finds candidate causes exactly like
//!   CP, then refines each by enumerating subsets of the *whole*
//!   candidate set in ascending cardinality — no Lemma 4/5/6 pruning, no
//!   `α = 1` fast path. Same I/O as CP, much more CPU.
//! * **Naive-II** (Fig. 11 comparator): finds the candidates of a
//!   non-reverse-skyline object with the CR window query, then *verifies*
//!   each candidate by subset enumeration instead of applying Lemma 7.
//!
//! Both are strategy selections over the shared pipeline: Naive-I is
//! the probabilistic pipeline with every [`CpConfig`] switch off, and
//! Naive-II is the certain pipeline with the
//! [`SubsetVerify`](crate::engine::certain::SubsetVerify) stage. Prefer
//! [`crate::ExplainEngine`] with
//! [`crate::ExplainStrategy::NaiveI`] /
//! [`crate::ExplainStrategy::NaiveII`].

use crate::config::CpConfig;
use crate::engine::certain::{run_certain, PointTreeDominators, SubsetVerify};
use crate::engine::filter::SampleWindowFilter;
use crate::engine::pipeline;
use crate::error::CrpError;
use crate::types::CrpOutcome;
use crp_geom::Point;
use crp_rtree::RTree;
use crp_uncertain::{ObjectId, UncertainDataset};

/// Naive-I: CP's filter + exhaustive refinement.
///
/// Accepts the same inputs as [`crate::cp`]; `max_subsets` bounds the
/// exponential refinement (`None` = unlimited).
#[deprecated(
    since = "0.2.0",
    note = "use ExplainEngine with ExplainStrategy::NaiveI"
)]
pub fn naive_i(
    ds: &UncertainDataset,
    tree: &RTree<ObjectId>,
    q: &Point,
    an_id: ObjectId,
    alpha: f64,
    max_subsets: Option<u64>,
) -> Result<CrpOutcome, CrpError> {
    let config = CpConfig {
        max_subsets,
        ..CpConfig::naive()
    };
    pipeline::run_probabilistic(
        ds,
        q,
        an_id,
        alpha,
        &config,
        &SampleWindowFilter::new(tree),
        None,
    )
}

/// Naive-II: CR's window filter + per-candidate subset verification.
///
/// Produces the same causes as [`crate::cr`] (Lemma 7 guarantees it) at a
/// cost exponential in the candidate count; `max_subsets` bounds the
/// verification (`None` = unlimited).
#[deprecated(
    since = "0.2.0",
    note = "use ExplainEngine with ExplainStrategy::NaiveII"
)]
pub fn naive_ii(
    ds: &UncertainDataset,
    tree: &RTree<ObjectId>,
    q: &Point,
    an_id: ObjectId,
    max_subsets: Option<u64>,
) -> Result<CrpOutcome, CrpError> {
    run_certain(
        ds,
        &PointTreeDominators { tree },
        q,
        an_id,
        &SubsetVerify { max_subsets },
        None,
    )
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::{cp, cr};
    use crp_rtree::RTreeParams;
    use crp_skyline::{build_object_rtree, build_point_rtree};
    use crp_uncertain::UncertainObject;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    #[test]
    fn naive_i_matches_cp_on_random_datasets() {
        let mut rng = StdRng::seed_from_u64(404);
        let mut compared = 0;
        for _ in 0..40 {
            let ds = UncertainDataset::from_objects((0..8).map(|i| {
                let l = rng.random_range(1..=3);
                UncertainObject::with_equal_probs(
                    ObjectId(i),
                    (0..l)
                        .map(|_| {
                            pt(
                                rng.random_range(0.0..20.0f64).round(),
                                rng.random_range(0.0..20.0f64).round(),
                            )
                        })
                        .collect::<Vec<_>>(),
                )
                .unwrap()
            }))
            .unwrap();
            let tree = build_object_rtree(&ds, RTreeParams::with_fanout(4));
            let q = pt(10.0, 10.0);
            let alpha = [0.3, 0.5, 0.8][rng.random_range(0..3usize)];
            for id in 0..8u32 {
                let a = cp(&ds, &tree, &q, ObjectId(id), alpha, &CpConfig::default());
                let b = naive_i(&ds, &tree, &q, ObjectId(id), alpha, None);
                match (a, b) {
                    (Ok(x), Ok(y)) => {
                        let xs: Vec<(ObjectId, usize)> = x
                            .causes
                            .iter()
                            .map(|c| (c.id, c.min_contingency.len()))
                            .collect();
                        let ys: Vec<(ObjectId, usize)> = y
                            .causes
                            .iter()
                            .map(|c| (c.id, c.min_contingency.len()))
                            .collect();
                        assert_eq!(xs, ys);
                        // Identical filter -> identical I/O.
                        assert_eq!(x.stats.query.node_accesses, y.stats.query.node_accesses);
                        compared += 1;
                    }
                    (Err(x), Err(y)) => assert_eq!(x, y),
                    (x, y) => panic!("divergence: {x:?} vs {y:?}"),
                }
            }
        }
        assert!(compared > 10, "exercised {compared} non-answers");
    }

    #[test]
    fn naive_ii_matches_cr() {
        let mut rng = StdRng::seed_from_u64(505);
        let mut compared = 0;
        for _ in 0..30 {
            let ds = UncertainDataset::from_points((0..30).map(|_| {
                pt(
                    rng.random_range(0.0..40.0f64).round(),
                    rng.random_range(0.0..40.0f64).round(),
                )
            }))
            .unwrap();
            let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
            let q = pt(20.0, 20.0);
            for id in 0..30u32 {
                let a = cr(&ds, &tree, &q, ObjectId(id));
                let b = naive_ii(&ds, &tree, &q, ObjectId(id), Some(2_000_000));
                match (a, b) {
                    (Ok(x), Ok(y)) => {
                        assert_eq!(x.causes.len(), y.causes.len());
                        for (cx, cy) in x.causes.iter().zip(y.causes.iter()) {
                            assert_eq!(cx.id, cy.id);
                            assert!((cx.responsibility - cy.responsibility).abs() < 1e-12);
                            assert_eq!(cx.min_contingency.len(), cy.min_contingency.len());
                        }
                        assert_eq!(x.stats.query.node_accesses, y.stats.query.node_accesses);
                        assert!(y.stats.subsets_examined >= x.stats.subsets_examined);
                        compared += 1;
                    }
                    (Err(x), Err(y)) => assert_eq!(x, y),
                    (x, y) => panic!("divergence: {x:?} vs {y:?}"),
                }
                if compared > 40 {
                    return;
                }
            }
        }
    }

    #[test]
    fn naive_ii_budget() {
        // 22 collinear dominators -> 2^21 subsets for the first candidate.
        let mut points = vec![pt(100.0, 100.0)];
        for i in 0..22 {
            points.push(pt(60.0 + i as f64, 60.0 + i as f64));
        }
        let ds = UncertainDataset::from_points(points).unwrap();
        let tree = build_point_rtree(&ds, RTreeParams::with_fanout(8));
        let err = naive_ii(&ds, &tree, &pt(50.0, 50.0), ObjectId(0), Some(10_000)).unwrap_err();
        assert!(matches!(err, CrpError::BudgetExhausted { .. }));
    }

    #[test]
    fn naive_i_validates_like_cp() {
        let ds = UncertainDataset::from_points(vec![pt(0.0, 0.0)]).unwrap();
        let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
        assert!(matches!(
            naive_i(&ds, &tree, &pt(1.0, 1.0), ObjectId(0), 2.0, None),
            Err(CrpError::InvalidAlpha(_))
        ));
        assert!(matches!(
            naive_i(&ds, &tree, &pt(1.0, 1.0), ObjectId(9), 0.5, None),
            Err(CrpError::UnknownObject(_))
        ));
    }
}
