//! The baselines of the paper's evaluation.
//!
//! * **Naive-I** (Fig. 6 comparator): finds candidate causes exactly like
//!   CP, then refines each by enumerating subsets of the *whole*
//!   candidate set in ascending cardinality — no Lemma 4/5/6 pruning, no
//!   `α = 1` fast path. Same I/O as CP, much more CPU.
//! * **Naive-II** (Fig. 11 comparator): finds the candidates of a
//!   non-reverse-skyline object with the CR window query, then *verifies*
//!   each candidate by subset enumeration instead of applying Lemma 7.

use crate::combinations::for_each_combination;
use crate::config::CpConfig;
use crate::cp::collect_candidates;
use crate::error::CrpError;
use crate::matrix::DominanceMatrix;
use crate::refine::refine;
use crate::types::{Cause, CrpOutcome, RunStats};
use crp_geom::{dominance_rect, dominates, Point, PROB_EPSILON};
use crp_rtree::RTree;
use crp_uncertain::{ObjectId, UncertainDataset};

/// Naive-I: CP's filter + exhaustive refinement.
///
/// Accepts the same inputs as [`crate::cp`]; `max_subsets` bounds the
/// exponential refinement (`None` = unlimited).
pub fn naive_i(
    ds: &UncertainDataset,
    tree: &RTree<ObjectId>,
    q: &Point,
    an_id: ObjectId,
    alpha: f64,
    max_subsets: Option<u64>,
) -> Result<CrpOutcome, CrpError> {
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(CrpError::InvalidAlpha(alpha));
    }
    if ds.is_empty() {
        return Err(CrpError::EmptyDataset);
    }
    let an_pos = ds.index_of(an_id).ok_or(CrpError::UnknownObject(an_id))?;
    let mut stats = RunStats::default();
    let candidates = collect_candidates(ds, tree, q, an_pos, &mut stats);
    let matrix = DominanceMatrix::build(ds, an_pos, q, &candidates);
    let pr_an = matrix.pr_full();
    if pr_an >= alpha - PROB_EPSILON {
        return Err(CrpError::NotANonAnswer { prob: pr_an });
    }
    let config = CpConfig {
        max_subsets,
        ..CpConfig::naive()
    };
    let recs = refine(&matrix, alpha, &config, &mut stats)?;
    let causes = recs
        .into_iter()
        .map(|r| {
            let gamma_len = r.gamma.len();
            Cause {
                id: ds.object_at(candidates[r.cand]).id(),
                responsibility: 1.0 / (1.0 + gamma_len as f64),
                min_contingency: r
                    .gamma
                    .into_iter()
                    .map(|g| ds.object_at(candidates[g]).id())
                    .collect(),
                counterfactual: r.counterfactual,
            }
        })
        .collect();
    Ok(CrpOutcome { causes, stats })
}

/// Naive-II: CR's window filter + per-candidate subset verification.
///
/// Produces the same causes as [`crate::cr`] (Lemma 7 guarantees it) at a
/// cost exponential in the candidate count; `max_subsets` bounds the
/// verification (`None` = unlimited).
pub fn naive_ii(
    ds: &UncertainDataset,
    tree: &RTree<ObjectId>,
    q: &Point,
    an_id: ObjectId,
    max_subsets: Option<u64>,
) -> Result<CrpOutcome, CrpError> {
    if ds.is_empty() {
        return Err(CrpError::EmptyDataset);
    }
    if !ds.is_certain() {
        return Err(CrpError::NotCertainData);
    }
    let an_pos = ds.index_of(an_id).ok_or(CrpError::UnknownObject(an_id))?;
    let an = ds.object_at(an_pos).certain_point();
    let mut stats = RunStats::default();

    let window = dominance_rect(an, q);
    let mut cand_ids: Vec<ObjectId> = Vec::new();
    tree.range_intersect(&window, &mut stats.query, |rect, &id| {
        if id != an_id && dominates(rect.lo(), an, q) {
            cand_ids.push(id);
        }
    });
    cand_ids.sort_unstable();
    cand_ids.dedup();
    stats.candidates = cand_ids.len();
    if cand_ids.is_empty() {
        return Err(CrpError::NotANonAnswer { prob: 1.0 });
    }

    // Verification: for certain data, `an` is an answer on P − X exactly
    // when X covers all candidates. The naive algorithm does not exploit
    // this (that insight IS Lemma 7); it enumerates subsets in ascending
    // cardinality and tests both contingency conditions per subset, which
    // is what makes it slow.
    let k_total = cand_ids.len();
    let mut budget_hit = None;
    let mut causes: Vec<Cause> = Vec::new();
    for cc in 0..k_total {
        let others: Vec<ObjectId> = cand_ids
            .iter()
            .copied()
            .filter(|&id| id != cand_ids[cc])
            .collect();
        let mut found: Option<Vec<ObjectId>> = None;
        'sizes: for k in 0..=others.len() {
            let stop = for_each_combination(others.len(), k, |combo| {
                stats.subsets_examined += 1;
                if let Some(max) = max_subsets {
                    if stats.subsets_examined > max {
                        budget_hit = Some(stats.subsets_examined);
                        return true;
                    }
                }
                stats.prsq_evaluations += 2;
                // Condition (i): a dominator survives in P − Γ (cc does,
                // always). Condition (ii): no dominator in P − Γ − {cc},
                // i.e. the combination covers every other candidate.
                let covers_all = combo.len() == others.len();
                if covers_all {
                    found = Some(combo.iter().map(|&i| others[i]).collect());
                    return true;
                }
                false
            });
            if budget_hit.is_some() {
                return Err(CrpError::BudgetExhausted {
                    examined: stats.subsets_examined,
                });
            }
            if stop && found.is_some() {
                break 'sizes;
            }
        }
        let gamma = found.expect("the full candidate set always verifies");
        causes.push(Cause {
            id: cand_ids[cc],
            responsibility: 1.0 / (1.0 + gamma.len() as f64),
            counterfactual: gamma.is_empty(),
            min_contingency: gamma,
        });
    }
    if k_total == 1 {
        stats.counterfactuals = 1;
    }
    Ok(CrpOutcome { causes, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cp, cr};
    use crp_rtree::RTreeParams;
    use crp_skyline::{build_object_rtree, build_point_rtree};
    use crp_uncertain::UncertainObject;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    #[test]
    fn naive_i_matches_cp_on_random_datasets() {
        let mut rng = StdRng::seed_from_u64(404);
        let mut compared = 0;
        for _ in 0..40 {
            let ds = UncertainDataset::from_objects((0..8).map(|i| {
                let l = rng.random_range(1..=3);
                UncertainObject::with_equal_probs(
                    ObjectId(i),
                    (0..l)
                        .map(|_| {
                            pt(
                                rng.random_range(0.0..20.0f64).round(),
                                rng.random_range(0.0..20.0f64).round(),
                            )
                        })
                        .collect::<Vec<_>>(),
                )
                .unwrap()
            }))
            .unwrap();
            let tree = build_object_rtree(&ds, RTreeParams::with_fanout(4));
            let q = pt(10.0, 10.0);
            let alpha = [0.3, 0.5, 0.8][rng.random_range(0..3)];
            for id in 0..8u32 {
                let a = cp(&ds, &tree, &q, ObjectId(id), alpha, &CpConfig::default());
                let b = naive_i(&ds, &tree, &q, ObjectId(id), alpha, None);
                match (a, b) {
                    (Ok(x), Ok(y)) => {
                        let xs: Vec<(ObjectId, usize)> =
                            x.causes.iter().map(|c| (c.id, c.min_contingency.len())).collect();
                        let ys: Vec<(ObjectId, usize)> =
                            y.causes.iter().map(|c| (c.id, c.min_contingency.len())).collect();
                        assert_eq!(xs, ys);
                        // Identical filter -> identical I/O.
                        assert_eq!(
                            x.stats.query.node_accesses,
                            y.stats.query.node_accesses
                        );
                        compared += 1;
                    }
                    (Err(x), Err(y)) => assert_eq!(x, y),
                    (x, y) => panic!("divergence: {x:?} vs {y:?}"),
                }
            }
        }
        assert!(compared > 10, "exercised {compared} non-answers");
    }

    #[test]
    fn naive_ii_matches_cr() {
        let mut rng = StdRng::seed_from_u64(505);
        let mut compared = 0;
        for _ in 0..30 {
            let ds = UncertainDataset::from_points((0..30).map(|_| {
                pt(
                    rng.random_range(0.0..40.0f64).round(),
                    rng.random_range(0.0..40.0f64).round(),
                )
            }))
            .unwrap();
            let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
            let q = pt(20.0, 20.0);
            for id in 0..30u32 {
                let a = cr(&ds, &tree, &q, ObjectId(id));
                let b = naive_ii(&ds, &tree, &q, ObjectId(id), Some(2_000_000));
                match (a, b) {
                    (Ok(x), Ok(y)) => {
                        assert_eq!(x.causes.len(), y.causes.len());
                        for (cx, cy) in x.causes.iter().zip(y.causes.iter()) {
                            assert_eq!(cx.id, cy.id);
                            assert!((cx.responsibility - cy.responsibility).abs() < 1e-12);
                            assert_eq!(
                                cx.min_contingency.len(),
                                cy.min_contingency.len()
                            );
                        }
                        assert_eq!(x.stats.query.node_accesses, y.stats.query.node_accesses);
                        assert!(y.stats.subsets_examined >= x.stats.subsets_examined);
                        compared += 1;
                    }
                    (Err(x), Err(y)) => assert_eq!(x, y),
                    (x, y) => panic!("divergence: {x:?} vs {y:?}"),
                }
                if compared > 40 {
                    return;
                }
            }
        }
    }

    #[test]
    fn naive_ii_budget() {
        // 22 collinear dominators -> 2^21 subsets for the first candidate.
        let mut points = vec![pt(100.0, 100.0)];
        for i in 0..22 {
            points.push(pt(60.0 + i as f64, 60.0 + i as f64));
        }
        let ds = UncertainDataset::from_points(points).unwrap();
        let tree = build_point_rtree(&ds, RTreeParams::with_fanout(8));
        let err = naive_ii(&ds, &tree, &pt(50.0, 50.0), ObjectId(0), Some(10_000)).unwrap_err();
        assert!(matches!(err, CrpError::BudgetExhausted { .. }));
    }

    #[test]
    fn naive_i_validates_like_cp() {
        let ds = UncertainDataset::from_points(vec![pt(0.0, 0.0)]).unwrap();
        let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
        assert!(matches!(
            naive_i(&ds, &tree, &pt(1.0, 1.0), ObjectId(0), 2.0, None),
            Err(CrpError::InvalidAlpha(_))
        ));
        assert!(matches!(
            naive_i(&ds, &tree, &pt(1.0, 1.0), ObjectId(9), 0.5, None),
            Err(CrpError::UnknownObject(_))
        ));
    }
}
