//! Definition-level brute force — the test suites' ground truth.
//!
//! [`oracle_crp`] implements Definitions 1–2 literally: an object `p` is
//! an actual cause for the non-answer `an` iff some `Γ ⊆ P` exists with
//! `(P−Γ) ⊭ Q(an)` and `(P−Γ−{p}) ⊨ Q(an)`; the responsibility is
//! `1/(1+|Γ_min|)`. Unlike CP, the oracle enumerates subsets of the
//! *entire dataset* — it encodes no lemma, no filter, no insight, which
//! is exactly what makes it trustworthy (and exponential).

use crate::combinations::for_each_combination;
use crate::error::CrpError;
use crp_geom::{dominates, Point, PROB_EPSILON};
use crp_skyline::pr_reverse_skyline;
use crp_uncertain::{ObjectId, UncertainDataset};

/// A cause as found by the oracle.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleCause {
    /// Dataset position of the cause.
    pub position: usize,
    /// A minimal contingency set (dataset positions, ascending).
    pub min_gamma: Vec<usize>,
}

impl OracleCause {
    /// `1 / (1 + |Γ_min|)`.
    pub fn responsibility(&self) -> f64 {
        1.0 / (1.0 + self.min_gamma.len() as f64)
    }
}

/// Brute-force CRP over `n` dataset positions for the non-answer at
/// `an_pos`. `is_answer(mask)` must report whether `an` is an answer to
/// the query over the dataset minus the positions marked in `mask`
/// (`an_pos` itself is never marked).
///
/// # Panics
///
/// Panics if `is_answer` of the full dataset is `true` (`an` must be a
/// non-answer) or if `n` exceeds 20 (enumeration guard).
pub fn oracle_crp(
    n: usize,
    an_pos: usize,
    mut is_answer: impl FnMut(&[bool]) -> bool,
) -> Vec<OracleCause> {
    assert!(n <= 20, "oracle is exponential; refusing n = {n}");
    let mut mask = vec![false; n];
    assert!(!is_answer(&mask), "oracle requires a genuine non-answer");
    let others: Vec<usize> = (0..n).filter(|&i| i != an_pos).collect();
    let mut causes = Vec::new();
    for &p in &others {
        let pool: Vec<usize> = others.iter().copied().filter(|&i| i != p).collect();
        let mut found: Option<Vec<usize>> = None;
        'sizes: for k in 0..=pool.len() {
            let hit = for_each_combination(pool.len(), k, |combo| {
                mask.fill(false);
                for &c in combo {
                    mask[pool[c]] = true;
                }
                if is_answer(&mask) {
                    return false; // condition (i) violated
                }
                mask[p] = true;
                let becomes = is_answer(&mask);
                mask[p] = false;
                if becomes {
                    found = Some(combo.iter().map(|&c| pool[c]).collect());
                    true
                } else {
                    false
                }
            });
            if hit {
                break 'sizes;
            }
        }
        if let Some(min_gamma) = found {
            causes.push(OracleCause {
                position: p,
                min_gamma,
            });
        }
    }
    causes
}

/// Oracle for CR²PRSQ: causes for the non-answer `an_id` to the
/// probabilistic reverse skyline query `(q, α)`, straight from the
/// definitions and Eq. 2.
pub fn oracle_cp(
    ds: &UncertainDataset,
    q: &Point,
    an_id: ObjectId,
    alpha: f64,
) -> Result<Vec<(ObjectId, OracleCause)>, CrpError> {
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(CrpError::InvalidAlpha(alpha));
    }
    let an_pos = ds.index_of(an_id).ok_or(CrpError::UnknownObject(an_id))?;
    let full = pr_reverse_skyline(ds, an_pos, q, |_| false);
    if full >= alpha - PROB_EPSILON {
        return Err(CrpError::NotANonAnswer { prob: full });
    }
    let causes = oracle_crp(ds.len(), an_pos, |mask| {
        pr_reverse_skyline(ds, an_pos, q, |j| mask[j]) >= alpha - PROB_EPSILON
    });
    Ok(causes
        .into_iter()
        .map(|c| (ds.object_at(c.position).id(), c))
        .collect())
}

/// Oracle for CRPRSQ: causes for the non-answer `an_id` to the plain
/// reverse skyline query of `q` over certain data.
pub fn oracle_cr(
    ds: &UncertainDataset,
    q: &Point,
    an_id: ObjectId,
) -> Result<Vec<(ObjectId, OracleCause)>, CrpError> {
    if !ds.is_certain() {
        return Err(CrpError::NotCertainData);
    }
    let an_pos = ds.index_of(an_id).ok_or(CrpError::UnknownObject(an_id))?;
    let an = ds.object_at(an_pos).certain_point().clone();
    let is_answer = |mask: &[bool]| {
        !(0..ds.len())
            .any(|j| j != an_pos && !mask[j] && dominates(ds.object_at(j).certain_point(), &an, q))
    };
    if is_answer(&vec![false; ds.len()]) {
        return Err(CrpError::NotANonAnswer { prob: 1.0 });
    }
    let causes = oracle_crp(ds.len(), an_pos, is_answer);
    Ok(causes
        .into_iter()
        .map(|c| (ds.object_at(c.position).id(), c))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_uncertain::UncertainObject;

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    #[test]
    fn oracle_cr_simple() {
        // an at (10,10), q (5,5); dominators 1 and 2.
        let ds = UncertainDataset::from_points(vec![
            pt(10.0, 10.0),
            pt(7.0, 7.0),
            pt(6.0, 6.0),
            pt(0.0, 0.0),
        ])
        .unwrap();
        let causes = oracle_cr(&ds, &pt(5.0, 5.0), ObjectId(0)).unwrap();
        let ids: Vec<u32> = causes.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 2]);
        for (_, c) in &causes {
            assert_eq!(c.min_gamma.len(), 1, "Γ = the other dominator");
            assert!((c.responsibility() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn oracle_cp_counterfactual() {
        let ds = UncertainDataset::from_objects(vec![
            UncertainObject::certain(ObjectId(0), pt(10.0, 10.0)),
            UncertainObject::certain(ObjectId(1), pt(7.0, 7.0)),
        ])
        .unwrap();
        let causes = oracle_cp(&ds, &pt(5.0, 5.0), ObjectId(0), 0.5).unwrap();
        assert_eq!(causes.len(), 1);
        assert_eq!(causes[0].0, ObjectId(1));
        assert!(causes[0].1.min_gamma.is_empty());
    }

    #[test]
    fn oracle_rejects_answers() {
        let ds = UncertainDataset::from_points(vec![pt(0.0, 0.0), pt(50.0, 50.0)]).unwrap();
        assert!(matches!(
            oracle_cr(&ds, &pt(1.0, 1.0), ObjectId(0)),
            Err(CrpError::NotANonAnswer { .. })
        ));
        assert!(matches!(
            oracle_cp(&ds, &pt(1.0, 1.0), ObjectId(0), 0.5),
            Err(CrpError::NotANonAnswer { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn oracle_refuses_large_inputs() {
        let _ = oracle_crp(21, 0, |_| false);
    }

    #[test]
    fn oracle_non_cause_is_omitted() {
        // Candidate with dominance too weak to ever be pivotal (see the
        // matching refine.rs test).
        let ds = UncertainDataset::from_objects(vec![
            UncertainObject::certain(ObjectId(0), pt(10.0, 10.0)),
            // dominates q w.r.t. an with p = 0.9 (9 of 10 samples).
            UncertainObject::with_equal_probs(
                ObjectId(1),
                (0..10)
                    .map(|i| {
                        if i < 9 {
                            pt(7.0, 7.0 + 0.01 * i as f64)
                        } else {
                            pt(50.0, 50.0)
                        }
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
            // dominates with p = 0.05... use 1 of 20 -> here 1 of 2 is
            // too strong; encode 0.1 with 1 of 10.
            UncertainObject::with_equal_probs(
                ObjectId(2),
                (0..10)
                    .map(|i| {
                        if i == 0 {
                            pt(8.0, 8.0)
                        } else {
                            pt(60.0 + i as f64, 60.0)
                        }
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap(),
        ])
        .unwrap();
        // Pr(an) = 0.1 · 0.9 = 0.09 < 0.5. Removing 2: 0.1 (still non-
        // answer, and not an answer after removing 2 alone); removing 1:
        // 0.9 ≥ α -> 1 is counterfactual; {1} fails condition (i) for 2.
        let causes = oracle_cp(&ds, &pt(5.0, 5.0), ObjectId(0), 0.5).unwrap();
        assert_eq!(causes.len(), 1);
        assert_eq!(causes[0].0, ObjectId(1));
    }
}
