//! Error type shared by the CRP algorithms.

use crate::engine::budget::PartialProgress;
use crp_uncertain::ObjectId;
use std::fmt;

/// Errors raised by the causality/responsibility computations.
#[derive(Clone, Debug, PartialEq)]
pub enum CrpError {
    /// The designated object is actually an answer to the query, so the
    /// non-answer CRP is undefined for it. Carries `Pr(an)` (or 1.0 for
    /// certain data).
    NotANonAnswer {
        /// The object's reverse-skyline probability.
        prob: f64,
    },
    /// The object id does not exist in the dataset.
    UnknownObject(ObjectId),
    /// `α` outside `(0, 1]`.
    InvalidAlpha(f64),
    /// The dataset holds no objects.
    EmptyDataset,
    /// The configured subset-examination budget was exhausted before the
    /// search completed (see [`crate::CpConfig::max_subsets`]).
    BudgetExhausted {
        /// Subsets examined when the budget tripped.
        examined: u64,
    },
    /// CR/Naive-II require certain data (single-sample objects).
    NotCertainData,
    /// The selected [`crate::ExplainStrategy`] cannot serve the
    /// engine's workload (e.g. a certain-data algorithm on a pdf
    /// session).
    UnsupportedStrategy {
        /// Name of the rejected strategy.
        strategy: &'static str,
        /// The engine workload that rejected it.
        workload: &'static str,
    },
    /// An [`crate::EngineConfig`] field failed validation at session
    /// construction (instead of panicking or producing garbage later).
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        reason: String,
    },
    /// A dataset update could not be applied (duplicate id on insert,
    /// unknown id on delete/replace, dimension mismatch, or an update
    /// model that does not match the engine's workload).
    InvalidUpdate {
        /// What was wrong with the update.
        reason: String,
    },
    /// A plan budget tripped before this task could finish
    /// ([`crate::PlanLimits`]): the result is missing, never wrong.
    /// Carries monotone progress counters of the plan so far.
    Partial(Box<PartialProgress>),
    /// The MVCC writer mutex is poisoned — a previous batch panicked
    /// mid-apply. Readers keep serving pinned epoch snapshots; the
    /// writer refuses further batches instead of publishing a torn
    /// epoch.
    WriterPoisoned,
}

impl fmt::Display for CrpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrpError::NotANonAnswer { prob } => {
                write!(
                    f,
                    "object is an answer (Pr = {prob}); CRP targets non-answers"
                )
            }
            CrpError::UnknownObject(id) => write!(f, "object {id} not in the dataset"),
            CrpError::InvalidAlpha(a) => write!(f, "probability threshold α = {a} not in (0, 1]"),
            CrpError::EmptyDataset => write!(f, "dataset is empty"),
            CrpError::BudgetExhausted { examined } => {
                write!(f, "subset budget exhausted after {examined} candidate sets")
            }
            CrpError::NotCertainData => {
                write!(f, "algorithm requires certain data (single-sample objects)")
            }
            CrpError::UnsupportedStrategy { strategy, workload } => {
                write!(
                    f,
                    "strategy {strategy} is not available on a {workload} workload"
                )
            }
            CrpError::InvalidConfig { field, reason } => {
                write!(f, "invalid engine config: {field} {reason}")
            }
            CrpError::InvalidUpdate { reason } => write!(f, "invalid update: {reason}"),
            CrpError::Partial(progress) => write!(f, "partial result: {progress}"),
            CrpError::WriterPoisoned => {
                write!(
                    f,
                    "MVCC writer poisoned by a panicked batch; session is read-only"
                )
            }
        }
    }
}

impl std::error::Error for CrpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        for (e, needle) in [
            (CrpError::NotANonAnswer { prob: 0.9 }, "0.9"),
            (CrpError::UnknownObject(ObjectId(3)), "#3"),
            (CrpError::InvalidAlpha(1.5), "1.5"),
            (CrpError::EmptyDataset, "empty"),
            (CrpError::BudgetExhausted { examined: 10 }, "10"),
            (CrpError::NotCertainData, "certain"),
            (
                CrpError::UnsupportedStrategy {
                    strategy: "cr",
                    workload: "pdf",
                },
                "cr",
            ),
            (
                CrpError::InvalidConfig {
                    field: "alpha",
                    reason: "must be in (0, 1], got 2".into(),
                },
                "alpha",
            ),
            (
                CrpError::InvalidUpdate {
                    reason: "duplicate object id 3".into(),
                },
                "duplicate",
            ),
            (
                CrpError::Partial(Box::new(PartialProgress {
                    reason: crate::engine::budget::StopReason::DeadlineExceeded,
                    tasks_total: 4,
                    tasks_completed: 1,
                    node_accesses: 7,
                    subsets_examined: 9,
                    elapsed_ms: 12,
                })),
                "deadline",
            ),
            (CrpError::WriterPoisoned, "poisoned"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
