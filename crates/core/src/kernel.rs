//! The dominance-product compute kernel: explicit AVX2 SIMD with
//! runtime dispatch, plus its bit-identical scalar twin.
//!
//! The refine hot path reduces every subset check to *masked survival
//! products* over sample-major complement rows (see [`crate::matrix`]):
//!
//! ```text
//! Π_c  max(row[c], mask[c])      row[c] = 1 − dp[c][i] ∈ [0, 1]
//! ```
//!
//! where `mask` is the **multiplicative removal mask** — `1.0` for a
//! removed candidate, `0.0` for a present one. Because every complement
//! lies in `[0, 1]` and masks are exactly `0.0`/`1.0`, `max(row, mask)`
//! yields `1.0` (the neutral factor) for removed candidates and the raw
//! complement otherwise — a branchless `vmaxpd` + `vmulpd` stream, no
//! per-lane select and no bool→f64 conversion in the loop.
//!
//! Both kernels use the same 16-element accumulation scheme (4 groups ×
//! 4 lanes; element `16k + 4g + l` lands in group `g`, lane `l`) and the
//! same fixed reduction tree, so the scalar and AVX2 paths are
//! **bit-identical** — dispatch can never flip a classification, not
//! even inside the guard band. The scalar path is the portable fallback
//! (and what `CRP_KERNEL=scalar` pins for A/B runs); AVX2 is selected at
//! runtime via `is_x86_feature_detected!` — the build stays plain
//! stable-toolchain `std::arch`, no nightly `std::simd`.

use std::sync::atomic::{AtomicU8, Ordering};

/// Kernel selection for the masked-product hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// Probe the CPU once and pick the widest supported kernel.
    Auto,
    /// The portable scalar kernel (bit-identical to the SIMD path).
    Scalar,
    /// The AVX2 kernel; selecting it on a CPU without AVX2 is an error.
    Simd,
}

impl std::str::FromStr for KernelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(KernelKind::Auto),
            "scalar" => Ok(KernelKind::Scalar),
            "simd" => Ok(KernelKind::Simd),
            other => Err(format!("unknown kernel {other:?} (use auto|scalar|simd)")),
        }
    }
}

const KERNEL_UNSET: u8 = 0;
const KERNEL_SCALAR: u8 = 1;
const KERNEL_SIMD: u8 = 2;

/// Process-wide kernel dispatch. Resolved lazily on first use: the
/// `CRP_KERNEL` environment variable (`auto|scalar|simd`) seeds the
/// initial value, `Auto` otherwise; [`set_kernel`] overrides it.
static KERNEL: AtomicU8 = AtomicU8::new(KERNEL_UNSET);

/// True when the AVX2 kernel can run on this machine.
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Pins the masked-product kernel for the whole process (A/B runs, the
/// CLI's `--kernel` flag, the bench sweep's per-variant legs). Returns
/// the concrete kernel now active. Requesting [`KernelKind::Simd`] on a
/// CPU without AVX2 is an error; [`KernelKind::Auto`] silently falls
/// back to scalar there.
pub fn set_kernel(kind: KernelKind) -> Result<KernelKind, String> {
    let resolved = match kind {
        KernelKind::Scalar => KERNEL_SCALAR,
        KernelKind::Simd => {
            if !simd_supported() {
                return Err("simd kernel unavailable: AVX2 not detected on this CPU".into());
            }
            KERNEL_SIMD
        }
        KernelKind::Auto => {
            if simd_supported() {
                KERNEL_SIMD
            } else {
                KERNEL_SCALAR
            }
        }
    };
    KERNEL.store(resolved, Ordering::Relaxed);
    Ok(if resolved == KERNEL_SIMD {
        KernelKind::Simd
    } else {
        KernelKind::Scalar
    })
}

/// The concrete kernel currently dispatched (`"scalar"` or `"simd"`),
/// resolving the lazy initial state if needed — what the bench sweep
/// records next to its throughput rows.
pub fn active_kernel() -> &'static str {
    if resolved() == KERNEL_SIMD {
        "simd"
    } else {
        "scalar"
    }
}

#[inline]
fn resolved() -> u8 {
    let v = KERNEL.load(Ordering::Relaxed);
    if v != KERNEL_UNSET {
        return v;
    }
    let initial = std::env::var("CRP_KERNEL")
        .ok()
        .and_then(|raw| raw.parse::<KernelKind>().ok())
        .unwrap_or(KernelKind::Auto);
    // Env-pinned `simd` on a CPU without AVX2 degrades to scalar (the
    // env var is a hint; the hard error lives in `set_kernel`).
    let v = match initial {
        KernelKind::Scalar => KERNEL_SCALAR,
        _ if simd_supported() => KERNEL_SIMD,
        _ => KERNEL_SCALAR,
    };
    KERNEL.store(v, Ordering::Relaxed);
    v
}

/// Accumulator groups (SIMD registers) and lanes per group. One
/// 16-element step keeps 4 independent `vmulpd` chains in flight, enough
/// to hide the 4-cycle multiply latency on every AVX2 core.
const GROUPS: usize = 4;
const LANES: usize = 4;
const STRIDE: usize = GROUPS * LANES;

/// Masked survival product `Π_c max(row[c], mask[c])`, dispatched to
/// the active kernel. `mask[c]` must be exactly `0.0` (present) or
/// `1.0` (removed); `row` values must be finite and non-negative (they
/// are probabilities' complements).
#[inline]
pub fn masked_product(row: &[f64], mask: &[f64]) -> f64 {
    debug_assert_eq!(row.len(), mask.len());
    #[cfg(target_arch = "x86_64")]
    if resolved() == KERNEL_SIMD {
        // SAFETY: KERNEL is only ever set to KERNEL_SIMD after
        // `simd_supported()` confirmed AVX2 via `is_x86_feature_detected!`
        // (in `set_kernel` / `resolved`), so the target features the
        // callee enables are present on this CPU.
        return unsafe { masked_product_avx2(row, mask) };
    }
    masked_product_scalar(row, mask)
}

/// The portable kernel: the same 4×4 accumulation grid and reduction
/// tree as the AVX2 path, so both produce bit-identical products (the
/// compiler is free to auto-vectorize this — the grid is exactly the
/// shape it wants).
pub fn masked_product_scalar(row: &[f64], mask: &[f64]) -> f64 {
    let n = row.len();
    let chunks = n / STRIDE * STRIDE;
    let mut acc = [[1.0f64; LANES]; GROUPS];
    let mut base = 0;
    while base < chunks {
        for (g, group) in acc.iter_mut().enumerate() {
            for (l, slot) in group.iter_mut().enumerate() {
                let k = base + g * LANES + l;
                *slot *= row[k].max(mask[k]);
            }
        }
        base += STRIDE;
    }
    reduce_and_finish(&acc, row, mask, chunks)
}

/// The AVX2 kernel: 4 × 256-bit accumulators, `vmaxpd` + `vmulpd` per
/// 16 elements, then the shared reduction tree.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX2 (checked via
/// `is_x86_feature_detected!("avx2")` before the dispatch state can
/// select this path). `row` and `mask` must be equal-length slices —
/// all loads below stay inside `row[..chunks]` / `mask[..chunks]`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn masked_product_avx2(row: &[f64], mask: &[f64]) -> f64 {
    use std::arch::x86_64::{
        _mm256_loadu_pd, _mm256_max_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
    };
    let n = row.len();
    let chunks = n / STRIDE * STRIDE;
    let mut acc = [_mm256_set1_pd(1.0); GROUPS];
    let rp = row.as_ptr();
    let mp = mask.as_ptr();
    let mut base = 0;
    while base < chunks {
        for (g, slot) in acc.iter_mut().enumerate() {
            // SAFETY: base + g·LANES + 3 < chunks ≤ n, so both unaligned
            // loads read 4 in-bounds f64s.
            let v = unsafe { _mm256_loadu_pd(rp.add(base + g * LANES)) };
            let m = unsafe { _mm256_loadu_pd(mp.add(base + g * LANES)) };
            *slot = _mm256_mul_pd(*slot, _mm256_max_pd(v, m));
        }
        base += STRIDE;
    }
    let mut grid = [[0.0f64; LANES]; GROUPS];
    for (g, slot) in acc.iter().enumerate() {
        // SAFETY: grid[g] is a 4-f64 buffer, exactly one 256-bit store.
        unsafe { _mm256_storeu_pd(grid[g].as_mut_ptr(), *slot) };
    }
    reduce_and_finish(&grid, row, mask, chunks)
}

/// The shared reduction: groups first (`(g0·g1)·(g2·g3)` per lane), then
/// lanes (`(l0·l1)·(l2·l3)`), then the scalar remainder `chunks..n` in
/// order. Keeping this tree identical across kernels is what makes the
/// dispatch bit-transparent.
#[inline]
fn reduce_and_finish(
    acc: &[[f64; LANES]; GROUPS],
    row: &[f64],
    mask: &[f64],
    chunks: usize,
) -> f64 {
    let mut lanes = [0.0f64; LANES];
    for (l, lane) in lanes.iter_mut().enumerate() {
        *lane = (acc[0][l] * acc[1][l]) * (acc[2][l] * acc[3][l]);
    }
    let mut prod = (lanes[0] * lanes[1]) * (lanes[2] * lanes[3]);
    for (v, m) in row[chunks..].iter().zip(&mask[chunks..]) {
        prod *= v.max(*m);
    }
    prod
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The definitional product: sequential, removed factors skipped.
    fn naive(row: &[f64], mask: &[f64]) -> f64 {
        row.iter()
            .zip(mask)
            .filter(|(_, &m)| m == 0.0)
            .map(|(&v, _)| v)
            .product()
    }

    fn random_case(rng: &mut StdRng, n: usize, removal: f64) -> (Vec<f64>, Vec<f64>) {
        let row: Vec<f64> = (0..n)
            .map(|_| match rng.random_range(0..4) {
                0 => 0.0,
                1 => 1.0,
                _ => rng.random_range(0.05..1.0),
            })
            .collect();
        let mask: Vec<f64> = (0..n)
            .map(|_| if rng.random_bool(removal) { 1.0 } else { 0.0 })
            .collect();
        (row, mask)
    }

    /// Remainder lanes (`n % 4 != 0`, `n % 16 != 0`), empty rows, and
    /// all-/none-removed masks: the SIMD kernel must be bit-identical
    /// to the scalar kernel on every shape.
    #[test]
    fn simd_is_bit_identical_to_scalar() {
        if !simd_supported() {
            eprintln!("AVX2 unavailable; simd/scalar identity vacuously holds");
            return;
        }
        let mut rng = StdRng::seed_from_u64(0x51_3D);
        for &n in &[
            0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33, 48, 63, 64, 100, 257,
        ] {
            for &removal in &[0.0, 0.3, 1.0] {
                for _ in 0..20 {
                    let (row, mask) = random_case(&mut rng, n, removal);
                    let scalar = masked_product_scalar(&row, &mask);
                    // SAFETY: guarded by `simd_supported()` above.
                    let simd = unsafe { masked_product_avx2(&row, &mask) };
                    assert_eq!(
                        scalar.to_bits(),
                        simd.to_bits(),
                        "n={n} removal={removal}: scalar {scalar} vs simd {simd}"
                    );
                }
            }
        }
    }

    /// Both kernels agree with the definitional sequential product to
    /// reassociation error (orders of magnitude inside the guard band).
    #[test]
    fn kernels_match_naive_within_reassociation_error() {
        let mut rng = StdRng::seed_from_u64(0xACC);
        for &n in &[1usize, 3, 16, 21, 64, 130] {
            for _ in 0..40 {
                let (row, mask) = random_case(&mut rng, n, 0.25);
                let exact = naive(&row, &mask);
                let fast = masked_product_scalar(&row, &mask);
                assert!(
                    (exact - fast).abs() <= 1e-9 * exact.abs().max(1.0),
                    "n={n}: naive {exact} vs scalar {fast}"
                );
            }
        }
    }

    /// All-removed masks multiply nothing but exact 1.0 factors.
    #[test]
    fn all_removed_is_exactly_one() {
        let row: Vec<f64> = (0..37).map(|i| (i as f64) / 40.0).collect();
        let mask = vec![1.0; 37];
        assert_eq!(masked_product_scalar(&row, &mask), 1.0);
        assert_eq!(masked_product(&row, &mask), 1.0);
    }

    #[test]
    fn kernel_kind_parses_strictly() {
        assert_eq!("auto".parse::<KernelKind>().unwrap(), KernelKind::Auto);
        assert_eq!("scalar".parse::<KernelKind>().unwrap(), KernelKind::Scalar);
        assert_eq!("simd".parse::<KernelKind>().unwrap(), KernelKind::Simd);
        assert!("avx512".parse::<KernelKind>().is_err());
        assert!("Scalar".parse::<KernelKind>().is_err());
    }

    /// `set_kernel` round-trips and reports the concrete kernel; the
    /// test restores `Auto` so concurrently running suites keep their
    /// (identical-verdict) dispatch.
    #[test]
    fn set_kernel_reports_resolution() {
        assert_eq!(set_kernel(KernelKind::Scalar).unwrap(), KernelKind::Scalar);
        assert_eq!(active_kernel(), "scalar");
        if simd_supported() {
            assert_eq!(set_kernel(KernelKind::Simd).unwrap(), KernelKind::Simd);
            assert_eq!(active_kernel(), "simd");
        } else {
            assert!(set_kernel(KernelKind::Simd).is_err());
        }
        let auto = set_kernel(KernelKind::Auto).unwrap();
        assert!(matches!(auto, KernelKind::Scalar | KernelKind::Simd));
    }
}
