//! CP under the continuous pdf model (Section 3.2).
//!
//! Three things change relative to the discrete algorithm:
//!
//! 1. **Filtering** — the `RecList` cannot enumerate samples. Instead,
//!    for every sub-quadrant of `q` that the non-answer's region
//!    overlaps, one window is formed from the *farthest point* of the
//!    clipped region (its dominance rectangle w.r.t. `q` contains the
//!    dominance rectangle of every point of the region in that quadrant,
//!    so the union of windows is a sound filter).
//! 2. **Forced members** — dominance probabilities against candidates
//!    are exact closed-form box integrals; a candidate whose integral is
//!    1 for every integration cell of `an` is forced (the pdf analogue of
//!    Lemma 4's nearest-corner rectangle).
//! 3. **`Pr(an)`** — the sum over samples becomes an integral over the
//!    region, evaluated by midpoint-rule discretisation of `an` (the
//!    candidates are *not* discretised; their dominance probabilities per
//!    cell are exact).
//!
//! The pipeline driver lives in [`crate::engine`]
//! (`pipeline::run_pdf`); this module keeps the pdf-specific filter
//! geometry, the index builder and the public wrapper. Prefer
//! [`crate::ExplainEngine::for_pdf`].

use crate::config::CpConfig;
use crate::engine::pipeline;
use crate::error::CrpError;
use crate::types::CrpOutcome;
use crp_geom::{dominance_rect, quadrant_corners, HyperRect, Point};
use crp_rtree::{RTree, RTreeParams};
use crp_uncertain::{ObjectId, PdfDataset};

/// Builds an R-tree over the uncertain regions of a pdf dataset.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn build_pdf_rtree(ds: &PdfDataset, params: RTreeParams) -> RTree<ObjectId> {
    let dim = ds.dim().expect("cannot index an empty dataset");
    let items: Vec<(HyperRect, ObjectId)> =
        ds.iter().map(|o| (o.region().clone(), o.id())).collect();
    RTree::bulk_load(dim, params, items)
}

/// The pdf-model filter windows of a non-answer region: one dominance
/// rectangle per overlapped sub-quadrant, centred at the farthest point
/// of the clipped region from `q` — pipeline stage 1 of the pdf
/// variant.
pub(crate) fn pdf_windows(q: &Point, region: &HyperRect) -> Vec<HyperRect> {
    quadrant_corners(q, region)
        .into_iter()
        .map(|(_, sub)| dominance_rect(&sub.farthest_corner(q), q))
        .collect()
}

/// CP for the continuous pdf model.
///
/// `resolution` controls the midpoint-rule discretisation of the
/// non-answer's region (`resolution^D` cells); candidates are integrated
/// in closed form. `tree` must index the regions (see
/// [`build_pdf_rtree`]).
///
/// # Errors
///
/// Same contract as [`crate::cp`].
#[deprecated(since = "0.2.0", note = "use ExplainEngine::for_pdf")]
pub fn cp_pdf(
    ds: &PdfDataset,
    tree: &RTree<ObjectId>,
    q: &Point,
    an_id: ObjectId,
    alpha: f64,
    resolution: usize,
    config: &CpConfig,
) -> Result<CrpOutcome, CrpError> {
    pipeline::run_pdf(ds, tree, q, an_id, alpha, resolution, config, None)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crp_uncertain::PdfObject;

    fn rect(lo: [f64; 2], hi: [f64; 2]) -> HyperRect {
        HyperRect::new(Point::from(lo), Point::from(hi))
    }

    /// an's region sits well inside one quadrant; candidates are boxes
    /// with known dominance integrals.
    fn fixture() -> PdfDataset {
        PdfDataset::from_objects(vec![
            // an: region around (10, 10).
            PdfObject::uniform(ObjectId(0), rect([9.5, 9.5], [10.5, 10.5])),
            // full dominator: tight box at (7, 7) — between q and an.
            PdfObject::uniform(ObjectId(1), rect([6.9, 6.9], [7.1, 7.1])),
            // half dominator: box straddling the window boundary.
            PdfObject::uniform(ObjectId(2), rect([7.0, 2.0], [8.0, 6.0])),
            // non-dominator for an: far away (but itself blocked by all).
            PdfObject::uniform(ObjectId(3), rect([40.0, 40.0], [41.0, 41.0])),
            // a genuine answer: close to q, nothing between them.
            PdfObject::uniform(ObjectId(4), rect([1.5, 1.5], [2.5, 2.5])),
        ])
        .unwrap()
    }

    #[test]
    fn windows_cover_single_quadrant_region() {
        let q = Point::from([5.0, 5.0]);
        let region = rect([9.0, 9.0], [11.0, 11.0]);
        let w = pdf_windows(&q, &region);
        assert_eq!(w.len(), 1, "single quadrant -> single window");
        // Window = dominance rect of the farthest corner (11, 11):
        // centred there with extent |q − corner| = 6, i.e. [5, 17]².
        assert_eq!(w[0].lo(), &Point::from([5.0, 5.0]));
        assert_eq!(w[0].hi(), &Point::from([17.0, 17.0]));
        // It contains the dominance rect of every point of the region.
        for x in [[9.0, 9.0], [11.0, 11.0], [9.3, 10.7]] {
            let sub = dominance_rect(&Point::from(x), &q);
            assert!(w[0].contains_rect(&sub), "x = {x:?}");
        }
    }

    #[test]
    fn windows_split_across_quadrants() {
        let q = Point::from([5.0, 5.0]);
        let region = rect([4.0, 6.0], [6.0, 7.0]); // straddles x-split
        let w = pdf_windows(&q, &region);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn cp_pdf_finds_the_blocker() {
        let ds = fixture();
        let tree = build_pdf_rtree(&ds, RTreeParams::with_fanout(4));
        let q = Point::from([5.0, 5.0]);
        let out = cp_pdf(&ds, &tree, &q, ObjectId(0), 0.5, 3, &CpConfig::default()).unwrap();
        // Object 1 dominates every cell with probability 1 -> removing it
        // restores Pr(an) to ~1 (object 2 does not dominate: its box lies
        // below the window in y for... check: it has partial mass).
        let c1 = out.cause(ObjectId(1)).expect("object 1 causes the absence");
        assert!(c1.responsibility > 0.0);
        assert!(out.cause(ObjectId(3)).is_none());
    }

    #[test]
    fn cp_pdf_matches_discretised_cp() {
        // The pdf algorithm and the discrete algorithm on the discretised
        // dataset must agree on causes and responsibilities when the same
        // resolution drives both.
        let ds = fixture();
        let q = Point::from([5.0, 5.0]);
        let resolution = 4;
        let tree = build_pdf_rtree(&ds, RTreeParams::with_fanout(4));

        let disc = ds.discretize(resolution);
        let dtree = crp_skyline::build_object_rtree(&disc, RTreeParams::with_fanout(4));

        for alpha in [0.3, 0.5, 0.8] {
            let a = cp_pdf(
                &ds,
                &tree,
                &q,
                ObjectId(0),
                alpha,
                resolution,
                &CpConfig::default(),
            );
            let b = crate::cp(&disc, &dtree, &q, ObjectId(0), alpha, &CpConfig::default());
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    let xs: Vec<(ObjectId, usize)> = x
                        .causes
                        .iter()
                        .map(|c| (c.id, c.min_contingency.len()))
                        .collect();
                    let ys: Vec<(ObjectId, usize)> = y
                        .causes
                        .iter()
                        .map(|c| (c.id, c.min_contingency.len()))
                        .collect();
                    // The discrete run discretises the *candidates* too,
                    // so dominance probabilities differ slightly; causes
                    // and contingency sizes must still match here because
                    // the fixture's probabilities are far from α.
                    assert_eq!(xs, ys, "alpha {alpha}");
                }
                (Err(x), Err(y)) => assert_eq!(
                    std::mem::discriminant(&x),
                    std::mem::discriminant(&y),
                    "alpha {alpha}"
                ),
                (x, y) => panic!("divergence at alpha {alpha}: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn cp_pdf_rejects_answers_and_bad_input() {
        let ds = fixture();
        let tree = build_pdf_rtree(&ds, RTreeParams::with_fanout(4));
        let q = Point::from([5.0, 5.0]);
        assert!(matches!(
            cp_pdf(&ds, &tree, &q, ObjectId(4), 0.5, 3, &CpConfig::default()),
            Err(CrpError::NotANonAnswer { .. })
        ));
        assert!(matches!(
            cp_pdf(&ds, &tree, &q, ObjectId(9), 0.5, 3, &CpConfig::default()),
            Err(CrpError::UnknownObject(_))
        ));
        assert!(matches!(
            cp_pdf(&ds, &tree, &q, ObjectId(0), 0.0, 3, &CpConfig::default()),
            Err(CrpError::InvalidAlpha(_))
        ));
        let empty = PdfDataset::new();
        assert!(matches!(
            cp_pdf(&empty, &tree, &q, ObjectId(0), 0.5, 3, &CpConfig::default()),
            Err(CrpError::EmptyDataset)
        ));
    }
}
