//! The answer side of the CRP, which the paper sets aside as "relatively
//! easy" (Section 1): formalised and proved here.
//!
//! **Proposition (answer-side triviality).** For the probabilistic
//! reverse skyline query, `Pr(an)` is *monotone non-decreasing under
//! deletions*: every factor `(1 − Pr{u' ≺_{an_i} q})` of Eq. 2 lies in
//! `[0, 1]`, so removing an object can only raise the product. An
//! answer-side cause would need a contingency set `Γ` with `(P−Γ) ⊨
//! Q(an)` and `(P−Γ−{p}) ⊭ Q(an)` — but the second state is reached from
//! the first by one more deletion, which cannot lower `Pr(an)` below `α`.
//! Hence **no object of `P` is a cause for an answer**, for PRSQ and RSQ
//! alike.
//!
//! [`answer_causes`] encodes this: it validates that the subject *is* an
//! answer and returns the (provably empty) cause set, so client code can
//! treat answers and non-answers uniformly. The accompanying tests
//! exercise the proposition against the definition-level oracle.

use crate::error::CrpError;
use crate::types::{CrpOutcome, RunStats};
use crp_geom::{Point, PROB_EPSILON};
use crp_skyline::pr_reverse_skyline;
use crp_uncertain::{ObjectId, UncertainDataset};

/// The causality & responsibility set for an *answer* to the
/// probabilistic reverse skyline query — always empty, by the
/// monotonicity proposition above.
///
/// # Errors
///
/// * [`CrpError::InvalidAlpha`] / [`CrpError::UnknownObject`],
/// * [`CrpError::NotANonAnswer`] (carrying the measured probability) when
///   the subject is in fact a non-answer — the caller wants [`crate::cp`]
///   in that case.
pub fn answer_causes(
    ds: &UncertainDataset,
    q: &Point,
    an_id: ObjectId,
    alpha: f64,
) -> Result<CrpOutcome, CrpError> {
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(CrpError::InvalidAlpha(alpha));
    }
    let pos = ds.index_of(an_id).ok_or(CrpError::UnknownObject(an_id))?;
    let prob = pr_reverse_skyline(ds, pos, q, |_| false);
    if prob < alpha - PROB_EPSILON {
        // The subject is a non-answer: the caller wants `cp`, not this.
        return Err(CrpError::NotANonAnswer { prob });
    }
    Ok(CrpOutcome {
        causes: Vec::new(),
        stats: RunStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_crp;
    use crp_uncertain::UncertainObject;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_ds(rng: &mut StdRng, n: usize) -> UncertainDataset {
        UncertainDataset::from_objects((0..n).map(|i| {
            let l = rng.random_range(1..=3);
            UncertainObject::with_equal_probs(
                ObjectId(i as u32),
                (0..l)
                    .map(|_| {
                        Point::from([
                            rng.random_range(0.0..12.0f64).round(),
                            rng.random_range(0.0..12.0f64).round(),
                        ])
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        }))
        .unwrap()
    }

    #[test]
    fn monotone_under_deletions() {
        // Removing any single object never decreases Pr(an).
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..25 {
            let ds = random_ds(&mut rng, 6);
            let q = Point::from([6.0, 6.0]);
            for target in 0..ds.len() {
                let base = pr_reverse_skyline(&ds, target, &q, |_| false);
                for removed in 0..ds.len() {
                    if removed == target {
                        continue;
                    }
                    let after = pr_reverse_skyline(&ds, target, &q, |j| j == removed);
                    assert!(after + 1e-12 >= base, "deletion lowered Pr(an)");
                }
            }
        }
    }

    #[test]
    fn answers_have_no_causes_per_oracle() {
        // The oracle over the *answer* predicate (flipped contingency
        // conditions) confirms the proposition: no cause ever exists.
        let mut rng = StdRng::seed_from_u64(32);
        let alpha = 0.5;
        let mut checked = 0;
        for _ in 0..20 {
            let ds = random_ds(&mut rng, 6);
            let q = Point::from([6.0, 6.0]);
            for target in 0..ds.len() {
                let prob = pr_reverse_skyline(&ds, target, &q, |_| false);
                if prob < alpha {
                    continue; // only answers are of interest here
                }
                // "Cause for the answer": Γ with (P−Γ) an answer and
                // (P−Γ−{p}) a non-answer — i.e. the oracle over the
                // NEGATED membership predicate finds the flip.
                let causes = oracle_crp(ds.len(), target, |mask| {
                    // is_answer for the *negated* problem: the flip we
                    // look for is answer -> non-answer.
                    pr_reverse_skyline(&ds, target, &q, |j| mask[j]) < alpha
                });
                assert!(causes.is_empty(), "an answer acquired a cause: {causes:?}");
                checked += 1;
            }
        }
        assert!(checked > 10, "checked {checked} answers");
    }

    #[test]
    fn answer_causes_contract() {
        let mut rng = StdRng::seed_from_u64(33);
        let ds = random_ds(&mut rng, 5);
        let q = Point::from([6.0, 6.0]);
        for target in 0..ds.len() {
            let id = ds.object_at(target).id();
            let prob = pr_reverse_skyline(&ds, target, &q, |_| false);
            match answer_causes(&ds, &q, id, 0.5) {
                Ok(out) => {
                    assert!(prob >= 0.5 - PROB_EPSILON);
                    assert!(out.causes.is_empty());
                }
                Err(CrpError::NotANonAnswer { prob: p }) => {
                    assert!(p < 0.5);
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(matches!(
            answer_causes(&ds, &q, ObjectId(99), 0.5),
            Err(CrpError::UnknownObject(_))
        ));
        assert!(matches!(
            answer_causes(&ds, &q, ObjectId(0), 0.0),
            Err(CrpError::InvalidAlpha(_))
        ));
    }
}
