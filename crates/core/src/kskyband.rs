//! Extension: CRP for non-answers to **reverse k-skyband** queries — one
//! of the "other queries" the paper's conclusion names as future work.
//!
//! The certain-data analysis generalises Lemma 7 cleanly. Let `D` be the
//! dominators of `q` w.r.t. the non-answer `an` (so `|D| > k`, else `an`
//! would be an answer):
//!
//! * only members of `D` can be causes (the Lemma-1 argument verbatim),
//! * for any `c ∈ D` and any `Γ ⊆ D − {c}` with `|Γ| = |D| − k − 1`:
//!   `|D − Γ| = k + 1 > k` (still a non-answer) and
//!   `|D − Γ − {c}| = k` (answer) — a valid contingency set,
//! * no smaller `Γ` works: `|D − Γ − {c}| ≥ |D| − |Γ| − 1 > k`.
//!
//! Hence **every dominator is an actual cause with responsibility
//! `1/(|D| − k)`**, and `k = 0` recovers the paper's Lemma 7 / Eq. 4
//! exactly. Like CR, the algorithm is a single window query.

use crate::engine::certain::{run_certain, Lemma7ClosedForm, PointTreeDominators};
use crate::error::CrpError;
use crate::types::CrpOutcome;
use crp_geom::Point;
use crp_rtree::RTree;
use crp_uncertain::{ObjectId, UncertainDataset};

/// Causality & responsibility for the non-answer `an_id` to the reverse
/// k-skyband query `(q, k)` over certain data — the certain-data
/// pipeline with the closed-form verification stage at level `k`.
///
/// # Errors
///
/// Mirrors [`crate::cr`]; additionally `an` must have *more than* `k`
/// dominators, otherwise it is an answer.
#[deprecated(
    since = "0.2.0",
    note = "use ExplainEngine with ExplainStrategy::CrKskyband"
)]
pub fn cr_kskyband(
    ds: &UncertainDataset,
    tree: &RTree<ObjectId>,
    q: &Point,
    an_id: ObjectId,
    k: usize,
) -> Result<CrpOutcome, CrpError> {
    run_certain(
        ds,
        &PointTreeDominators { tree },
        q,
        an_id,
        &Lemma7ClosedForm { k },
        None,
    )
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::cr;
    use crate::oracle::oracle_crp;
    use crp_geom::dominates;
    use crp_rtree::RTreeParams;
    use crp_skyline::build_point_rtree;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    fn fixture() -> (UncertainDataset, Point) {
        // an at (10,10) with 4 dominators of q = (5,5).
        let ds = UncertainDataset::from_points(vec![
            pt(10.0, 10.0),
            pt(7.0, 7.0),
            pt(6.0, 8.0),
            pt(8.0, 6.0),
            pt(9.0, 9.0),
            pt(1.0, 1.0),
        ])
        .unwrap();
        (ds, pt(5.0, 5.0))
    }

    #[test]
    fn k_zero_equals_cr() {
        let (ds, q) = fixture();
        let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
        let a = cr(&ds, &tree, &q, ObjectId(0)).unwrap();
        let b = cr_kskyband(&ds, &tree, &q, ObjectId(0), 0).unwrap();
        assert_eq!(a.causes.len(), b.causes.len());
        for (x, y) in a.causes.iter().zip(b.causes.iter()) {
            assert_eq!(x.id, y.id);
            assert!((x.responsibility - y.responsibility).abs() < 1e-12);
            assert_eq!(x.min_contingency.len(), y.min_contingency.len());
        }
    }

    #[test]
    fn responsibilities_follow_the_closed_form() {
        let (ds, q) = fixture();
        let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
        // 4 dominators: at k the responsibility is 1/(4−k).
        for k in 0..4usize {
            let out = cr_kskyband(&ds, &tree, &q, ObjectId(0), k).unwrap();
            assert_eq!(out.causes.len(), 4, "every dominator is a cause");
            for c in &out.causes {
                assert!(
                    (c.responsibility - 1.0 / (4 - k) as f64).abs() < 1e-12,
                    "k = {k}"
                );
                assert_eq!(c.min_contingency.len(), 4 - k - 1);
                assert_eq!(c.counterfactual, k == 3);
            }
        }
        // k = 4: an IS in the 4-skyband.
        assert!(matches!(
            cr_kskyband(&ds, &tree, &q, ObjectId(0), 4),
            Err(CrpError::NotANonAnswer { .. })
        ));
    }

    #[test]
    fn agrees_with_definition_level_oracle() {
        let mut rng = StdRng::seed_from_u64(808);
        for round in 0..20 {
            let ds = UncertainDataset::from_points((0..9).map(|_| {
                pt(
                    rng.random_range(0.0..12.0f64).round(),
                    rng.random_range(0.0..12.0f64).round(),
                )
            }))
            .unwrap();
            let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
            let q = pt(6.0, 6.0);
            let k = rng.random_range(0..3usize);
            for an in 0..ds.len() {
                let an_id = ds.object_at(an).id();
                let got = cr_kskyband(&ds, &tree, &q, an_id, k);
                // Oracle: an is an answer on P−mask iff its dominator
                // count among the survivors is <= k.
                let an_pt = ds.object_at(an).certain_point().clone();
                let is_answer = |mask: &[bool]| {
                    (0..ds.len())
                        .filter(|&j| {
                            j != an
                                && !mask[j]
                                && dominates(ds.object_at(j).certain_point(), &an_pt, &q)
                        })
                        .count()
                        <= k
                };
                if is_answer(&vec![false; ds.len()]) {
                    assert!(
                        matches!(got, Err(CrpError::NotANonAnswer { .. })),
                        "round {round} an {an}"
                    );
                    continue;
                }
                let expected = oracle_crp(ds.len(), an, is_answer);
                let out = got.expect("non-answer per oracle");
                let got_sig: Vec<(ObjectId, usize)> = out
                    .causes
                    .iter()
                    .map(|c| (c.id, c.min_contingency.len()))
                    .collect();
                let want_sig: Vec<(ObjectId, usize)> = expected
                    .iter()
                    .map(|c| (ds.object_at(c.position).id(), c.min_gamma.len()))
                    .collect();
                assert_eq!(got_sig, want_sig, "round {round} an {an} k {k}");
            }
        }
    }

    #[test]
    fn witness_sets_are_valid() {
        let (ds, q) = fixture();
        let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
        let k = 1usize;
        let out = cr_kskyband(&ds, &tree, &q, ObjectId(0), k).unwrap();
        let an = ds.object_at(0).certain_point();
        for cause in &out.causes {
            let surviving = |removed: &[ObjectId]| {
                ds.iter()
                    .filter(|o| {
                        o.id() != ObjectId(0)
                            && !removed.contains(&o.id())
                            && dominates(o.certain_point(), an, &q)
                    })
                    .count()
            };
            // (P − Γ): still a non-answer.
            assert!(surviving(&cause.min_contingency) > k);
            // (P − Γ − {c}): an answer.
            let mut all = cause.min_contingency.clone();
            all.push(cause.id);
            assert!(surviving(&all) <= k);
        }
    }
}
