//! Bench-only surface over the refine/FMCS hot path.
//!
//! The `hotpath_sweep` experiment measures subset-check throughput of
//! the refinement kernels in isolation — no dataset, no R-tree, just a
//! [`DominanceMatrix`] and a [`CpConfig`] — and needs the run counters
//! even when the search aborts on a subset budget (the engine's public
//! surface drops stats on error outcomes). This module is that seam:
//! `#[doc(hidden)]`, not a stability promise.

use crate::config::CpConfig;
use crate::error::CrpError;
use crate::matrix::{with_scratch, DominanceMatrix};
use crate::types::RunStats;

/// Runs pipeline stages 2–3 (lemma classification + FMCS) over a raw
/// dominance matrix, returning every cause as a
/// `(candidate index, Γ)` pair plus the run counters. The counters are
/// populated even when the result is an error (budget exhaustion) —
/// exactly what a throughput sweep needs to compute checks/second.
#[allow(clippy::type_complexity)]
pub fn refine_matrix(
    matrix: &DominanceMatrix,
    alpha: f64,
    config: &CpConfig,
) -> (Result<Vec<(usize, Vec<usize>)>, CrpError>, RunStats) {
    let mut stats = RunStats::default();
    let result =
        with_scratch(|scratch| crate::refine::refine(matrix, alpha, config, &mut stats, scratch));
    (
        result.map(|recs| recs.into_iter().map(|r| (r.cand, r.gamma)).collect()),
        stats,
    )
}
