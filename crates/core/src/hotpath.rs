//! Bench-only surface over the refine/FMCS hot path.
//!
//! The `hotpath_sweep` experiment measures subset-check throughput of
//! the refinement kernels in isolation — no dataset, no R-tree, just a
//! [`DominanceMatrix`] and a [`CpConfig`] — and needs the run counters
//! even when the search aborts on a subset budget (the engine's public
//! surface drops stats on error outcomes). This module is that seam:
//! `#[doc(hidden)]`, not a stability promise.

use crate::config::CpConfig;
use crate::error::CrpError;
use crate::matrix::{with_scratch, DominanceMatrix};
use crate::types::RunStats;

/// Runs pipeline stages 2–3 (lemma classification + FMCS) over a raw
/// dominance matrix, returning every cause as a
/// `(candidate index, Γ)` pair plus the run counters. The counters are
/// populated even when the result is an error (budget exhaustion) —
/// exactly what a throughput sweep needs to compute checks/second.
#[allow(clippy::type_complexity)]
pub fn refine_matrix(
    matrix: &DominanceMatrix,
    alpha: f64,
    config: &CpConfig,
) -> (Result<Vec<(usize, Vec<usize>)>, CrpError>, RunStats) {
    let mut stats = RunStats::default();
    let result =
        with_scratch(|scratch| crate::refine::refine(matrix, alpha, config, &mut stats, scratch));
    (
        result.map(|recs| recs.into_iter().map(|r| (r.cand, r.gamma)).collect()),
        stats,
    )
}

/// Modeled bytes of matrix-derived state one FMCS subset check streams —
/// the numerator of `hotpath_sweep`'s "effective GB/s" column.
///
/// The model counts the arrays a condition-(i) + condition-(ii) pair
/// must read (complement-matrix factors, per-sample evaluator state,
/// removal mask), **not** cache behaviour: small working sets stay
/// resident in L1/L2, so the derived GB/s can legitimately exceed the
/// machine's DRAM streaming peak and is best read as *effective*
/// (algorithmic) bandwidth per kernel variant.
///
/// `gamma_len` is the typical removal-set size of the workload (only
/// the reference evaluator's list walk depends on it).
pub fn modeled_bytes_per_check(
    candidates: usize,
    samples: usize,
    gamma_len: usize,
    columnar: bool,
    batched: bool,
) -> f64 {
    let n = candidates as f64;
    let l = samples as f64;
    if candidates < crate::engine::fmcs::INCREMENTAL_THRESHOLD {
        // Direct mode streams the comp matrix plus the f64 mask per
        // pass; the fused batched pair serves both conditions from one
        // pass where the sequential protocol takes two.
        let pass = (n * l + n) * 8.0;
        return if columnar && batched {
            pass
        } else {
            2.0 * pass
        };
    }
    // Evaluator mode. Per condition: the per-sample state (ones u32 +
    // delta_ones u32 + log_prod f64 + delta_logq f64 = 24 B/sample);
    // condition (ii) adds one log-factor column (8 B/sample). The
    // enumerator's ~2 delta moves per subset each read one log-factor
    // column and read-modify-write the delta state (16 B/sample).
    let per_sample_state = 24.0 * l;
    if columnar {
        let cond_pair = 2.0 * per_sample_state + 8.0 * l;
        let moves = 2.0 * (8.0 * l + 16.0 * l);
        cond_pair + moves
    } else {
        // The reference protocol re-walks the whole removal list's
        // log-factor columns for both conditions.
        (2.0 * gamma_len as f64 + 1.0) * 8.0 * l + 2.0 * per_sample_state
    }
}
