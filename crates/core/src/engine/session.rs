//! The **[`ExplainSession`]** trait: one serving surface over every
//! engine flavour.
//!
//! [`ExplainEngine`] and [`ShardedExplainEngine`] used to expose six
//! near-duplicate explain entry points *each*. All twelve now forward
//! through the planner ([`super::plan`]); this trait is the surface a
//! serving layer (the `crp` CLI, a future async front-end) programs
//! against without caring which engine flavour sits behind it:
//!
//! ```
//! use crp_core::engine::{ExplainRequest, ExplainSession};
//! use crp_core::{EngineConfig, ExplainEngine, ExplainStrategy};
//! use crp_geom::Point;
//! use crp_uncertain::{ObjectId, UncertainDataset};
//!
//! fn serve(session: &dyn ExplainSession, q: &Point) -> usize {
//!     let report = session.run(&[
//!         ExplainRequest::alpha_sweep(q, ObjectId(0), vec![0.25, 0.5, 0.75])
//!             .with_strategy(ExplainStrategy::Cp),
//!     ]);
//!     assert_eq!(report.counters.stage1_units, 1, "three α share one unit");
//!     report.results.into_iter().filter(|r| r.is_ok()).count()
//! }
//!
//! let ds = UncertainDataset::from_points(vec![
//!     Point::from([10.0, 10.0]),
//!     Point::from([7.0, 7.0]),
//! ])
//! .unwrap();
//! let engine = ExplainEngine::new(ds, EngineConfig::default()).unwrap();
//! assert_eq!(serve(&engine, &Point::from([5.0, 5.0])), 3);
//! ```

use super::plan::{self, ExplainRequest, PlanReport};
use super::{EngineConfig, ExplainEngine, ShardedExplainEngine};
use crate::error::CrpError;
use crate::types::CrpOutcome;
use crp_geom::Point;
use crp_rtree::QueryStats;
use crp_uncertain::{Epoch, ObjectId};

/// A planned explain session: any engine that can compile
/// [`ExplainRequest`] workloads into deduplicated stage-1 work units
/// and execute them. Implemented by [`ExplainEngine`] (one index) and
/// [`ShardedExplainEngine`] (partitioned indexes); both produce
/// bit-identical outcomes for the same workload, so callers can swap
/// flavours freely.
pub trait ExplainSession: Sync {
    /// The session configuration (default α, strategy, lemma
    /// switches, parallelism).
    fn config(&self) -> &EngineConfig;

    /// The dataset version this session currently serves.
    fn epoch(&self) -> Epoch;

    /// Node accesses, update-path work and cache events accumulated
    /// across every call so far.
    fn accumulated_io(&self) -> QueryStats;

    /// Live (row, outcome) entry counts of the explanation cache.
    fn cache_len(&self) -> (usize, usize);

    /// Plans `requests` as **one** workload — stage-1 work units
    /// deduplicated across all of them — and executes the plan.
    /// Results follow the requests' expansion order; the report's
    /// [`counters`](PlanReport::counters) say how much work planning
    /// saved.
    fn run(&self, requests: &[ExplainRequest]) -> PlanReport;

    /// How many stage-1 partitions back this session (1 when
    /// unsharded). A serving front-end uses this to size a
    /// multi-process shard fleet.
    fn shard_count(&self) -> usize {
        1
    }

    /// Merged stage-1 candidate ids for one non-answer: sorted,
    /// deduplicated, bit-identical across engine flavours for the
    /// same dataset.
    fn candidate_ids(&self, q: &Point, an: ObjectId) -> Result<Vec<ObjectId>, CrpError>;

    /// One partition's share of the stage-1 candidates, for serving
    /// stage-1 across OS processes. Merging every shard's output with
    /// [`crate::engine::merge::merge_candidate_ids`] reproduces
    /// [`candidate_ids`](Self::candidate_ids) exactly.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= self.shard_count()`.
    fn shard_candidate_ids(
        &self,
        shard: usize,
        q: &Point,
        an: ObjectId,
    ) -> Result<Vec<ObjectId>, CrpError>;

    /// Convenience: one explanation at the session defaults, through
    /// the planner.
    fn explain_one(&self, q: &Point, an: ObjectId) -> Result<CrpOutcome, CrpError> {
        self.run(&[ExplainRequest::explain(q, an)]).into_single()
    }

    /// Convenience: one batch at the session defaults, through the
    /// planner.
    fn explain_many(&self, q: &Point, ans: &[ObjectId]) -> Vec<Result<CrpOutcome, CrpError>> {
        self.run(&[ExplainRequest::batch(q, ans)]).results
    }
}

impl ExplainSession for ExplainEngine {
    fn config(&self) -> &EngineConfig {
        ExplainEngine::config(self)
    }

    fn epoch(&self) -> Epoch {
        ExplainEngine::epoch(self)
    }

    fn accumulated_io(&self) -> QueryStats {
        ExplainEngine::accumulated_io(self)
    }

    fn cache_len(&self) -> (usize, usize) {
        ExplainEngine::cache_len(self)
    }

    fn candidate_ids(&self, q: &Point, an: ObjectId) -> Result<Vec<ObjectId>, CrpError> {
        ExplainEngine::candidate_ids(self, q, an)
    }

    fn shard_candidate_ids(
        &self,
        shard: usize,
        q: &Point,
        an: ObjectId,
    ) -> Result<Vec<ObjectId>, CrpError> {
        assert!(shard < 1, "shard {shard} out of range for 1 shard");
        ExplainEngine::candidate_ids(self, q, an)
    }

    fn run(&self, requests: &[ExplainRequest]) -> PlanReport {
        plan::execute(self, requests)
    }
}

impl ExplainSession for ShardedExplainEngine {
    fn config(&self) -> &EngineConfig {
        ShardedExplainEngine::config(self)
    }

    fn epoch(&self) -> Epoch {
        ShardedExplainEngine::epoch(self)
    }

    fn accumulated_io(&self) -> QueryStats {
        ShardedExplainEngine::accumulated_io(self)
    }

    fn cache_len(&self) -> (usize, usize) {
        ShardedExplainEngine::cache_len(self)
    }

    fn shard_count(&self) -> usize {
        ShardedExplainEngine::shard_count(self)
    }

    fn candidate_ids(&self, q: &Point, an: ObjectId) -> Result<Vec<ObjectId>, CrpError> {
        ShardedExplainEngine::candidate_ids(self, q, an)
    }

    fn shard_candidate_ids(
        &self,
        shard: usize,
        q: &Point,
        an: ObjectId,
    ) -> Result<Vec<ObjectId>, CrpError> {
        ShardedExplainEngine::shard_candidates(self, shard, q, an)
    }

    fn run(&self, requests: &[ExplainRequest]) -> PlanReport {
        plan::execute(self, requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ShardPolicy;
    use crp_uncertain::{UncertainDataset, UncertainObject};

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    fn fixture() -> UncertainDataset {
        UncertainDataset::from_objects(vec![
            UncertainObject::certain(ObjectId(0), pt(10.0, 10.0)),
            UncertainObject::certain(ObjectId(1), pt(7.0, 7.0)),
            UncertainObject::with_equal_probs(ObjectId(2), vec![pt(8.0, 9.0), pt(30.0, 30.0)])
                .unwrap(),
            UncertainObject::certain(ObjectId(3), pt(40.0, 40.0)),
        ])
        .unwrap()
    }

    #[test]
    fn trait_objects_serve_both_engine_flavours() {
        let config = EngineConfig::with_alpha(0.75);
        let single = ExplainEngine::new(fixture(), config).expect("valid engine config");
        let sharded = ShardedExplainEngine::new(fixture(), config, 2, ShardPolicy::Spatial)
            .expect("valid engine config");
        let sessions: Vec<&dyn ExplainSession> = vec![&single, &sharded];
        let q = pt(5.0, 5.0);
        let outcomes: Vec<_> = sessions
            .iter()
            .map(|s| s.explain_one(&q, ObjectId(0)).expect("non-answer"))
            .collect();
        assert_eq!(
            outcomes[0].causes, outcomes[1].causes,
            "sharded ≡ unsharded through the session trait"
        );
        for s in &sessions {
            let batch = s.explain_many(&q, &[ObjectId(0), ObjectId(3)]);
            assert_eq!(batch.len(), 2);
            assert!(s.accumulated_io().node_accesses > 0);
            assert!(s.cache_len().0 >= 1, "rows cached through the planner");
        }
    }

    #[test]
    fn alpha_sweep_requests_share_one_unit() {
        let engine = ExplainEngine::new(fixture(), EngineConfig::with_alpha(0.75))
            .expect("valid engine config");
        let q = pt(5.0, 5.0);
        // Two *requests*, same (an, q), disjoint α lists: the planner
        // dedups them into one stage-1 unit across request boundaries.
        let report = engine.run(&[
            ExplainRequest::alpha_sweep(&q, ObjectId(0), vec![0.25, 0.5]),
            ExplainRequest::alpha_sweep(&q, ObjectId(0), vec![0.75, 0.9]),
        ]);
        assert_eq!(report.results.len(), 4);
        assert_eq!(report.counters.stage1_units, 1);
        assert_eq!(report.counters.stage1_shared_tasks, 3);
        assert_eq!(report.counters.stage1_traversals, 1);
        assert_eq!(report.counters.stage1_derived, 0);
    }
}
