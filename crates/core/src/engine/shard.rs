//! **Partition-parallel explain**: the [`ShardedExplainEngine`].
//!
//! The paper's CP/CR algorithms bound every explanation to a candidate
//! set found by R-tree filtering (Lemmas 1–2, 7), which makes the
//! candidate space naturally partitionable: causes found in disjoint
//! data partitions can be merged without re-running refinement. This
//! module exploits that:
//!
//! * a pluggable [`ShardPolicy`] splits the dataset into disjoint
//!   shards ([`ShardPolicy::RoundRobin`], [`ShardPolicy::HashById`],
//!   or STR-style [`ShardPolicy::Spatial`] slabs),
//! * each `Shard` owns its own R-trees and its own
//!   [`AtomicQueryStats`] accumulator (rolled up engine-wide with
//!   `Sum`),
//! * `explain` / `explain_batch` fan **candidate generation** (pipeline
//!   stage 1) out across the shards — in parallel with rayon for a
//!   single call, shard-serial inside an already query-parallel batch —
//! * the [merge stage](super::merge) recombines the per-shard candidate
//!   sets into the exact global candidate list, and one FMCS pass runs
//!   over it.
//!
//! Because the merged candidate set is *identical* to what the single
//! global tree produces, a sharded session's outcomes (causes,
//! responsibilities, contingency sets, and error cases) are
//! **bit-identical** to [`ExplainEngine`](super::ExplainEngine)'s — the
//! engine-agreement property tests pin this for every policy × shard
//! count. Only the node-access counters differ (several small trees
//! instead of one big one).
//!
//! This is the step from rayon-on-one-box toward multi-node scale: the
//! per-shard stage-1 API ([`ShardedExplainEngine::shard_candidates`])
//! is exactly the request a remote partition server would answer, and
//! [`merge_candidate_ids`](super::merge::merge_candidate_ids) is the
//! router's recombine step.

use super::cache::{self, ExplanationCache, ServeTrace};
use super::certain::{
    collect_dominators, run_certain, DominatorSource, Lemma7ClosedForm, SubsetVerify,
};
use super::filter::{self, FilterStage, ScanFilter};
use super::pipeline::{self, RegionHitSource};
use super::plan::{self, ExplainRequest, PlanHost};
use super::{
    oracle_outcome, update_error, validate_resolution, EngineConfig, ExplainStrategy, Workload,
};
use crate::config::CpConfig;
use crate::error::CrpError;
use crate::oracle::{oracle_cp, oracle_cr};
use crate::types::{CrpOutcome, RunStats};
use crp_geom::{dominance_rect, HyperRect, Point};
use crp_rtree::{AtomicQueryStats, QueryStats, RTree, RTreeParams, WindowQuery};
use crp_skyline::{build_object_rtree, build_point_rtree};
use crp_uncertain::{
    Epoch, ObjectId, PdfDataset, PdfObject, UncertainDataset, UncertainObject, Update,
};
use rayon::prelude::*;
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// How a dataset is split across shards. All policies are
/// deterministic: the same dataset and shard count always produce the
/// same partition, so sharded sessions are reproducible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Object `i` (by dataset position) goes to shard `i mod n` —
    /// perfectly balanced, spatially blind. The best default for
    /// latency: every shard does a near-equal share of each query's
    /// filtering work.
    #[default]
    RoundRobin,
    /// Shard by a (splitmix64) hash of the object id — balanced in
    /// expectation and stable under reordering of the input, the
    /// classic key-routing policy of a distributed store.
    HashById,
    /// STR-style spatial slabs: objects are sorted by MBR center along
    /// the dimension of widest spread and cut into `n` contiguous runs.
    /// Queries whose filter windows are local touch few shards (the
    /// others are pruned by their shard MBR without any node access).
    Spatial,
}

impl ShardPolicy {
    /// Every policy, for sweeps and tests.
    pub const ALL: [ShardPolicy; 3] = [
        ShardPolicy::RoundRobin,
        ShardPolicy::HashById,
        ShardPolicy::Spatial,
    ];

    /// Canonical CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            ShardPolicy::RoundRobin => "round-robin",
            ShardPolicy::HashById => "hash-by-id",
            ShardPolicy::Spatial => "spatial",
        }
    }

    /// Assigns each object (described by its id and a representative
    /// point) to a shard in `0..n`. `n` must be ≥ 1.
    fn assign(self, ids: &[ObjectId], centers: &[Point], n: usize) -> Vec<usize> {
        debug_assert!(n >= 1);
        debug_assert_eq!(ids.len(), centers.len());
        match self {
            ShardPolicy::RoundRobin => (0..ids.len()).map(|pos| pos % n).collect(),
            ShardPolicy::HashById => ids
                .iter()
                .map(|id| (splitmix64(id.0 as u64) % n as u64) as usize)
                .collect(),
            ShardPolicy::Spatial => spatial_slabs(centers, n),
        }
    }
}

impl fmt::Display for ShardPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ShardPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "round-robin" | "roundrobin" | "rr" => Ok(ShardPolicy::RoundRobin),
            "hash-by-id" | "hash" | "hashbyid" => Ok(ShardPolicy::HashById),
            "spatial" | "str" => Ok(ShardPolicy::Spatial),
            other => Err(format!(
                "unknown shard policy {other:?} (use round-robin|hash-by-id|spatial)"
            )),
        }
    }
}

/// Finalizer of splitmix64 — a deterministic, well-mixed 64-bit hash
/// (no `std` `RandomState`, whose per-process seed would make shard
/// layouts irreproducible).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Picks the split dimension of the spatial policy: widest spread of
/// the object centers.
fn spatial_split_dim(centers: &[Point]) -> usize {
    let dim = centers.first().map(|c| c.dim()).unwrap_or(0);
    (0..dim)
        .map(|d| {
            let (lo, hi) = centers
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), c| {
                    (lo.min(c.coords()[d]), hi.max(c.coords()[d]))
                });
            (d, hi - lo)
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite extents"))
        .map(|(d, _)| d)
        .unwrap_or(0)
}

/// Center order along one dimension (ties by index) — shared by slab
/// assignment and the routing-table construction so they agree.
fn spatial_order(centers: &[Point], split_dim: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..centers.len()).collect();
    order.sort_by(|&a, &b| {
        centers[a].coords()[split_dim]
            .partial_cmp(&centers[b].coords()[split_dim])
            .expect("finite coordinates")
            .then(a.cmp(&b))
    });
    order
}

/// Balanced run lengths of `n` slabs over `len` items: the first
/// `len % n` slabs get one extra.
fn slab_lengths(len: usize, n: usize) -> impl Iterator<Item = usize> {
    let base = len / n;
    let extra = len % n;
    (0..n).map(move |s| base + usize::from(s < extra))
}

/// STR-style slab assignment: sort by center along the widest-spread
/// dimension, cut into `n` balanced contiguous runs.
fn spatial_slabs(centers: &[Point], n: usize) -> Vec<usize> {
    let len = centers.len();
    if len == 0 {
        return Vec::new();
    }
    let split_dim = spatial_split_dim(centers);
    let order = spatial_order(centers, split_dim);
    let mut assignment = vec![0usize; len];
    let mut cursor = 0usize;
    for (slab_idx, chunk_len) in slab_lengths(len, n).enumerate() {
        for &pos in order.iter().skip(cursor).take(chunk_len) {
            assignment[pos] = slab_idx;
        }
        cursor += chunk_len;
    }
    assignment
}

/// The routing table of a spatial session: `cuts[s-1]` is the lower
/// boundary (center coordinate along `split_dim`) of slab `s`; an
/// insert routes to the number of cuts ≤ its coordinate. Slabs that
/// were empty at (re)partition time get an `∞` cut, so nothing routes
/// past them until the next repartition.
#[derive(Clone, Debug)]
struct SpatialLayout {
    split_dim: usize,
    cuts: Vec<f64>,
}

impl SpatialLayout {
    fn build(centers: &[Point], n: usize) -> Option<Self> {
        if centers.is_empty() {
            return None;
        }
        let split_dim = spatial_split_dim(centers);
        let order = spatial_order(centers, split_dim);
        let mut cuts = Vec::with_capacity(n.saturating_sub(1));
        let mut cursor = 0usize;
        for (slab, chunk_len) in slab_lengths(centers.len(), n).enumerate() {
            if slab > 0 {
                cuts.push(
                    order
                        .get(cursor)
                        .map(|&pos| centers[pos].coords()[split_dim])
                        .unwrap_or(f64::INFINITY),
                );
            }
            cursor += chunk_len;
        }
        Some(Self { split_dim, cuts })
    }

    fn route(&self, center: &Point) -> usize {
        let coord = center.coords()[self.split_dim];
        self.cuts.partition_point(|&cut| cut <= coord)
    }
}

/// One shard's data: a disjoint slice of the dataset. Shards may be
/// empty (more shards than objects); empty shards answer every stage-1
/// request with an empty hit list at zero node accesses.
#[derive(Clone)]
enum ShardData {
    Discrete(UncertainDataset),
    Pdf(PdfDataset),
}

/// Splits a discrete dataset into per-shard datasets by assignment —
/// shared by construction and the spatial repartition path.
fn partition_discrete(
    ds: &UncertainDataset,
    assignment: &[usize],
    shards: usize,
) -> Vec<UncertainDataset> {
    let mut parts: Vec<UncertainDataset> = (0..shards).map(|_| UncertainDataset::new()).collect();
    for (pos, &shard) in assignment.iter().enumerate() {
        parts[shard]
            .push(ds.object_at(pos).clone())
            .expect("shard objects inherit the dataset's validity");
    }
    parts
}

/// [`partition_discrete`] for pdf datasets.
fn partition_pdf(ds: &PdfDataset, assignment: &[usize], shards: usize) -> Vec<PdfDataset> {
    let mut parts: Vec<PdfDataset> = (0..shards).map(|_| PdfDataset::new()).collect();
    for (pos, &shard) in assignment.iter().enumerate() {
        parts[shard]
            .push(ds.objects()[pos].clone())
            .expect("shard objects inherit the dataset's validity");
    }
    parts
}

/// One partition of a sharded session: its slice of the dataset, its
/// own lazily built R-trees, and its own I/O accumulator.
pub(crate) struct Shard {
    data: ShardData,
    rtree: Option<RTreeParams>,
    /// Object-MBR tree (regions for pdf shards).
    object_tree: OnceLock<RTree<ObjectId>>,
    /// Point tree (certain data only).
    point_tree: OnceLock<RTree<ObjectId>>,
    /// The shard's bounding box (`None` for empty shards) — the
    /// routing-table entry window pruning consults without any node
    /// access. Invalidated by every mutation.
    mbr_cache: OnceLock<Option<HyperRect>>,
    /// Node accesses and update-path work of every query/update this
    /// shard served.
    io: AtomicQueryStats,
    /// Times this shard's trees/dataset were rebuilt (stale-tree drops
    /// and repartitions).
    rebuilds: u64,
    /// Mutations applied since the shard's trees were last (re)built —
    /// the staleness heuristic of the spatial policy.
    mutations: usize,
}

impl Shard {
    /// Snapshot clone for [`super::mvcc::MvccEngine`]: dataset and built
    /// trees copied (frozen packed images shared through their `Arc`s),
    /// maintenance state carried over, I/O accumulator fresh.
    fn fork(&self) -> Self {
        Self {
            data: self.data.clone(),
            rtree: self.rtree,
            object_tree: super::clone_slot(&self.object_tree),
            point_tree: super::clone_slot(&self.point_tree),
            mbr_cache: super::clone_slot(&self.mbr_cache),
            io: AtomicQueryStats::new(),
            rebuilds: self.rebuilds,
            mutations: self.mutations,
        }
    }

    fn new(data: ShardData, rtree: Option<RTreeParams>) -> Self {
        Self {
            data,
            rtree,
            object_tree: OnceLock::new(),
            point_tree: OnceLock::new(),
            mbr_cache: OnceLock::new(),
            io: AtomicQueryStats::new(),
            rebuilds: 0,
            mutations: 0,
        }
    }

    fn len(&self) -> usize {
        match &self.data {
            ShardData::Discrete(ds) => ds.len(),
            ShardData::Pdf(ds) => ds.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn params(&self, dim: usize) -> RTreeParams {
        self.rtree
            .unwrap_or_else(|| RTreeParams::paper_default(dim))
    }

    /// The shard's MBR over object MBRs / regions — the router-level
    /// pruning key: a query window that misses it cannot hit the shard.
    fn mbr(&self) -> Option<HyperRect> {
        match &self.data {
            ShardData::Discrete(ds) => {
                let mut rects = ds.iter().map(|o| o.mbr());
                let first = rects.next()?;
                Some(rects.fold(first, |acc, r| acc.union(&r)))
            }
            ShardData::Pdf(ds) => {
                let mut rects = ds.iter().map(|o| o.region().clone());
                let first = rects.next()?;
                Some(rects.fold(first, |acc, r| acc.union(&r)))
            }
        }
    }

    fn object_tree(&self) -> &RTree<ObjectId> {
        self.object_tree.get_or_init(|| match &self.data {
            ShardData::Discrete(ds) => {
                let dim = ds.dim().expect("empty shards are guarded by callers");
                build_object_rtree(ds, self.params(dim))
            }
            ShardData::Pdf(ds) => {
                let dim = ds.dim().expect("empty shards are guarded by callers");
                crate::pdf::build_pdf_rtree(ds, self.params(dim))
            }
        })
    }

    fn point_tree(&self) -> &RTree<ObjectId> {
        self.point_tree.get_or_init(|| match &self.data {
            ShardData::Discrete(ds) => {
                let dim = ds.dim().expect("empty shards are guarded by callers");
                build_point_rtree(ds, self.params(dim))
            }
            ShardData::Pdf(_) => unreachable!("point trees only exist for certain shards"),
        })
    }

    /// The stage-1 filter view of this shard's object tree: the packed
    /// frozen image (lazily built per shard, invalidated by the shard's
    /// update path through the tree's generation bump) or the pointer
    /// tree — the per-shard counterpart of the unsharded engine's
    /// `filter_view`.
    fn filter_tree(&self, packed: bool) -> &(dyn WindowQuery<ObjectId> + Sync) {
        let tree = self.object_tree();
        if packed {
            tree.frozen()
        } else {
            tree
        }
    }

    /// Stage 1 (probabilistic) for this shard: the shard-local
    /// candidate causes of `an` — Lemma 2 window hits refined to exact
    /// dominance, as ascending ids. Returns the traversal's node
    /// accesses and also folds them into the shard accumulator.
    fn sample_candidates(
        &self,
        an: &UncertainObject,
        q: &Point,
        windows: &[HyperRect],
        packed: bool,
    ) -> (Vec<ObjectId>, QueryStats) {
        let ShardData::Discrete(ds) = &self.data else {
            unreachable!("probabilistic stage 1 runs on discrete shards");
        };
        if ds.is_empty() || !self.intersects_any(windows) {
            return (Vec::new(), QueryStats::default());
        }
        let mut qs = QueryStats::default();
        // The unsharded filter's exact body over this shard's tree and
        // dataset — the union over (disjoint) shards is therefore the
        // exact global candidate set.
        let hits = filter::window_candidate_positions(
            self.filter_tree(packed),
            ds,
            an,
            q,
            windows,
            &mut qs,
        );
        let mut ids: Vec<ObjectId> = hits.into_iter().map(|pos| ds.object_at(pos).id()).collect();
        ids.sort_unstable();
        self.io.merge(&qs);
        (ids, qs)
    }

    /// Stage 1 (certain) for this shard: the shard-local dominators of
    /// `q` w.r.t. `an`, as ascending ids.
    fn point_dominators(
        &self,
        q: &Point,
        an: &Point,
        an_id: ObjectId,
    ) -> (Vec<ObjectId>, QueryStats) {
        let ShardData::Discrete(ds) = &self.data else {
            unreachable!("certain stage 1 runs on discrete shards");
        };
        let window = dominance_rect(an, q);
        if ds.is_empty() || !self.intersects_any(std::slice::from_ref(&window)) {
            return (Vec::new(), QueryStats::default());
        }
        let mut qs = QueryStats::default();
        let mut ids = collect_dominators(self.point_tree(), q, an, an_id, &mut qs);
        ids.sort_unstable();
        ids.dedup();
        self.io.merge(&qs);
        (ids, qs)
    }

    /// Stage 1 (pdf) for this shard: the shard-local region hits of the
    /// per-quadrant windows, as ascending ids.
    fn region_hits(
        &self,
        windows: &[HyperRect],
        exclude: ObjectId,
        packed: bool,
    ) -> (Vec<ObjectId>, QueryStats) {
        let ShardData::Pdf(_) = &self.data else {
            unreachable!("pdf stage 1 runs on pdf shards");
        };
        if self.is_empty() || !self.intersects_any(windows) {
            return (Vec::new(), QueryStats::default());
        }
        let mut qs = QueryStats::default();
        let ids = pipeline::tree_region_hits(self.filter_tree(packed), windows, exclude, &mut qs);
        self.io.merge(&qs);
        (ids, qs)
    }

    /// Coverage query for the plan executor: every id this shard
    /// indexes whose MBR/region intersects `region` (the bounding box
    /// of a coverage root's filter windows), ascending, `exclude`
    /// removed. The union over disjoint shards is the exact global
    /// coverage list containment-derived stage-1 units filter from.
    fn coverage_hits(
        &self,
        region: &HyperRect,
        exclude: ObjectId,
        packed: bool,
    ) -> (Vec<ObjectId>, QueryStats) {
        if self.is_empty() || !self.intersects_any(std::slice::from_ref(region)) {
            return (Vec::new(), QueryStats::default());
        }
        let mut qs = QueryStats::default();
        let ids = pipeline::tree_region_hits(
            self.filter_tree(packed),
            std::slice::from_ref(region),
            exclude,
            &mut qs,
        );
        self.io.merge(&qs);
        (ids, qs)
    }

    /// Router-level shard pruning: does any window intersect this
    /// shard's MBR? Costs no node access (the MBR is cached outside the
    /// tree) — the sharded counterpart of a distributed routing table.
    fn intersects_any(&self, windows: &[HyperRect]) -> bool {
        match self.cached_mbr() {
            Some(mbr) => windows.iter().any(|w| w.intersects(mbr)),
            None => false,
        }
    }

    fn cached_mbr(&self) -> Option<&HyperRect> {
        self.mbr_cache.get_or_init(|| self.mbr()).as_ref()
    }

    // --- the incremental update path ---------------------------------

    fn discrete_mut(&mut self) -> &mut UncertainDataset {
        match &mut self.data {
            ShardData::Discrete(ds) => ds,
            ShardData::Pdf(_) => unreachable!("discrete updates route to discrete shards"),
        }
    }

    fn pdf_mut(&mut self) -> &mut PdfDataset {
        match &mut self.data {
            ShardData::Pdf(ds) => ds,
            ShardData::Discrete(_) => unreachable!("pdf updates route to pdf shards"),
        }
    }

    /// Books one logical mutation: invalidates the routing MBR, bumps
    /// the staleness counter (only while a tree exists to go stale) and
    /// the update counters.
    fn note_mutation(&mut self, inserts: u64, removes: u64) {
        self.mbr_cache = OnceLock::new();
        if self.object_tree.get().is_some() || self.point_tree.get().is_some() {
            self.mutations += 1;
        }
        self.io.merge(&QueryStats {
            inserts,
            removes,
            ..Default::default()
        });
    }

    /// Incrementally patches this shard's object tree — the shared
    /// [`super::patch_rect_tree`] body, so the maintenance invariants
    /// cannot drift from the unsharded engine's.
    fn patch_object_tree(
        &mut self,
        remove: Option<(HyperRect, ObjectId)>,
        insert: Option<(HyperRect, ObjectId)>,
    ) {
        super::patch_rect_tree(&mut self.object_tree, remove, insert, &self.io);
    }

    /// Incrementally patches this shard's point tree, dropping it when
    /// the shard stops being certain (non-certain objects cannot be
    /// indexed as points).
    fn patch_point_tree(
        &mut self,
        remove: Option<(Point, ObjectId)>,
        insert: Option<(Point, ObjectId)>,
    ) {
        let still_certain = match &self.data {
            ShardData::Discrete(ds) => ds.is_certain(),
            ShardData::Pdf(_) => false,
        };
        super::patch_point_tree_slot(
            &mut self.point_tree,
            still_certain,
            remove,
            insert,
            &self.io,
        );
    }

    fn insert_discrete(&mut self, obj: UncertainObject) {
        let id = obj.id();
        let mbr = obj.mbr();
        let point = obj.is_certain().then(|| obj.certain_point().clone());
        self.discrete_mut()
            .push(obj)
            .expect("globally validated update");
        self.patch_object_tree(None, Some((mbr, id)));
        self.patch_point_tree(None, point.map(|p| (p, id)));
        self.note_mutation(1, 0);
    }

    fn remove_discrete(&mut self, id: ObjectId) {
        let old = self
            .discrete_mut()
            .remove(id)
            .expect("owner table routed to the owning shard");
        let point = old.is_certain().then(|| old.certain_point().clone());
        self.patch_object_tree(Some((old.mbr(), id)), None);
        self.patch_point_tree(point.map(|p| (p, id)), None);
        self.note_mutation(0, 1);
    }

    fn replace_discrete(&mut self, obj: UncertainObject) {
        let id = obj.id();
        let new_mbr = obj.mbr();
        let new_point = obj.is_certain().then(|| obj.certain_point().clone());
        let old = self
            .discrete_mut()
            .replace(obj)
            .expect("globally validated update");
        let old_point = old.is_certain().then(|| old.certain_point().clone());
        self.patch_object_tree(Some((old.mbr(), id)), Some((new_mbr, id)));
        self.patch_point_tree(old_point.map(|p| (p, id)), new_point.map(|p| (p, id)));
        self.note_mutation(1, 1);
    }

    fn insert_pdf(&mut self, obj: PdfObject) {
        let id = obj.id();
        let region = obj.region().clone();
        self.pdf_mut().push(obj).expect("globally validated update");
        self.patch_object_tree(None, Some((region, id)));
        self.note_mutation(1, 0);
    }

    fn remove_pdf(&mut self, id: ObjectId) {
        let old = self
            .pdf_mut()
            .remove(id)
            .expect("owner table routed to the owning shard");
        self.patch_object_tree(Some((old.region().clone(), id)), None);
        self.note_mutation(0, 1);
    }

    fn replace_pdf(&mut self, obj: PdfObject) {
        let id = obj.id();
        let new_region = obj.region().clone();
        let old = self
            .pdf_mut()
            .replace(obj)
            .expect("globally validated update");
        self.patch_object_tree(Some((old.region().clone(), id)), Some((new_region, id)));
        self.note_mutation(1, 1);
    }

    /// Re-freezes the packed images of whichever of this shard's trees
    /// are built — a no-op for shards whose image is already warm, so
    /// fanning this over every shard after an update only rebuilds the
    /// one the routed mutation invalidated. Counted in
    /// [`QueryStats::refreezes`] via the shard accumulator.
    fn refreeze_trees(&mut self) {
        for slot in [&mut self.object_tree, &mut self.point_tree] {
            if let Some(tree) = slot.get_mut() {
                tree.refreeze();
                self.io.merge(&tree.take_upkeep());
            }
        }
    }

    /// Drops the shard's indexes for a lazy rebuild from its current
    /// data — the stale-shard path: only this shard pays the rebuild,
    /// every other shard keeps serving untouched.
    fn drop_trees(&mut self) {
        self.object_tree = OnceLock::new();
        self.point_tree = OnceLock::new();
        self.mbr_cache = OnceLock::new();
        self.mutations = 0;
        self.rebuilds += 1;
    }

    /// Swaps in a freshly partitioned dataset (the repartition path),
    /// keeping the shard's I/O accumulator.
    fn reset_data(&mut self, data: ShardData) {
        self.data = data;
        self.drop_trees();
    }
}

/// A partition-parallel explain session: the same public surface as
/// [`ExplainEngine`](super::ExplainEngine), answered by fanning
/// pipeline stage 1 out over disjoint shards and merging. See the
/// [module docs](self) for the guarantees.
pub struct ShardedExplainEngine {
    /// The global workload — validation, dominance matrices and the
    /// oracle strategies run against it (never indexed; all index I/O
    /// happens in the shards).
    data: Workload,
    shards: Vec<Shard>,
    policy: ShardPolicy,
    config: EngineConfig,
    /// Which shard holds each object — the routing table deletes and
    /// replaces consult so a mutation touches exactly one shard.
    owner: HashMap<ObjectId, usize>,
    /// Round-robin insert cursor (continues the construction pattern).
    rr_cursor: usize,
    /// Spatial routing table (`None` for non-spatial policies or a
    /// session built over an empty dataset).
    spatial: Option<SpatialLayout>,
    /// Times the whole spatial layout was recut because a slab
    /// overflowed.
    repartitions: u64,
    /// The same two-layer explanation cache the unsharded session
    /// keeps (stage-1 rows shared across α + finished outcomes), with
    /// the same geometric invalidation under updates; its counters are
    /// merged into the engine totals alongside the per-shard
    /// accumulators.
    cache: ExplanationCache,
}

impl ShardedExplainEngine {
    /// Creates a sharded session over a discrete-sample (or certain)
    /// dataset, split into `shards` partitions by `policy`
    /// (`shards = 0` is clamped to 1; a 1-shard session is the
    /// unsharded engine with extra steps, useful as a baseline).
    /// Fails with [`CrpError::InvalidConfig`] on an invalid
    /// configuration.
    pub fn new(
        ds: UncertainDataset,
        config: EngineConfig,
        shards: usize,
        policy: ShardPolicy,
    ) -> Result<Self, CrpError> {
        config.validate()?;
        let shards = shards.max(1);
        let ids: Vec<ObjectId> = ds.iter().map(|o| o.id()).collect();
        let centers: Vec<Point> = ds.iter().map(|o| o.mbr().center()).collect();
        let assignment = policy.assign(&ids, &centers, shards);
        let parts = partition_discrete(&ds, &assignment, shards);
        let spatial = (policy == ShardPolicy::Spatial)
            .then(|| SpatialLayout::build(&centers, shards))
            .flatten();
        Ok(Self {
            data: Workload::Discrete(ds),
            shards: parts
                .into_iter()
                .map(|p| Shard::new(ShardData::Discrete(p), config.rtree))
                .collect(),
            policy,
            config,
            owner: ids.iter().copied().zip(assignment).collect(),
            rr_cursor: ids.len(),
            spatial,
            repartitions: 0,
            cache: ExplanationCache::new(),
        })
    }

    /// Creates a sharded session over a continuous-pdf dataset
    /// (Section 3.2); `resolution` as in
    /// [`ExplainEngine::for_pdf`](super::ExplainEngine::for_pdf).
    pub fn for_pdf(
        ds: PdfDataset,
        resolution: usize,
        config: EngineConfig,
        shards: usize,
        policy: ShardPolicy,
    ) -> Result<Self, CrpError> {
        config.validate()?;
        validate_resolution(resolution)?;
        let shards = shards.max(1);
        let ids: Vec<ObjectId> = ds.iter().map(|o| o.id()).collect();
        let centers: Vec<Point> = ds.iter().map(|o| o.region().center()).collect();
        let assignment = policy.assign(&ids, &centers, shards);
        let parts = partition_pdf(&ds, &assignment, shards);
        let spatial = (policy == ShardPolicy::Spatial)
            .then(|| SpatialLayout::build(&centers, shards))
            .flatten();
        Ok(Self {
            data: Workload::Pdf { ds, resolution },
            shards: parts
                .into_iter()
                .map(|p| Shard::new(ShardData::Pdf(p), config.rtree))
                .collect(),
            policy,
            config,
            owner: ids.iter().copied().zip(assignment).collect(),
            rr_cursor: ids.len(),
            spatial,
            repartitions: 0,
            cache: ExplanationCache::new(),
        })
    }

    /// Number of shards (≥ 1; some may be empty).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Objects per shard, in shard order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// The partitioning policy of this session.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// The session configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Forks an immutable snapshot of this sharded session — the
    /// partition-parallel counterpart of
    /// [`ExplainEngine::fork`](super::ExplainEngine::fork): the global
    /// dataset, every shard (data + built trees, frozen images shared
    /// zero-copy), the owner table and the spatial layout are carried
    /// over, while accumulators and the explanation cache start fresh.
    pub fn fork(&self) -> Self {
        Self {
            data: self.data.clone(),
            shards: self.shards.iter().map(Shard::fork).collect(),
            policy: self.policy,
            config: self.config,
            owner: self.owner.clone(),
            rr_cursor: self.rr_cursor,
            spatial: self.spatial.clone(),
            repartitions: self.repartitions,
            cache: ExplanationCache::new(),
        }
    }

    /// The global discrete dataset of this session.
    ///
    /// # Panics
    ///
    /// Panics when the session was built with
    /// [`ShardedExplainEngine::for_pdf`].
    pub fn dataset(&self) -> &UncertainDataset {
        match &self.data {
            Workload::Discrete(ds) => ds,
            Workload::Pdf { .. } => panic!("pdf engine has no discrete dataset"),
        }
    }

    /// The global pdf dataset and resolution, when this is a pdf
    /// session.
    pub fn pdf_dataset(&self) -> Option<(&PdfDataset, usize)> {
        match &self.data {
            Workload::Discrete(_) => None,
            Workload::Pdf { ds, resolution } => Some((ds, *resolution)),
        }
    }

    /// Total node accesses, update-path work and explanation-cache
    /// events across every shard and every explain call so far — the
    /// per-shard accumulators rolled up with `Sum`, plus the session
    /// cache's counters.
    pub fn accumulated_io(&self) -> QueryStats {
        let mut stats: QueryStats = self.shards.iter().map(|s| s.io.snapshot()).sum();
        stats.absorb(self.cache.stats());
        stats
    }

    /// Live (row, outcome) entry counts of the explanation cache.
    pub fn cache_len(&self) -> (usize, usize) {
        self.cache.len()
    }

    /// Per-shard node-access totals, in shard order.
    pub fn shard_io(&self) -> Vec<QueryStats> {
        self.shards.iter().map(|s| s.io.snapshot()).collect()
    }

    /// Resets every shard accumulator and the cache counters, returning
    /// the rolled-up totals.
    pub fn reset_io(&self) -> QueryStats {
        let mut stats: QueryStats = self.shards.iter().map(|s| s.io.take()).sum();
        stats.absorb(self.cache.take_stats());
        stats
    }

    /// The dataset version this session currently serves.
    pub fn epoch(&self) -> Epoch {
        match &self.data {
            Workload::Discrete(ds) => ds.epoch(),
            Workload::Pdf { ds, .. } => ds.epoch(),
        }
    }

    /// Per-shard rebuild counts (stale-tree drops + repartitions), in
    /// shard order.
    pub fn shard_rebuilds(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.rebuilds).collect()
    }

    /// Times the whole spatial layout was recut because a slab
    /// overflowed (always 0 for non-spatial policies).
    pub fn repartitions(&self) -> u64 {
        self.repartitions
    }

    /// Applies one update to a discrete sharded session: the global
    /// dataset is mutated (validation, matrix building and the oracles
    /// read it), then the delta is **routed to its owning shard** —
    /// round-robin inserts continue the construction rotation, hashed
    /// inserts follow the id hash, spatial inserts consult the slab
    /// routing table — and only that shard's trees are incrementally
    /// patched while the others keep serving. The spatial policy
    /// additionally self-maintains: a shard whose tree went stale under
    /// churn drops it for a local lazy rebuild, and a slab that
    /// overflowed to twice its fair share triggers a repartition of the
    /// layout (counted in [`ShardedExplainEngine::repartitions`]).
    ///
    /// Returns the new dataset [`Epoch`]. Post-update explains are
    /// identical to a fresh (sharded or unsharded) engine on the final
    /// dataset.
    pub fn apply(&mut self, update: Update<UncertainObject>) -> Result<Epoch, CrpError> {
        if !matches!(self.data, Workload::Discrete(_)) {
            return Err(CrpError::InvalidUpdate {
                reason: "discrete update applied to a pdf session".into(),
            });
        }
        let touched = update.id();
        let was_certain = match &self.data {
            Workload::Discrete(ds) => ds.is_certain(),
            Workload::Pdf { .. } => unreachable!("checked above"),
        };
        let mut regions: Vec<HyperRect> = Vec::with_capacity(2);
        match update {
            Update::Insert(obj) => {
                {
                    let Workload::Discrete(ds) = &mut self.data else {
                        unreachable!("checked above");
                    };
                    ds.push(obj.clone()).map_err(update_error)?;
                }
                let mbr = obj.mbr();
                let shard = self.route_insert(touched, &mbr.center());
                self.shards[shard].insert_discrete(obj);
                self.owner.insert(touched, shard);
                self.maintain_after_update(shard);
                regions.push(mbr);
            }
            Update::Delete(id) => {
                let old = {
                    let Workload::Discrete(ds) = &mut self.data else {
                        unreachable!("checked above");
                    };
                    ds.remove(id).ok_or(CrpError::UnknownObject(id))?
                };
                let shard = self
                    .owner
                    .remove(&id)
                    .expect("owner table tracks every object");
                self.shards[shard].remove_discrete(id);
                self.maintain_after_update(shard);
                regions.push(old.mbr());
            }
            Update::Replace(obj) => {
                let new_mbr = obj.mbr();
                let old = {
                    let Workload::Discrete(ds) = &mut self.data else {
                        unreachable!("checked above");
                    };
                    ds.replace(obj.clone()).map_err(update_error)?
                };
                let shard = *self
                    .owner
                    .get(&touched)
                    .expect("owner table tracks every object");
                self.shards[shard].replace_discrete(obj);
                self.maintain_after_update(shard);
                regions.push(old.mbr());
                regions.push(new_mbr);
            }
        }
        let still_certain = match &self.data {
            Workload::Discrete(ds) => ds.is_certain(),
            Workload::Pdf { .. } => unreachable!("checked above"),
        };
        let flush_certain = !(was_certain && still_certain);
        self.cache.invalidate(touched, &regions, flush_certain);
        self.refreeze_shards();
        Ok(self.epoch())
    }

    /// [`ShardedExplainEngine::apply`] for continuous-pdf sessions.
    pub fn apply_pdf(&mut self, update: Update<PdfObject>) -> Result<Epoch, CrpError> {
        if !matches!(self.data, Workload::Pdf { .. }) {
            return Err(CrpError::InvalidUpdate {
                reason: "pdf update applied to a discrete session".into(),
            });
        }
        let touched = update.id();
        let mut regions: Vec<HyperRect> = Vec::with_capacity(2);
        match update {
            Update::Insert(obj) => {
                {
                    let Workload::Pdf { ds, .. } = &mut self.data else {
                        unreachable!("checked above");
                    };
                    ds.push(obj.clone()).map_err(update_error)?;
                }
                let region = obj.region().clone();
                let shard = self.route_insert(touched, &region.center());
                self.shards[shard].insert_pdf(obj);
                self.owner.insert(touched, shard);
                self.maintain_after_update(shard);
                regions.push(region);
            }
            Update::Delete(id) => {
                let old = {
                    let Workload::Pdf { ds, .. } = &mut self.data else {
                        unreachable!("checked above");
                    };
                    ds.remove(id).ok_or(CrpError::UnknownObject(id))?
                };
                let shard = self
                    .owner
                    .remove(&id)
                    .expect("owner table tracks every object");
                self.shards[shard].remove_pdf(id);
                self.maintain_after_update(shard);
                regions.push(old.region().clone());
            }
            Update::Replace(obj) => {
                let new_region = obj.region().clone();
                let old = {
                    let Workload::Pdf { ds, .. } = &mut self.data else {
                        unreachable!("checked above");
                    };
                    ds.replace(obj.clone()).map_err(update_error)?
                };
                let shard = *self
                    .owner
                    .get(&touched)
                    .expect("owner table tracks every object");
                self.shards[shard].replace_pdf(obj);
                self.maintain_after_update(shard);
                regions.push(old.region().clone());
                regions.push(new_region);
            }
        }
        self.cache.invalidate(touched, &regions, false);
        self.refreeze_shards();
        Ok(self.epoch())
    }

    /// Eager post-update refreeze across the partition (satellite of
    /// the MVCC work): every shard whose packed image went cold —
    /// exactly the one the update routed to, unless maintenance dropped
    /// more — rebuilds it now, off the first reader's latency budget.
    fn refreeze_shards(&mut self) {
        if !self.config.use_packed_filter {
            return;
        }
        for shard in &mut self.shards {
            shard.refreeze_trees();
        }
    }

    /// Picks the shard a new object lands in. Deterministic for every
    /// policy, so replayed update streams reproduce the same layout.
    fn route_insert(&mut self, id: ObjectId, center: &Point) -> usize {
        let n = self.shards.len();
        match self.policy {
            ShardPolicy::RoundRobin => {
                let shard = self.rr_cursor % n;
                self.rr_cursor += 1;
                shard
            }
            ShardPolicy::HashById => (splitmix64(id.0 as u64) % n as u64) as usize,
            ShardPolicy::Spatial => match &self.spatial {
                Some(layout) => layout.route(center),
                // No layout yet (session built empty): everything lands
                // in shard 0 until the first repartition cuts one.
                None => 0,
            },
        }
    }

    /// Post-update self-maintenance of the spatial policy: stale-tree
    /// drop (local to the mutated shard) and slab-overflow repartition.
    fn maintain_after_update(&mut self, shard: usize) {
        if self.policy != ShardPolicy::Spatial {
            return;
        }
        let s = &mut self.shards[shard];
        if (s.object_tree.get().is_some() || s.point_tree.get().is_some())
            && s.mutations >= (s.len() / 2).max(64)
        {
            s.drop_trees();
        }
        let n = self.shards.len();
        if n < 2 {
            // One shard IS the dataset: there is no layout to recut.
            return;
        }
        let total = match &self.data {
            Workload::Discrete(ds) => ds.len(),
            Workload::Pdf { ds, .. } => ds.len(),
        };
        let ideal = total.div_ceil(n).max(1);
        // Twice the fair share — capped below ¾ of the dataset so the
        // trigger stays reachable at n = 2, where 2 × ideal ≈ total
        // could never fire and a hot slab would grow unchecked.
        let threshold = (2 * ideal).min(3 * total / 4).max(1) + 8;
        if self.shards[shard].len() > threshold {
            self.repartition();
        }
    }

    /// Recuts the whole layout from the current dataset: fresh slab
    /// assignment, per-shard datasets and routing table; every shard's
    /// trees are dropped for lazy rebuilds. I/O accumulators survive.
    fn repartition(&mut self) {
        let n = self.shards.len();
        match &self.data {
            Workload::Discrete(ds) => {
                let ids: Vec<ObjectId> = ds.iter().map(|o| o.id()).collect();
                let centers: Vec<Point> = ds.iter().map(|o| o.mbr().center()).collect();
                let assignment = self.policy.assign(&ids, &centers, n);
                let parts = partition_discrete(ds, &assignment, n);
                for (shard, part) in self.shards.iter_mut().zip(parts) {
                    shard.reset_data(ShardData::Discrete(part));
                }
                self.owner = ids.iter().copied().zip(assignment).collect();
                self.spatial = (self.policy == ShardPolicy::Spatial)
                    .then(|| SpatialLayout::build(&centers, n))
                    .flatten();
            }
            Workload::Pdf { ds, .. } => {
                let ids: Vec<ObjectId> = ds.iter().map(|o| o.id()).collect();
                let centers: Vec<Point> = ds.iter().map(|o| o.region().center()).collect();
                let assignment = self.policy.assign(&ids, &centers, n);
                let parts = partition_pdf(ds, &assignment, n);
                for (shard, part) in self.shards.iter_mut().zip(parts) {
                    shard.reset_data(ShardData::Pdf(part));
                }
                self.owner = ids.iter().copied().zip(assignment).collect();
                self.spatial = (self.policy == ShardPolicy::Spatial)
                    .then(|| SpatialLayout::build(&centers, n))
                    .flatten();
            }
        }
        self.repartitions += 1;
    }

    /// Explains one non-answer with the configured strategy and `α` —
    /// a thin shim over the planner, exactly like
    /// [`ExplainEngine::explain`](super::ExplainEngine::explain).
    pub fn explain(&self, q: &Point, an: ObjectId) -> Result<CrpOutcome, CrpError> {
        plan::one(self, ExplainRequest::explain(q, an))
    }

    /// Explains one non-answer with an explicit strategy and `α`.
    #[deprecated(
        since = "0.2.0",
        note = "build an `ExplainRequest` (`.with_strategy(..).with_alpha(..)`) and run it \
                through `ExplainSession::run`, which also plans whole workloads"
    )]
    pub fn explain_as(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
    ) -> Result<CrpOutcome, CrpError> {
        plan::one(
            self,
            ExplainRequest::explain(q, an)
                .with_strategy(strategy)
                .with_alpha(alpha),
        )
    }

    /// Explain with a per-call [`CpConfig`] override — equivalent to
    /// an [`ExplainRequest`] with `.with_cp(*cp)`.
    pub fn explain_configured(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
        cp: &CpConfig,
    ) -> Result<CrpOutcome, CrpError> {
        plan::one(
            self,
            ExplainRequest::explain(q, an)
                .with_strategy(strategy)
                .with_alpha(alpha)
                .with_cp(*cp),
        )
    }

    /// The pre-planner per-call dispatch, kept as a benchmarking seam
    /// (see
    /// [`ExplainEngine::explain_direct`](super::ExplainEngine::explain_direct)).
    #[doc(hidden)]
    pub fn explain_direct(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
        cp: &CpConfig,
    ) -> Result<CrpOutcome, CrpError> {
        self.dispatch(strategy, q, alpha, an, cp, self.config.parallel)
    }

    /// Explains a batch of non-answers, data-parallel over the batch
    /// when the session's `parallel` flag is set (the per-call shard
    /// fan-out then runs shard-serial to avoid nested thread pools).
    /// Result order matches `ans`; each element is bit-identical to
    /// [`ShardedExplainEngine::explain`]. A thin shim over
    /// [`ExplainRequest::batch`].
    pub fn explain_batch(&self, q: &Point, ans: &[ObjectId]) -> Vec<Result<CrpOutcome, CrpError>> {
        plan::execute(self, &[ExplainRequest::batch(q, ans)]).results
    }

    /// [`ShardedExplainEngine::explain_batch`] with an explicit
    /// strategy and `α`.
    #[deprecated(
        since = "0.2.0",
        note = "build an `ExplainRequest::batch(..).with_strategy(..).with_alpha(..)` and run \
                it through `ExplainSession::run`, which also plans whole workloads"
    )]
    pub fn explain_batch_as(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        ans: &[ObjectId],
    ) -> Vec<Result<CrpOutcome, CrpError>> {
        plan::execute(
            self,
            &[ExplainRequest::batch(q, ans)
                .with_strategy(strategy)
                .with_alpha(alpha)],
        )
        .results
    }

    /// The serial batch path (regardless of the `parallel` flag) — the
    /// reference the parallel path is tested against.
    #[deprecated(
        since = "0.2.0",
        note = "build an `ExplainRequest::batch(..).serial()` and run it through \
                `ExplainSession::run`"
    )]
    pub fn explain_batch_serial_as(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        ans: &[ObjectId],
    ) -> Vec<Result<CrpOutcome, CrpError>> {
        plan::execute(
            self,
            &[ExplainRequest::batch(q, ans)
                .with_strategy(strategy)
                .with_alpha(alpha)
                .serial()],
        )
        .results
    }

    /// The merged stage-1 output for one non-answer: every candidate
    /// cause id (ascending), exactly the set the refinement stage would
    /// consume — and exactly what
    /// [`ExplainEngine::candidate_ids`](super::ExplainEngine::candidate_ids)
    /// returns for the same dataset. For pdf sessions these are the
    /// region hits of the per-quadrant windows.
    pub fn candidate_ids(&self, q: &Point, an: ObjectId) -> Result<Vec<ObjectId>, CrpError> {
        // The same rayon fan-out `explain` uses, so the wall clock of
        // this call reflects the partition parallelism the shard-sweep
        // bench measures (serial when the session disables parallelism).
        let shard_indices: Vec<usize> = (0..self.shards.len()).collect();
        let parts: Vec<Result<Vec<ObjectId>, CrpError>> =
            if self.config.parallel && self.shards.len() > 1 {
                shard_indices
                    .par_iter()
                    .map(|&idx| self.shard_candidates(idx, q, an))
                    .collect()
            } else {
                shard_indices
                    .iter()
                    .map(|&idx| self.shard_candidates(idx, q, an))
                    .collect()
            };
        let parts: Vec<Vec<ObjectId>> = parts.into_iter().collect::<Result<_, _>>()?;
        Ok(super::merge::merge_candidate_ids(parts))
    }

    /// The stage-1 output of one shard for one non-answer (ascending
    /// ids) — the request a remote partition server would answer in a
    /// multi-node deployment; merge the per-shard results with
    /// [`merge_candidate_ids`](super::merge::merge_candidate_ids).
    ///
    /// # Panics
    ///
    /// Panics when `shard >= self.shard_count()`.
    pub fn shard_candidates(
        &self,
        shard: usize,
        q: &Point,
        an: ObjectId,
    ) -> Result<Vec<ObjectId>, CrpError> {
        match &self.data {
            Workload::Discrete(ds) => {
                if ds.is_empty() {
                    return Err(CrpError::EmptyDataset);
                }
                let an_pos = ds.index_of(an).ok_or(CrpError::UnknownObject(an))?;
                let an_obj = ds.object_at(an_pos);
                let windows = sample_windows(an_obj, q);
                Ok(self.shards[shard]
                    .sample_candidates(an_obj, q, &windows, self.config.use_packed_filter)
                    .0)
            }
            Workload::Pdf { ds, .. } => {
                if ds.is_empty() {
                    return Err(CrpError::EmptyDataset);
                }
                let an_obj = ds.get(an).ok_or(CrpError::UnknownObject(an))?;
                let windows = crate::pdf::pdf_windows(q, an_obj.region());
                Ok(self.shards[shard]
                    .region_hits(&windows, an, self.config.use_packed_filter)
                    .0)
            }
        }
    }

    /// Builds every shard index the strategy needs up front (in
    /// parallel when the session allows), so tree construction happens
    /// once instead of inside the first query that wins each
    /// `OnceLock` race.
    fn prepare(&self, strategy: ExplainStrategy) {
        let strategy = self.resolve(strategy);
        let build: Option<fn(&Shard)> = match (strategy, &self.data) {
            (ExplainStrategy::Cp | ExplainStrategy::NaiveI { .. }, _) => Some(|s: &Shard| {
                if !s.is_empty() {
                    s.object_tree();
                }
            }),
            (
                ExplainStrategy::Cr
                | ExplainStrategy::CrKskyband { .. }
                | ExplainStrategy::NaiveII { .. },
                Workload::Discrete(ds),
            ) if !ds.is_empty() && ds.is_certain() => Some(|s: &Shard| {
                if !s.is_empty() {
                    s.point_tree();
                }
            }),
            _ => None,
        };
        let Some(build) = build else { return };
        if self.config.parallel && self.shards.len() > 1 {
            let _: Vec<()> = self.shards.par_iter().map(build).collect();
        } else {
            self.shards.iter().for_each(build);
        }
    }

    /// Resolves [`ExplainStrategy::Auto`] against the workload —
    /// identical to the unsharded engine's rule.
    fn resolve(&self, strategy: ExplainStrategy) -> ExplainStrategy {
        match (strategy, &self.data) {
            (ExplainStrategy::Auto, Workload::Discrete(ds))
                if ds.is_certain() && !ds.is_empty() =>
            {
                ExplainStrategy::Cr
            }
            (ExplainStrategy::Auto, _) => ExplainStrategy::Cp,
            (s, _) => s,
        }
    }

    fn dispatch(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
        cp: &CpConfig,
        parallel_shards: bool,
    ) -> Result<CrpOutcome, CrpError> {
        let strategy = self.resolve(strategy);
        let fan = ShardFanOut {
            shards: &self.shards,
            parallel: parallel_shards && self.shards.len() > 1,
            packed: self.config.use_packed_filter,
        };
        match &self.data {
            Workload::Discrete(ds) => match strategy {
                ExplainStrategy::Cp => {
                    // Mirror the unsharded engine's guard order: an
                    // empty dataset errors before α validation.
                    if ds.is_empty() {
                        return Err(CrpError::EmptyDataset);
                    }
                    // The same two-layer cache protocol as the
                    // unsharded session (one shared seam, see
                    // `cache::serve_cp_discrete`); traversal stays
                    // accounted inside the shards, so `io` is `None`.
                    crate::matrix::with_scratch(|scratch| {
                        cache::serve_cp_discrete(
                            &self.cache,
                            None,
                            ds,
                            q,
                            an,
                            alpha,
                            cp,
                            &mut ServeTrace::default(),
                            scratch,
                            |an_pos, stats| {
                                Ok(pipeline::stage1_probabilistic(ds, q, an_pos, &fan, stats))
                            },
                        )
                    })
                }
                ExplainStrategy::CpUnindexed => {
                    pipeline::run_probabilistic(ds, q, an, alpha, cp, &ScanFilter, None)
                }
                ExplainStrategy::NaiveI { max_subsets } => {
                    if ds.is_empty() {
                        return Err(CrpError::EmptyDataset);
                    }
                    let config = CpConfig {
                        max_subsets,
                        ..CpConfig::naive()
                    };
                    pipeline::run_probabilistic(ds, q, an, alpha, &config, &fan, None)
                }
                ExplainStrategy::Cr => self.cached_certain(
                    ds,
                    strategy,
                    q,
                    alpha,
                    an,
                    cp,
                    &Lemma7ClosedForm { k: 0 },
                    &fan,
                ),
                ExplainStrategy::CrKskyband { k } => self.cached_certain(
                    ds,
                    strategy,
                    q,
                    alpha,
                    an,
                    cp,
                    &Lemma7ClosedForm { k },
                    &fan,
                ),
                ExplainStrategy::NaiveII { max_subsets } => self.cached_certain(
                    ds,
                    strategy,
                    q,
                    alpha,
                    an,
                    cp,
                    &SubsetVerify { max_subsets },
                    &fan,
                ),
                ExplainStrategy::OracleCp => {
                    oracle_cp(ds, q, an, alpha).map(|causes| oracle_outcome(ds, causes))
                }
                ExplainStrategy::OracleCr => {
                    oracle_cr(ds, q, an).map(|causes| oracle_outcome(ds, causes))
                }
                ExplainStrategy::Auto => unreachable!("resolved above"),
            },
            Workload::Pdf { ds, resolution } => match strategy {
                ExplainStrategy::Cp => {
                    if ds.is_empty() {
                        return Err(CrpError::EmptyDataset);
                    }
                    crate::matrix::with_scratch(|scratch| {
                        cache::serve_cp_pdf(
                            &self.cache,
                            None,
                            ds,
                            q,
                            an,
                            alpha,
                            cp,
                            &mut ServeTrace::default(),
                            scratch,
                            |_windows, stats| {
                                Ok(pipeline::stage1_pdf(ds, &fan, q, an, *resolution, stats))
                            },
                        )
                    })
                }
                ExplainStrategy::NaiveI { max_subsets } => {
                    if ds.is_empty() {
                        return Err(CrpError::EmptyDataset);
                    }
                    let config = CpConfig {
                        max_subsets,
                        ..CpConfig::naive()
                    };
                    pipeline::run_pdf(ds, &fan, q, an, alpha, *resolution, &config, None)
                }
                other => Err(CrpError::UnsupportedStrategy {
                    strategy: other.name(),
                    workload: "pdf",
                }),
            },
        }
    }

    /// The certain-strategy preconditions, in the unsharded engine's
    /// guard order (so error cases are bit-identical).
    fn guard_certain(&self, ds: &UncertainDataset) -> Result<(), CrpError> {
        if ds.is_empty() {
            return Err(CrpError::EmptyDataset);
        }
        if !ds.is_certain() {
            return Err(CrpError::NotCertainData);
        }
        Ok(())
    }

    /// The certain-data strategies behind the outcome cache — the
    /// sharded mirror of the unsharded session's protocol: entries are
    /// flagged `certain` (flushed whenever an update may change the
    /// dataset's global certainty), keyed on the dominance window of
    /// `(an, q)`, and failing preconditions stay uncached.
    #[allow(clippy::too_many_arguments)]
    fn cached_certain(
        &self,
        ds: &UncertainDataset,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
        cp: &CpConfig,
        search: &dyn super::certain::CertainSearch,
        fan: &ShardFanOut<'_>,
    ) -> Result<CrpOutcome, CrpError> {
        self.guard_certain(ds)?;
        if ds.index_of(an).is_none() {
            // Unknown non-answer: let the pipeline produce the error,
            // uncached (cache entries assume a resident object).
            return run_certain(ds, fan, q, an, search, None);
        }
        if let Some(hit) = self.cache.lookup_outcome(an, q, alpha, strategy, cp) {
            return hit;
        }
        let an_point = ds.get(an).expect("checked above").certain_point();
        let region = dominance_rect(an_point, q);
        let result = run_certain(ds, fan, q, an, search, None);
        self.cache
            .store_outcome(an, q, alpha, strategy, cp, region, true, &result);
        result
    }
}

/// The engine-side seams of the plan executor: the sharded session
/// serves stage 1 by fanning each request over its shards (rayon-
/// parallel when the plan runs serially over tasks, shard-serial
/// inside a task-parallel plan — the legacy batch rule) and merging.
/// Traversal is accounted inside the shards, so `host_io` is `None`.
impl PlanHost for ShardedExplainEngine {
    fn host_config(&self) -> &EngineConfig {
        &self.config
    }

    fn host_workload(&self) -> &Workload {
        &self.data
    }

    fn host_cache(&self) -> &ExplanationCache {
        &self.cache
    }

    fn host_io(&self) -> Option<&AtomicQueryStats> {
        None
    }

    fn resolve_strategy(&self, strategy: ExplainStrategy) -> ExplainStrategy {
        self.resolve(strategy)
    }

    fn prepare_strategy(&self, strategy: ExplainStrategy) {
        self.prepare(strategy);
    }

    fn cp_pre_guard(&self) -> Result<(), CrpError> {
        // Mirror the legacy guard order: the sharded engine rejects an
        // empty dataset before consulting the cache.
        let empty = match &self.data {
            Workload::Discrete(ds) => ds.is_empty(),
            Workload::Pdf { ds, .. } => ds.is_empty(),
        };
        if empty {
            return Err(CrpError::EmptyDataset);
        }
        Ok(())
    }

    fn per_call(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
        cp: &CpConfig,
        fan_parallel: bool,
    ) -> Result<CrpOutcome, CrpError> {
        self.dispatch(strategy, q, alpha, an, cp, fan_parallel)
    }

    fn fresh_stage1_discrete(
        &self,
        q: &Point,
        an_pos: usize,
        fan_parallel: bool,
        stats: &mut RunStats,
    ) -> Result<pipeline::StageOne, CrpError> {
        let Workload::Discrete(ds) = &self.data else {
            unreachable!("discrete stage 1 runs on discrete workloads");
        };
        let fan = ShardFanOut {
            shards: &self.shards,
            parallel: fan_parallel && self.shards.len() > 1,
            packed: self.config.use_packed_filter,
        };
        Ok(pipeline::stage1_probabilistic(ds, q, an_pos, &fan, stats))
    }

    fn fresh_stage1_pdf(
        &self,
        q: &Point,
        an: ObjectId,
        resolution: usize,
        fan_parallel: bool,
        stats: &mut RunStats,
    ) -> Result<pipeline::StageOne, CrpError> {
        let Workload::Pdf { ds, .. } = &self.data else {
            unreachable!("pdf stage 1 runs on pdf workloads");
        };
        let fan = ShardFanOut {
            shards: &self.shards,
            parallel: fan_parallel && self.shards.len() > 1,
            packed: self.config.use_packed_filter,
        };
        Ok(pipeline::stage1_pdf(ds, &fan, q, an, resolution, stats))
    }

    fn coverage_ids(
        &self,
        region: &HyperRect,
        exclude: ObjectId,
        fan_parallel: bool,
        stats: &mut RunStats,
    ) -> Result<Vec<ObjectId>, CrpError> {
        let fan = ShardFanOut {
            shards: &self.shards,
            parallel: fan_parallel && self.shards.len() > 1,
            packed: self.config.use_packed_filter,
        };
        let parts = fan.fan(|shard| shard.coverage_hits(region, exclude, fan.packed));
        Ok(super::merge::merge_candidate_ids(ShardFanOut::fold_parts(
            parts, stats,
        )))
    }
}

/// The Lemma 2 sample windows of a non-answer — stage 1's `RecList`,
/// built once per call and shared by every shard.
fn sample_windows(an: &UncertainObject, q: &Point) -> Vec<HyperRect> {
    an.samples()
        .iter()
        .map(|s| dominance_rect(s.point(), q))
        .collect()
}

/// The shard fan-out: one value implementing every partition-generic
/// stage-1 seam, so the shared pipelines drive a sharded session
/// through exactly the code path of the unsharded one.
struct ShardFanOut<'e> {
    shards: &'e [Shard],
    parallel: bool,
    /// Route each shard's stage-1 traversal through its packed frozen
    /// image ([`EngineConfig::use_packed_filter`]).
    packed: bool,
}

impl ShardFanOut<'_> {
    /// Runs `f` over every shard — rayon-parallel when enabled —
    /// returning per-shard results in shard order (deterministic either
    /// way, which keeps the merged stats fold reproducible).
    fn fan<R: Send>(&self, f: impl Fn(&Shard) -> R + Sync) -> Vec<R> {
        if self.parallel {
            self.shards.par_iter().map(|s| f(s)).collect()
        } else {
            self.shards.iter().map(f).collect()
        }
    }

    fn fold_parts(
        parts: Vec<(Vec<ObjectId>, QueryStats)>,
        stats: &mut RunStats,
    ) -> Vec<Vec<ObjectId>> {
        let mut ids = Vec::with_capacity(parts.len());
        for (part, qs) in parts {
            stats.query.absorb(qs);
            ids.push(part);
        }
        ids
    }
}

impl FilterStage for ShardFanOut<'_> {
    fn candidates(
        &self,
        ds: &UncertainDataset,
        q: &Point,
        an_pos: usize,
        stats: &mut RunStats,
    ) -> Vec<usize> {
        let an = ds.object_at(an_pos);
        let windows = sample_windows(an, q);
        let parts = self.fan(|shard| shard.sample_candidates(an, q, &windows, self.packed));
        let ids = super::merge::merge_candidate_ids(Self::fold_parts(parts, stats));
        super::merge::global_positions(ds, &ids)
    }
}

impl DominatorSource for ShardFanOut<'_> {
    fn dominators(
        &self,
        q: &Point,
        an: &Point,
        an_id: ObjectId,
        stats: &mut RunStats,
    ) -> Vec<ObjectId> {
        let parts = self.fan(|shard| shard.point_dominators(q, an, an_id));
        super::merge::merge_candidate_ids(Self::fold_parts(parts, stats))
    }
}

impl RegionHitSource for ShardFanOut<'_> {
    fn region_hits(
        &self,
        windows: &[HyperRect],
        exclude: ObjectId,
        stats: &mut RunStats,
    ) -> Vec<ObjectId> {
        let parts = self.fan(|shard| shard.region_hits(windows, exclude, self.packed));
        super::merge::merge_candidate_ids(Self::fold_parts(parts, stats))
    }
}

#[cfg(test)]
// The deprecated `explain_*_as` entry points are exercised on purpose:
// these tests pin that the thin shims stay bit-identical to the
// planner path they forward into.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::engine::ExplainEngine;

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    fn uncertain_fixture() -> UncertainDataset {
        UncertainDataset::from_objects(vec![
            UncertainObject::certain(ObjectId(0), pt(10.0, 10.0)),
            UncertainObject::certain(ObjectId(1), pt(7.0, 7.0)),
            UncertainObject::with_equal_probs(ObjectId(2), vec![pt(8.0, 9.0), pt(30.0, 30.0)])
                .unwrap(),
            UncertainObject::certain(ObjectId(3), pt(40.0, 40.0)),
            UncertainObject::certain(ObjectId(4), pt(6.0, 8.0)),
        ])
        .unwrap()
    }

    #[test]
    fn policies_partition_every_object_exactly_once() {
        let ds = uncertain_fixture();
        for policy in ShardPolicy::ALL {
            for shards in [1usize, 2, 3, 7] {
                let engine =
                    ShardedExplainEngine::new(ds.clone(), EngineConfig::default(), shards, policy)
                        .expect("valid engine config");
                assert_eq!(engine.shard_count(), shards);
                let sizes = engine.shard_sizes();
                assert_eq!(sizes.iter().sum::<usize>(), ds.len(), "{policy} × {shards}");
                // Round-robin and spatial are balanced to within one.
                if policy != ShardPolicy::HashById {
                    let (lo, hi) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
                    assert!(hi - lo <= 1, "{policy} × {shards}: sizes {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn shard_assignment_is_deterministic() {
        let ds = uncertain_fixture();
        for policy in ShardPolicy::ALL {
            let a = ShardedExplainEngine::new(ds.clone(), EngineConfig::default(), 3, policy)
                .expect("valid engine config");
            let b = ShardedExplainEngine::new(ds.clone(), EngineConfig::default(), 3, policy)
                .expect("valid engine config");
            assert_eq!(a.shard_sizes(), b.shard_sizes());
            for (sa, sb) in a.shards.iter().zip(&b.shards) {
                let (ids_a, ids_b): (Vec<ObjectId>, Vec<ObjectId>) = match (&sa.data, &sb.data) {
                    (ShardData::Discrete(da), ShardData::Discrete(db)) => (
                        da.iter().map(|o| o.id()).collect(),
                        db.iter().map(|o| o.id()).collect(),
                    ),
                    _ => unreachable!(),
                };
                assert_eq!(ids_a, ids_b, "{policy}");
            }
        }
    }

    #[test]
    fn spatial_slabs_are_contiguous_along_split_dim() {
        // Centers on a line: slabs must be contiguous runs of x.
        let centers: Vec<Point> = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
            .iter()
            .map(|&x| pt(x, 0.0))
            .collect();
        let assignment = spatial_slabs(&centers, 3);
        // Sorted by x: 1,2 | 3,5 | 7,9 -> positions (1,5)(3,0)(4,2).
        assert_eq!(assignment, vec![1, 0, 2, 1, 2, 0]);
    }

    #[test]
    fn policy_parsing_round_trips() {
        for policy in ShardPolicy::ALL {
            assert_eq!(policy.name().parse::<ShardPolicy>().unwrap(), policy);
        }
        assert_eq!(
            "rr".parse::<ShardPolicy>().unwrap(),
            ShardPolicy::RoundRobin
        );
        assert_eq!("STR".parse::<ShardPolicy>().unwrap(), ShardPolicy::Spatial);
        assert!("gibberish".parse::<ShardPolicy>().is_err());
    }

    #[test]
    fn sharded_cp_is_bit_identical_to_unsharded() {
        let ds = uncertain_fixture();
        let single = ExplainEngine::new(ds.clone(), EngineConfig::with_alpha(0.75))
            .expect("valid engine config");
        let q = pt(5.0, 5.0);
        for policy in ShardPolicy::ALL {
            for shards in [1usize, 2, 4, 7] {
                let sharded = ShardedExplainEngine::new(
                    ds.clone(),
                    EngineConfig::with_alpha(0.75),
                    shards,
                    policy,
                )
                .expect("valid engine config");
                for id in 0..5u32 {
                    let a = single.explain_as(ExplainStrategy::Cp, &q, 0.75, ObjectId(id));
                    let b = sharded.explain_as(ExplainStrategy::Cp, &q, 0.75, ObjectId(id));
                    match (a, b) {
                        (Ok(x), Ok(y)) => {
                            assert_eq!(x.causes, y.causes, "{policy} × {shards}, an {id}");
                            // Search-stage counters are partition-independent.
                            assert_eq!(x.stats.candidates, y.stats.candidates);
                            assert_eq!(x.stats.subsets_examined, y.stats.subsets_examined);
                            assert_eq!(x.stats.prsq_evaluations, y.stats.prsq_evaluations);
                        }
                        (Err(x), Err(y)) => assert_eq!(x, y, "{policy} × {shards}, an {id}"),
                        (x, y) => panic!("divergence {policy} × {shards}, an {id}: {x:?} vs {y:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_candidate_ids_merge_to_unsharded() {
        let ds = uncertain_fixture();
        let single = ExplainEngine::new(ds.clone(), EngineConfig::with_alpha(0.75))
            .expect("valid engine config");
        let q = pt(5.0, 5.0);
        let expected = single.candidate_ids(&q, ObjectId(0)).unwrap();
        assert_eq!(expected, vec![ObjectId(1), ObjectId(2), ObjectId(4)]);
        for policy in ShardPolicy::ALL {
            let sharded =
                ShardedExplainEngine::new(ds.clone(), EngineConfig::with_alpha(0.75), 3, policy)
                    .expect("valid engine config");
            assert_eq!(
                sharded.candidate_ids(&q, ObjectId(0)).unwrap(),
                expected,
                "{policy}"
            );
            // The per-shard API merges to the same list.
            let parts: Vec<Vec<ObjectId>> = (0..sharded.shard_count())
                .map(|i| sharded.shard_candidates(i, &q, ObjectId(0)).unwrap())
                .collect();
            assert_eq!(super::super::merge::merge_candidate_ids(parts), expected);
        }
    }

    #[test]
    fn sharded_io_rolls_up_across_shards() {
        let ds = uncertain_fixture();
        let sharded = ShardedExplainEngine::new(
            ds,
            EngineConfig::with_alpha(0.75),
            2,
            ShardPolicy::RoundRobin,
        )
        .expect("valid engine config");
        let q = pt(5.0, 5.0);
        let out = sharded.explain(&q, ObjectId(0)).unwrap();
        assert!(out.stats.query.node_accesses > 0);
        // Engine-level totals = per-shard accumulators rolled up, plus
        // the session cache's counters (one outcome miss so far). The
        // evaluator taps are per-call refinement counters, not shard
        // I/O.
        let io_only = QueryStats {
            eval_fast: 0,
            eval_slow: 0,
            ..out.stats.query
        };
        let with_cache = QueryStats {
            cache_misses: 1,
            ..io_only
        };
        assert_eq!(sharded.accumulated_io(), with_cache);
        assert_eq!(sharded.shard_io().into_iter().sum::<QueryStats>(), io_only);
        let taken = sharded.reset_io();
        assert_eq!(taken, with_cache);
        assert_eq!(sharded.accumulated_io(), QueryStats::default());
    }

    #[test]
    fn sharded_cache_serves_alpha_sweeps_and_repeats() {
        let sharded = ShardedExplainEngine::new(
            uncertain_fixture(),
            EngineConfig::with_alpha(0.75),
            2,
            ShardPolicy::Spatial,
        )
        .expect("valid engine config");
        let q = pt(5.0, 5.0);
        let first = sharded
            .explain_as(ExplainStrategy::Cp, &q, 0.75, ObjectId(0))
            .unwrap();
        let paid = sharded.accumulated_io().node_accesses;
        assert!(paid > 0);
        // Different α over the same non-answer: stage 1 is served from
        // the row cache — no shard pays another traversal — and the
        // outcome stats replay the original cost.
        let swept = sharded
            .explain_as(ExplainStrategy::Cp, &q, 0.25, ObjectId(0))
            .unwrap();
        assert_eq!(sharded.accumulated_io().node_accesses, paid);
        assert_eq!(
            swept.stats.query.node_accesses,
            first.stats.query.node_accesses
        );
        // Identical request: outcome cache, bit-identical result.
        let repeat = sharded
            .explain_as(ExplainStrategy::Cp, &q, 0.75, ObjectId(0))
            .unwrap();
        assert_eq!(repeat, first);
        let io = sharded.accumulated_io();
        assert!(io.cache_hits >= 2, "row hit + outcome hit, got {io:?}");
        let (rows, outcomes) = sharded.cache_len();
        assert_eq!(rows, 1);
        assert_eq!(outcomes, 2);

        // Certain strategies share the outcome layer too.
        let certain = ShardedExplainEngine::new(
            UncertainDataset::from_points(vec![pt(10.0, 10.0), pt(7.0, 7.0), pt(6.0, 8.0)])
                .unwrap(),
            EngineConfig::default(),
            2,
            ShardPolicy::RoundRobin,
        )
        .expect("valid engine config");
        let a = certain
            .explain_as(ExplainStrategy::Cr, &q, 0.5, ObjectId(0))
            .unwrap();
        let b = certain
            .explain_as(ExplainStrategy::Cr, &q, 0.5, ObjectId(0))
            .unwrap();
        assert_eq!(a, b);
        assert!(certain.accumulated_io().cache_hits >= 1);
    }

    #[test]
    fn sharded_cache_invalidated_by_updates() {
        let mut sharded = ShardedExplainEngine::new(
            uncertain_fixture(),
            EngineConfig::with_alpha(0.75),
            2,
            ShardPolicy::RoundRobin,
        )
        .expect("valid engine config");
        let q = pt(5.0, 5.0);
        let before = sharded.explain(&q, ObjectId(0)).unwrap();
        assert!(before.cause(ObjectId(9)).is_none());
        // Insert a dominator inside the cached candidate region: the
        // entry must be evicted and the new cause visible immediately.
        sharded
            .apply(Update::Insert(UncertainObject::certain(
                ObjectId(9),
                pt(6.5, 6.5),
            )))
            .unwrap();
        let after = sharded.explain(&q, ObjectId(0)).unwrap();
        assert!(
            after.cause(ObjectId(9)).is_some(),
            "stale cached outcome served after an update"
        );
        assert!(sharded.accumulated_io().cache_evictions > 0);
    }

    #[test]
    fn sharded_batch_parallel_matches_serial() {
        let ds = uncertain_fixture();
        let sharded =
            ShardedExplainEngine::new(ds, EngineConfig::with_alpha(0.75), 3, ShardPolicy::Spatial)
                .expect("valid engine config");
        let q = pt(5.0, 5.0);
        let ids: Vec<ObjectId> = (0..5).map(ObjectId).collect();
        let par = sharded.explain_batch(&q, &ids);
        let ser = sharded.explain_batch_serial_as(ExplainStrategy::Auto, &q, 0.75, &ids);
        assert_eq!(par, ser);
    }

    #[test]
    fn sharded_certain_strategies_match_unsharded() {
        let ds = UncertainDataset::from_points(vec![
            pt(10.0, 10.0),
            pt(7.0, 7.0),
            pt(6.0, 8.0),
            pt(8.0, 6.0),
            pt(2.0, 2.0),
        ])
        .unwrap();
        let single =
            ExplainEngine::new(ds.clone(), EngineConfig::default()).expect("valid engine config");
        let q = pt(5.0, 5.0);
        for policy in ShardPolicy::ALL {
            let sharded = ShardedExplainEngine::new(ds.clone(), EngineConfig::default(), 4, policy)
                .expect("valid engine config");
            for strategy in [
                ExplainStrategy::Cr,
                ExplainStrategy::CrKskyband { k: 1 },
                ExplainStrategy::NaiveII { max_subsets: None },
                ExplainStrategy::OracleCr,
            ] {
                for id in 0..5u32 {
                    let a = single.explain_as(strategy, &q, 0.5, ObjectId(id));
                    let b = sharded.explain_as(strategy, &q, 0.5, ObjectId(id));
                    match (a, b) {
                        (Ok(x), Ok(y)) => assert_eq!(x.causes, y.causes, "{policy}, an {id}"),
                        (Err(x), Err(y)) => assert_eq!(x, y),
                        (x, y) => panic!("divergence {policy}, an {id}: {x:?} vs {y:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_pdf_matches_unsharded() {
        use crp_uncertain::PdfObject;
        let ds = PdfDataset::from_objects(vec![
            PdfObject::uniform(
                ObjectId(0),
                crp_geom::HyperRect::new(pt(9.5, 9.5), pt(10.5, 10.5)),
            ),
            PdfObject::uniform(
                ObjectId(1),
                crp_geom::HyperRect::new(pt(6.9, 6.9), pt(7.1, 7.1)),
            ),
            PdfObject::uniform(
                ObjectId(2),
                crp_geom::HyperRect::new(pt(7.0, 2.0), pt(8.0, 6.0)),
            ),
            PdfObject::uniform(
                ObjectId(3),
                crp_geom::HyperRect::new(pt(40.0, 40.0), pt(41.0, 41.0)),
            ),
        ])
        .unwrap();
        let single = ExplainEngine::for_pdf(ds.clone(), 3, EngineConfig::with_alpha(0.5))
            .expect("valid engine config");
        let q = pt(5.0, 5.0);
        for policy in ShardPolicy::ALL {
            for shards in [2usize, 3] {
                let sharded = ShardedExplainEngine::for_pdf(
                    ds.clone(),
                    3,
                    EngineConfig::with_alpha(0.5),
                    shards,
                    policy,
                )
                .expect("valid engine config");
                for id in 0..4u32 {
                    let a = single.explain(&q, ObjectId(id));
                    let b = sharded.explain(&q, ObjectId(id));
                    match (a, b) {
                        (Ok(x), Ok(y)) => {
                            assert_eq!(x.causes, y.causes, "{policy} × {shards}, an {id}")
                        }
                        (Err(x), Err(y)) => assert_eq!(x, y),
                        (x, y) => panic!("divergence: {x:?} vs {y:?}"),
                    }
                }
                // Certain-data strategies stay unsupported, like the
                // unsharded pdf session.
                assert!(matches!(
                    sharded.explain_as(ExplainStrategy::Cr, &q, 0.5, ObjectId(0)),
                    Err(CrpError::UnsupportedStrategy { .. })
                ));
            }
        }
    }

    #[test]
    fn updates_route_to_owning_shards() {
        let ds = uncertain_fixture();
        let q = pt(5.0, 5.0);
        for policy in ShardPolicy::ALL {
            let mut sharded =
                ShardedExplainEngine::new(ds.clone(), EngineConfig::with_alpha(0.75), 3, policy)
                    .expect("valid config");
            // Warm the trees so patches hit built indexes.
            let _ = sharded.explain(&q, ObjectId(0));
            let before_sizes: usize = sharded.shard_sizes().iter().sum();
            let epoch = sharded
                .apply(Update::Insert(UncertainObject::certain(
                    ObjectId(9),
                    pt(6.0, 6.0),
                )))
                .unwrap();
            assert_eq!(
                sharded.shard_sizes().iter().sum::<usize>(),
                before_sizes + 1
            );
            assert!(epoch > Epoch(0));
            // The new object is explainable and owned by exactly one shard.
            let out = sharded.explain(&q, ObjectId(0)).unwrap();
            assert!(out.cause(ObjectId(9)).is_some(), "{policy}");
            // Replace and delete route through the owner table.
            sharded
                .apply(Update::Replace(UncertainObject::certain(
                    ObjectId(9),
                    pt(80.0, 80.0),
                )))
                .unwrap();
            assert!(sharded
                .explain(&q, ObjectId(0))
                .unwrap()
                .cause(ObjectId(9))
                .is_none());
            sharded.apply(Update::Delete(ObjectId(9))).unwrap();
            assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), before_sizes);
            // Update counters merged across shards.
            let io = sharded.accumulated_io();
            assert_eq!(io.inserts, 2, "{policy}: insert + replace");
            assert_eq!(io.removes, 2, "{policy}: delete + replace");
            // The owning shard's packed image is re-frozen eagerly
            // after each routed mutation. The insert may land in a
            // shard whose tree was never built (nothing to refreeze),
            // but the replace and delete route to a shard the explains
            // above forced to build — at least those two count.
            assert!(
                io.refreezes >= 2,
                "{policy}: expected eager refreezes, got {}",
                io.refreezes
            );
            // And the session still matches a fresh unsharded engine.
            let fresh = crate::engine::ExplainEngine::new(
                UncertainDataset::from_objects(sharded.dataset().iter().cloned()).unwrap(),
                EngineConfig::with_alpha(0.75),
            )
            .expect("valid config");
            for id in [0u32, 1, 2, 3, 4] {
                let a = sharded.explain_as(ExplainStrategy::Cp, &q, 0.75, ObjectId(id));
                let b = fresh.explain_as(ExplainStrategy::Cp, &q, 0.75, ObjectId(id));
                match (a, b) {
                    (Ok(x), Ok(y)) => assert_eq!(x.causes, y.causes, "{policy}, an {id}"),
                    (Err(x), Err(y)) => assert_eq!(x, y),
                    (x, y) => panic!("divergence {policy}, an {id}: {x:?} vs {y:?}"),
                }
            }
        }
    }

    #[test]
    fn spatial_overflow_triggers_repartition() {
        let ds = uncertain_fixture();
        let mut sharded =
            ShardedExplainEngine::new(ds, EngineConfig::with_alpha(0.75), 3, ShardPolicy::Spatial)
                .expect("valid config");
        let q = pt(5.0, 5.0);
        let _ = sharded.explain(&q, ObjectId(0));
        // Pile new objects onto one spot: they all route to the same
        // slab until it exceeds twice its fair share and the layout is
        // recut.
        for i in 0..80u32 {
            sharded
                .apply(Update::Insert(UncertainObject::certain(
                    ObjectId(100 + i),
                    pt(6.0, 6.0 + f64::from(i) * 1e-3),
                )))
                .unwrap();
        }
        assert!(
            sharded.repartitions() > 0,
            "a hot slab must trigger a repartition: sizes {:?}",
            sharded.shard_sizes()
        );
        assert!(sharded.shard_rebuilds().iter().all(|&r| r > 0));
        // Post-repartition balance: within one of the balanced split.
        let sizes = sharded.shard_sizes();
        let total: usize = sizes.iter().sum();
        assert_eq!(total, 85);
        // Still correct after the recut.
        let fresh = crate::engine::ExplainEngine::new(
            UncertainDataset::from_objects(sharded.dataset().iter().cloned()).unwrap(),
            EngineConfig::with_alpha(0.75),
        )
        .expect("valid config");
        let a = sharded.explain_as(ExplainStrategy::Cp, &q, 0.75, ObjectId(0));
        let b = fresh.explain_as(ExplainStrategy::Cp, &q, 0.75, ObjectId(0));
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x.causes, y.causes),
            (Err(x), Err(y)) => assert_eq!(x, y),
            (x, y) => panic!("divergence after repartition: {x:?} vs {y:?}"),
        }
    }

    #[test]
    fn two_shard_spatial_overflow_recuts_the_layout() {
        // Built over an empty dataset: no routing table exists, so
        // every insert lands in shard 0 until the first repartition
        // cuts one — and at n = 2 the trigger must still be reachable
        // (2 × fair share ≈ the whole dataset there; the ¾ cap fires).
        let mut sharded = ShardedExplainEngine::new(
            UncertainDataset::new(),
            EngineConfig::with_alpha(0.75),
            2,
            ShardPolicy::Spatial,
        )
        .expect("valid config");
        for i in 0..60u32 {
            sharded
                .apply(Update::Insert(UncertainObject::certain(
                    ObjectId(i),
                    pt(f64::from(i), 0.0),
                )))
                .unwrap();
        }
        assert!(
            sharded.repartitions() > 0,
            "2-shard hot slab must recut: sizes {:?}",
            sharded.shard_sizes()
        );
        let sizes = sharded.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
        assert!(
            sizes.iter().all(|&s| s > 0),
            "post-recut both shards serve: {sizes:?}"
        );
        // Still correct after the churn.
        let q = pt(5.0, 5.0);
        let fresh = crate::engine::ExplainEngine::new(
            UncertainDataset::from_objects(sharded.dataset().iter().cloned()).unwrap(),
            EngineConfig::with_alpha(0.75),
        )
        .expect("valid config");
        for id in [0u32, 30, 59] {
            let a = sharded.explain(&q, ObjectId(id));
            let b = fresh.explain(&q, ObjectId(id));
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x.causes, y.causes, "an {id}"),
                (Err(x), Err(y)) => assert_eq!(x, y, "an {id}"),
                (x, y) => panic!("divergence an {id}: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn spatial_staleness_rebuilds_one_shard() {
        // A 1-shard spatial session can never overflow (the shard IS
        // the dataset), so sustained churn exercises the stale-tree
        // path instead: after enough mutations against a built tree,
        // the shard drops it for a lazy local rebuild.
        let ds = uncertain_fixture();
        let mut sharded =
            ShardedExplainEngine::new(ds, EngineConfig::with_alpha(0.75), 1, ShardPolicy::Spatial)
                .expect("valid config");
        let q = pt(5.0, 5.0);
        let _ = sharded.explain(&q, ObjectId(0)); // build the tree
        for round in 0..70u32 {
            sharded
                .apply(Update::Replace(UncertainObject::certain(
                    ObjectId(3),
                    pt(40.0 + f64::from(round % 7), 40.0),
                )))
                .unwrap();
        }
        assert_eq!(sharded.repartitions(), 0);
        assert_eq!(sharded.shard_rebuilds(), vec![1], "stale tree dropped once");
        // The rebuilt shard still answers like a fresh engine.
        let fresh = crate::engine::ExplainEngine::new(
            UncertainDataset::from_objects(sharded.dataset().iter().cloned()).unwrap(),
            EngineConfig::with_alpha(0.75),
        )
        .expect("valid config");
        let out = sharded.explain(&q, ObjectId(0)).unwrap();
        assert_eq!(out.causes, fresh.explain(&q, ObjectId(0)).unwrap().causes);
    }

    #[test]
    fn empty_and_error_cases_match_unsharded() {
        let q = pt(5.0, 5.0);
        // Empty dataset: same error as the unsharded engine, on every path.
        let empty = ShardedExplainEngine::new(
            UncertainDataset::new(),
            EngineConfig::default(),
            4,
            ShardPolicy::RoundRobin,
        )
        .expect("valid engine config");
        assert_eq!(
            empty.explain(&q, ObjectId(0)).unwrap_err(),
            CrpError::EmptyDataset
        );
        assert_eq!(
            empty.candidate_ids(&q, ObjectId(0)).unwrap_err(),
            CrpError::EmptyDataset
        );
        // Unknown object.
        let ds = uncertain_fixture();
        let sharded =
            ShardedExplainEngine::new(ds, EngineConfig::default(), 2, ShardPolicy::HashById)
                .expect("valid engine config");
        assert_eq!(
            sharded.explain(&q, ObjectId(99)).unwrap_err(),
            CrpError::UnknownObject(ObjectId(99))
        );
        // More shards than objects: empty shards answer with nothing.
        let tiny = UncertainDataset::from_points(vec![pt(10.0, 10.0), pt(7.0, 7.0)]).unwrap();
        let sharded =
            ShardedExplainEngine::new(tiny, EngineConfig::default(), 7, ShardPolicy::Spatial)
                .expect("valid engine config");
        let out = sharded.explain(&q, ObjectId(0)).unwrap();
        assert!(out.causes[0].counterfactual);
        // Zero shards clamps to one.
        let one = ShardedExplainEngine::new(
            uncertain_fixture(),
            EngineConfig::default(),
            0,
            ShardPolicy::RoundRobin,
        )
        .expect("valid engine config");
        assert_eq!(one.shard_count(), 1);
    }
}
