//! Planner windows and admission control for serving front-ends.
//!
//! A server that explains non-answers for many concurrent clients has
//! two levers this module encodes:
//!
//! * **Windowing** — instead of running each client's
//!   [`ExplainRequest`] alone, the server closes a short *planner
//!   window* over whatever arrived together and compiles the whole
//!   window as **one** workload through [`ExplainSession::run`]. The
//!   planner then dedups stage-1 work units *across clients*: sixteen
//!   clients asking about nearby queries pay for one traversal, not
//!   sixteen. [`execute_window`] runs a window and demuxes the flat
//!   task results back per request.
//! * **Admission control** — under load the server degrades
//!   deterministically instead of queueing without bound.
//!   [`derive_limits`] maps (client class, queue depth) to
//!   [`PlanLimits`]; [`admission`] decides accept-with-limits vs shed
//!   with a typed retry hint. Both are pure functions of their inputs
//!   so two servers at the same depth make the same decision.
//!
//! [`fan_out`] is the offline counterpart: it chunks a request list
//! across OS threads, each chunk executed as one window. Because
//! planned execution is bit-identical to per-call execution, the
//! concatenated results equal a serial run — this is what
//! `crp replay --readers N` routes through.

use super::budget::PlanLimits;
use super::plan::{ExplainRequest, PlanCounters};
use super::session::ExplainSession;
use crate::error::CrpError;
use crate::types::CrpOutcome;
use crp_uncertain::Epoch;
use std::fmt;
use std::str::FromStr;

/// Serving priority of a connected client. The class is declared in
/// the wire `hello` and never inferred, so budget decisions are
/// reproducible from the request log alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClientClass {
    /// Latency-sensitive: tight deadlines that tighten further under
    /// load, shed last.
    #[default]
    Interactive,
    /// Throughput work: never budget-limited, but shed once the queue
    /// is full.
    Batch,
    /// Opportunistic: smallest budgets, shed first (at half the queue
    /// capacity).
    BestEffort,
}

impl ClientClass {
    /// The wire token for this class.
    pub fn as_str(self) -> &'static str {
        match self {
            ClientClass::Interactive => "interactive",
            ClientClass::Batch => "batch",
            ClientClass::BestEffort => "best-effort",
        }
    }
}

impl fmt::Display for ClientClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ClientClass {
    type Err = CrpError;

    /// Strict: exactly the lowercase wire tokens, anything else is a
    /// typed config error (a typo'd class must not silently demote a
    /// client).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interactive" => Ok(ClientClass::Interactive),
            "batch" => Ok(ClientClass::Batch),
            "best-effort" => Ok(ClientClass::BestEffort),
            _ => Err(CrpError::InvalidConfig {
                field: "class",
                reason: format!("unknown client class {s:?} (interactive|batch|best-effort)"),
            }),
        }
    }
}

/// Integer load level 0..=4 from queue depth: 0 when idle, 4 when the
/// queue is at capacity. Monotone non-decreasing in `pending`, so
/// every budget derived from it is monotone non-increasing.
fn load_level(pending: usize, queue_cap: usize) -> u64 {
    let cap = queue_cap.max(1);
    (pending.min(cap) * 4 / cap) as u64
}

/// The plan budget a request admitted at this queue depth runs under.
/// Pure and integer-only: same (class, depth, capacity) → same
/// limits on every host.
///
/// * [`Batch`](ClientClass::Batch) is never budget-limited — batch
///   work either runs whole or is shed at the door.
/// * [`Interactive`](ClientClass::Interactive) starts at a 1000 ms
///   deadline and tightens to 200 ms as the queue fills.
/// * [`BestEffort`](ClientClass::BestEffort) starts at 250 ms plus a
///   node-access ceiling and tightens to 50 ms.
pub fn derive_limits(class: ClientClass, pending: usize, queue_cap: usize) -> PlanLimits {
    let load = load_level(pending, queue_cap);
    match class {
        ClientClass::Batch => PlanLimits::default(),
        ClientClass::Interactive => PlanLimits {
            deadline_ms: Some(1000 / (1 + load)),
            ..PlanLimits::default()
        },
        ClientClass::BestEffort => PlanLimits {
            deadline_ms: Some(250 / (1 + load)),
            max_node_accesses: Some(200_000 / (1 + load)),
            ..PlanLimits::default()
        },
    }
}

/// The admission decision for one arriving request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Run it, under these limits.
    Accept(PlanLimits),
    /// Shed: the client should retry after the hinted backoff.
    Shed {
        /// Deterministic backoff hint in milliseconds, growing with
        /// how far past the shed threshold the queue is.
        retry_after_ms: u64,
    },
}

/// Decide whether a request of `class` joins a queue already holding
/// `pending` requests. Best-effort clients shed at half capacity;
/// everyone sheds at full capacity. Pure function — the shed response
/// a client sees is reproducible from (class, depth, capacity).
pub fn admission(class: ClientClass, pending: usize, queue_cap: usize) -> Admission {
    let cap = queue_cap.max(1);
    let shed_at = match class {
        ClientClass::BestEffort => cap.div_ceil(2),
        _ => cap,
    };
    if pending >= shed_at {
        let over = (pending - shed_at) as u64;
        Admission::Shed {
            retry_after_ms: (25 * (1 + over)).min(1000),
        }
    } else {
        Admission::Accept(derive_limits(class, pending, queue_cap))
    }
}

/// The outcome of one planner window: the flat plan results demuxed
/// back per request, plus what the planner saved by batching.
#[derive(Debug)]
pub struct WindowReport {
    /// Dataset version the window executed against.
    pub epoch: Epoch,
    /// Planner counters for the whole window; `stage1_shared_tasks`
    /// over `tasks` is the cross-client dedup ratio.
    pub counters: PlanCounters,
    /// One result list per request, in request order, each in the
    /// request's own expansion order (queries-outer / objects /
    /// α-inner).
    pub per_request: Vec<Vec<Result<CrpOutcome, CrpError>>>,
}

impl WindowReport {
    /// Total tasks across every request in the window.
    pub fn task_total(&self) -> usize {
        self.per_request.iter().map(Vec::len).sum()
    }
}

/// Compile `requests` as **one** planned workload against `session`
/// and split the flat results back per request. This is the whole
/// batching trick: results are bit-identical to running each request
/// alone (the planner guarantees planned ≡ per-call), but stage-1
/// units are deduplicated across all of them.
pub fn execute_window(session: &dyn ExplainSession, requests: &[ExplainRequest]) -> WindowReport {
    let report = session.run(requests);
    debug_assert_eq!(
        report.results.len(),
        requests
            .iter()
            .map(ExplainRequest::task_count)
            .sum::<usize>(),
        "plan returns exactly one result per task"
    );
    let mut flat = report.results.into_iter();
    let per_request = requests
        .iter()
        .map(|r| flat.by_ref().take(r.task_count()).collect())
        .collect();
    WindowReport {
        epoch: session.epoch(),
        counters: report.counters,
        per_request,
    }
}

/// Run `requests` across up to `threads` OS threads, each contiguous
/// chunk executed as one planner window; reports come back in chunk
/// order, so flattening them preserves request order. Because planned
/// execution ≡ per-call execution, the concatenation is bit-identical
/// to a serial run of the same requests.
pub fn fan_out(
    session: &dyn ExplainSession,
    requests: &[ExplainRequest],
    threads: usize,
) -> Vec<WindowReport> {
    if requests.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, requests.len());
    if threads == 1 {
        return vec![execute_window(session, requests)];
    }
    let chunk = requests.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .chunks(chunk)
            .map(|part| scope.spawn(move || execute_window(session, part)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("window thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, ExplainEngine};
    use crp_geom::Point;
    use crp_uncertain::{ObjectId, UncertainDataset, UncertainObject};

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    fn fixture_engine() -> ExplainEngine {
        let ds = UncertainDataset::from_objects(vec![
            UncertainObject::certain(ObjectId(0), pt(10.0, 10.0)),
            UncertainObject::certain(ObjectId(1), pt(7.0, 7.0)),
            UncertainObject::with_equal_probs(ObjectId(2), vec![pt(8.0, 9.0), pt(30.0, 30.0)])
                .unwrap(),
            UncertainObject::certain(ObjectId(3), pt(40.0, 40.0)),
        ])
        .unwrap();
        ExplainEngine::new(ds, EngineConfig::with_alpha(0.75)).unwrap()
    }

    #[test]
    fn client_classes_parse_strictly() {
        assert_eq!(
            "interactive".parse::<ClientClass>().unwrap(),
            ClientClass::Interactive
        );
        assert_eq!("batch".parse::<ClientClass>().unwrap(), ClientClass::Batch);
        assert_eq!(
            "best-effort".parse::<ClientClass>().unwrap(),
            ClientClass::BestEffort
        );
        for bad in ["", "Interactive", "besteffort", "best effort", "batch "] {
            assert!(
                bad.parse::<ClientClass>().is_err(),
                "{bad:?} must not parse"
            );
        }
        for class in [
            ClientClass::Interactive,
            ClientClass::Batch,
            ClientClass::BestEffort,
        ] {
            assert_eq!(class.as_str().parse::<ClientClass>().unwrap(), class);
        }
    }

    #[test]
    fn limits_tighten_monotonically_with_load() {
        let cap = 32;
        let mut last_interactive = u64::MAX;
        let mut last_best_effort = (u64::MAX, u64::MAX);
        for pending in 0..=cap {
            assert!(
                derive_limits(ClientClass::Batch, pending, cap).is_unlimited(),
                "batch is never budget-limited"
            );
            let i = derive_limits(ClientClass::Interactive, pending, cap);
            let d = i.deadline_ms.expect("interactive always has a deadline");
            assert!(d <= last_interactive, "deadline grew under load");
            assert!(i.max_node_accesses.is_none() && i.max_subsets.is_none());
            last_interactive = d;

            let b = derive_limits(ClientClass::BestEffort, pending, cap);
            let bd = (b.deadline_ms.unwrap(), b.max_node_accesses.unwrap());
            assert!(bd.0 <= last_best_effort.0 && bd.1 <= last_best_effort.1);
            last_best_effort = bd;
        }
        assert_eq!(last_interactive, 200, "full queue → 1000/5 ms");
        assert_eq!(last_best_effort.0, 50, "full queue → 250/5 ms");
    }

    #[test]
    fn admission_sheds_best_effort_first_and_everyone_at_capacity() {
        let cap = 8;
        assert!(matches!(
            admission(ClientClass::BestEffort, 4, cap),
            Admission::Shed { retry_after_ms: 25 }
        ));
        assert!(matches!(
            admission(ClientClass::Interactive, 4, cap),
            Admission::Accept(_)
        ));
        for class in [ClientClass::Interactive, ClientClass::Batch] {
            assert!(matches!(admission(class, cap, cap), Admission::Shed { .. }));
            assert!(matches!(
                admission(class, cap - 1, cap),
                Admission::Accept(_)
            ));
        }
        // Backoff grows with overload but is capped.
        assert_eq!(
            admission(ClientClass::Batch, cap + 3, cap),
            Admission::Shed {
                retry_after_ms: 100
            }
        );
        assert_eq!(
            admission(ClientClass::Batch, cap + 1000, cap),
            Admission::Shed {
                retry_after_ms: 1000
            }
        );
    }

    #[test]
    fn windows_demux_exactly_and_match_solo_runs() {
        let engine = fixture_engine();
        let q = pt(5.0, 5.0);
        let requests = vec![
            ExplainRequest::alpha_sweep(&q, ObjectId(0), vec![0.25, 0.5, 0.75]),
            ExplainRequest::explain(&q, ObjectId(3)),
            ExplainRequest::batch(&q, &[ObjectId(0), ObjectId(3)]),
        ];
        let window = execute_window(&engine, &requests);
        assert_eq!(window.per_request.len(), 3);
        assert_eq!(window.per_request[0].len(), 3);
        assert_eq!(window.per_request[1].len(), 1);
        assert_eq!(window.per_request[2].len(), 2);
        assert_eq!(window.epoch, ExplainSession::epoch(&engine));

        // Bit-identical to each request run alone (fresh engine so the
        // outcome cache can't mask a mismatch).
        let solo = fixture_engine();
        for (req, via_window) in requests.iter().zip(&window.per_request) {
            let alone = solo.run(std::slice::from_ref(req)).results;
            let alone_ok: Vec<_> = alone.into_iter().map(|r| r.map(|o| o.causes)).collect();
            let window_ok: Vec<_> = via_window
                .iter()
                .map(|r| r.as_ref().map(|o| o.causes.clone()).map_err(|_| ()))
                .collect();
            let alone_ok: Vec<_> = alone_ok.into_iter().map(|r| r.map_err(|_| ())).collect();
            assert_eq!(window_ok, alone_ok, "windowed ≡ solo");
        }
        // The window shared stage-1 work across requests.
        assert!(window.counters.stage1_shared_tasks > 0);
    }

    #[test]
    fn fan_out_preserves_order_and_matches_serial() {
        let engine = fixture_engine();
        let q = pt(5.0, 5.0);
        let requests: Vec<_> = [0u32, 3, 0, 3, 0, 3, 0]
            .iter()
            .map(|&id| ExplainRequest::explain(&q, ObjectId(id)))
            .collect();
        let serial: Vec<_> = execute_window(&engine, &requests)
            .per_request
            .into_iter()
            .flatten()
            .map(|r| r.map(|o| o.causes).map_err(|_| ()))
            .collect();
        for threads in [1, 2, 3, 16] {
            let fresh = fixture_engine();
            let reports = fan_out(&fresh, &requests, threads);
            assert_eq!(reports.len(), threads.clamp(1, requests.len()).min(7));
            let flat: Vec<_> = reports
                .into_iter()
                .flat_map(|w| w.per_request)
                .flatten()
                .map(|r| r.map(|o| o.causes).map_err(|_| ()))
                .collect();
            assert_eq!(flat, serial, "{threads} threads ≡ serial");
        }
        assert!(fan_out(&engine, &[], 4).is_empty());
    }

    #[test]
    fn session_candidate_seam_agrees_across_flavours() {
        use crate::engine::merge::merge_candidate_ids;
        use crate::engine::mvcc::SnapshotEngine;
        use crate::engine::{ShardPolicy, ShardedExplainEngine};

        let single = fixture_engine();
        let ds = single.discrete_dataset().expect("discrete fixture").clone();
        let sharded =
            ShardedExplainEngine::new(ds, EngineConfig::with_alpha(0.75), 2, ShardPolicy::Spatial)
                .unwrap();
        let q = pt(5.0, 5.0);
        let sessions: [&dyn ExplainSession; 2] = [&single, &sharded];
        assert_eq!(sessions[0].shard_count(), 1);
        assert_eq!(sessions[1].shard_count(), 2);
        let merged_single = ExplainSession::candidate_ids(&single, &q, ObjectId(0)).unwrap();
        for session in sessions {
            let merged = session.candidate_ids(&q, ObjectId(0)).unwrap();
            assert_eq!(merged, merged_single, "merged stage-1 is flavour-invariant");
            let shards: Vec<_> = (0..session.shard_count())
                .map(|s| session.shard_candidate_ids(s, &q, ObjectId(0)).unwrap())
                .collect();
            assert_eq!(
                merge_candidate_ids(shards),
                merged,
                "per-shard outputs merge back bit-identically"
            );
        }
    }
}
