//! The **merge** stage of the sharded pipeline: combines per-shard
//! stage-1 outputs into the single global view the refinement and FMCS
//! stages consume.
//!
//! Sharding only parallelises candidate *generation* — each shard runs
//! the window filter against its own R-tree. Everything after stage 1
//! (dominance matrix, lemma classification, FMCS) is partition-agnostic
//! and must see exactly the candidate set an unsharded session would
//! have produced. This module owns that contract:
//!
//! * [`merge_candidate_ids`] — deduplicated id-ordered union of
//!   per-shard candidate sets (shards partition the dataset, so the
//!   union is exact, not approximate),
//! * `global_positions` — maps merged ids back to positions in the
//!   global dataset, restoring the unsharded pipeline's candidate
//!   order (ascending dataset position) bit-for-bit,
//! * `impacts` / `order_by_impact` — the global impact ordering of
//!   the FMCS search space. Ordering lives here (not per driver) so the
//!   serial and candidate-parallel FMCS drivers, and any sharded
//!   session, rank candidates through one code path.

use crate::matrix::DominanceMatrix;
use crp_uncertain::{ObjectId, UncertainDataset};

/// Merges per-shard candidate (or dominator / region-hit) id sets into
/// one deduplicated, ascending-id list.
///
/// Shards hold disjoint objects, so concatenation alone would already
/// be duplicate-free; the sort + dedup also makes the merge safe for
/// overlapping sources (e.g. re-merging an already-merged list) and
/// pins the order the certain-data pipeline relies on.
pub fn merge_candidate_ids(parts: impl IntoIterator<Item = Vec<ObjectId>>) -> Vec<ObjectId> {
    let mut merged: Vec<ObjectId> = parts.into_iter().flatten().collect();
    merged.sort_unstable();
    merged.dedup();
    merged
}

/// Maps merged candidate ids to their positions in the global dataset,
/// sorted ascending — exactly the candidate list the unsharded filter
/// produces, which is what makes sharded outcomes bit-identical.
///
/// Ids unknown to `ds` are ignored (they cannot occur for shards built
/// by partitioning `ds`, but the merge stage must not panic on foreign
/// input).
pub(crate) fn global_positions(ds: &UncertainDataset, ids: &[ObjectId]) -> Vec<usize> {
    let mut positions: Vec<usize> = ids.iter().filter_map(|&id| ds.index_of(id)).collect();
    positions.sort_unstable();
    positions.dedup();
    positions
}

/// The per-candidate impact scores of a dominance matrix (how much
/// removing each candidate can lift `Pr(an)`), precomputed once per
/// non-answer and shared by every FMCS driver.
pub(crate) fn impacts(matrix: &DominanceMatrix) -> Vec<f64> {
    (0..matrix.candidates()).map(|c| matrix.impact(c)).collect()
}

/// Orders an FMCS search space high-impact-first: the first combination
/// of each cardinality is then the greedy removal set, which on deep
/// non-answers is very likely already a valid contingency set. Any
/// order is correct; this one converges fastest, and keeping it here
/// guarantees every driver (serial, candidate-parallel, sharded) ranks
/// identically.
pub(crate) fn order_by_impact(search: &mut [usize], impacts: &[f64]) {
    search.sort_by(|&a, &b| impacts[b].partial_cmp(&impacts[a]).expect("finite impacts"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_geom::Point;

    #[test]
    fn merge_unions_sorts_and_dedups() {
        let parts = vec![
            vec![ObjectId(7), ObjectId(2)],
            vec![],
            vec![ObjectId(4), ObjectId(2)],
        ];
        assert_eq!(
            merge_candidate_ids(parts),
            vec![ObjectId(2), ObjectId(4), ObjectId(7)]
        );
        assert!(merge_candidate_ids(Vec::<Vec<ObjectId>>::new()).is_empty());
    }

    #[test]
    fn positions_restore_global_order() {
        // Dataset positions follow insertion order, not id order.
        let ds = UncertainDataset::from_objects(vec![
            crp_uncertain::UncertainObject::certain(ObjectId(9), Point::from([0.0, 0.0])),
            crp_uncertain::UncertainObject::certain(ObjectId(1), Point::from([1.0, 1.0])),
            crp_uncertain::UncertainObject::certain(ObjectId(5), Point::from([2.0, 2.0])),
        ])
        .unwrap();
        let ids = merge_candidate_ids(vec![vec![ObjectId(5)], vec![ObjectId(9)]]);
        assert_eq!(ids, vec![ObjectId(5), ObjectId(9)]);
        // Position order: 9 is at 0, 5 is at 2.
        assert_eq!(global_positions(&ds, &ids), vec![0, 2]);
        // Foreign ids are ignored, not a panic.
        assert_eq!(global_positions(&ds, &[ObjectId(42)]), Vec::<usize>::new());
    }

    #[test]
    fn impact_order_is_descending() {
        // dp rows: candidate 0 weak, candidate 1 strong, candidate 2 mid.
        let m = DominanceMatrix::from_parts(vec![0.1, 0.9, 0.5], vec![1.0], 3);
        let scores = impacts(&m);
        let mut search = vec![0, 1, 2];
        order_by_impact(&mut search, &scores);
        assert_eq!(search, vec![1, 2, 0]);
    }
}
