//! The shared explain pipeline: `filter → refine → fmcs`.
//!
//! Every probabilistic strategy (CP with either filter, Naive-I, and
//! the pdf variant) runs through [`run_probabilistic`] /
//! [`run_pdf`]; only the stage implementations and the [`CpConfig`]
//! switches differ. The certain-data strategies run through
//! [`super::certain::run_certain`], which shares the same
//! validate-filter-finish shape but replaces refinement with Lemma 7's
//! closed form (or Naive-II's subset verification).

use super::filter::FilterStage;
use crate::config::CpConfig;
use crate::error::CrpError;
use crate::matrix::{with_scratch, DominanceMatrix, Scratch};
use crate::types::{Cause, CrpOutcome, RunStats};
use crp_geom::{dominance_rect, HyperRect, Point, PROB_EPSILON};
use crp_rtree::{AtomicQueryStats, PackedRTree, QueryStats, RTree, WindowQuery};
use crp_uncertain::{ObjectId, PdfDataset, UncertainDataset};

/// Stage 1 of the pdf pipeline, abstracted over the partition layout:
/// the ids of every indexed region intersecting any of the per-quadrant
/// filter windows (sorted, deduplicated, `exclude` removed).
///
/// Implemented by the single global region tree and by the shard
/// fan-out of [`super::shard::ShardedExplainEngine`]; both produce the
/// identical hit list, so the integration stages below are
/// partition-agnostic.
pub(crate) trait RegionHitSource: Sync {
    fn region_hits(
        &self,
        windows: &[HyperRect],
        exclude: ObjectId,
        stats: &mut RunStats,
    ) -> Vec<ObjectId>;
}

impl RegionHitSource for RTree<ObjectId> {
    fn region_hits(
        &self,
        windows: &[HyperRect],
        exclude: ObjectId,
        stats: &mut RunStats,
    ) -> Vec<ObjectId> {
        tree_region_hits(self, windows, exclude, &mut stats.query)
    }
}

impl RegionHitSource for PackedRTree<ObjectId> {
    fn region_hits(
        &self,
        windows: &[HyperRect],
        exclude: ObjectId,
        stats: &mut RunStats,
    ) -> Vec<ObjectId> {
        tree_region_hits(self, windows, exclude, &mut stats.query)
    }
}

/// The pdf window traversal over one region tree (pointer or packed —
/// generic through [`WindowQuery`]): ids intersecting any window,
/// `exclude` removed, sorted and deduplicated. The single
/// implementation behind the global tree and each shard of the sharded
/// engine.
pub(crate) fn tree_region_hits<Q: WindowQuery<ObjectId> + ?Sized>(
    tree: &Q,
    windows: &[HyperRect],
    exclude: ObjectId,
    query: &mut crp_rtree::QueryStats,
) -> Vec<ObjectId> {
    let mut hits: Vec<ObjectId> = Vec::new();
    tree.visit_windows(windows, query, &mut |&id| {
        if id != exclude {
            hits.push(id);
        }
        true
    });
    hits.sort_unstable();
    hits.dedup();
    hits
}

/// Folds the node accesses of one (possibly failed) explain into the
/// engine's session accumulator. Error outcomes (`NotANonAnswer`,
/// `BudgetExhausted`) have already paid their tree traversal, so the
/// session I/O total must include them. The evaluator fast/slow-path
/// taps are *per-explain* refinement counters (like
/// `subsets_examined`), not session I/O — they stay in the outcome's
/// [`RunStats`] and are stripped from the accumulator here.
fn absorb_io(io: Option<&AtomicQueryStats>, stats: &RunStats) {
    if let Some(io) = io {
        io.absorb(QueryStats {
            eval_fast: 0,
            eval_slow: 0,
            ..stats.query
        });
    }
}

/// Input validation shared by the probabilistic strategies.
pub(crate) fn validate(
    ds: &UncertainDataset,
    q: &Point,
    an_id: ObjectId,
    alpha: f64,
) -> Result<usize, CrpError> {
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(CrpError::InvalidAlpha(alpha));
    }
    if ds.is_empty() {
        return Err(CrpError::EmptyDataset);
    }
    let an_pos = ds.index_of(an_id).ok_or(CrpError::UnknownObject(an_id))?;
    debug_assert_eq!(
        ds.dim().expect("non-empty dataset"),
        q.dim(),
        "query dimensionality mismatch"
    );
    Ok(an_pos)
}

/// The output of pipeline stage 1 for one non-answer: the candidate
/// cause **ids** (in the pipeline's canonical order — ascending dataset
/// position at computation time) and the dominance matrix whose rows
/// follow that order. Everything the α-dependent stages 2–3 consume;
/// what the engine's explanation cache stores per `(an, q)` so an
/// α-sweep re-runs only refinement.
#[derive(Clone, Debug)]
pub(crate) struct StageOne {
    pub ids: Vec<ObjectId>,
    pub matrix: DominanceMatrix,
}

/// Stage 1 of the discrete pipeline: filter + matrix build. Fills only
/// the query-side counters of `stats`.
pub(crate) fn stage1_probabilistic(
    ds: &UncertainDataset,
    q: &Point,
    an_pos: usize,
    filter: &dyn FilterStage,
    stats: &mut RunStats,
) -> StageOne {
    let candidates = filter.candidates(ds, q, an_pos, stats);
    let matrix = DominanceMatrix::build(ds, an_pos, q, &candidates);
    let ids = candidates
        .into_iter()
        .map(|pos| ds.object_at(pos).id())
        .collect();
    StageOne { ids, matrix }
}

/// Runs the full pipeline for one non-answer of a probabilistic reverse
/// skyline query over discrete-sample data. `io`, when given, receives
/// the call's node accesses whether it succeeds or errors.
pub(crate) fn run_probabilistic(
    ds: &UncertainDataset,
    q: &Point,
    an_id: ObjectId,
    alpha: f64,
    config: &CpConfig,
    filter: &dyn FilterStage,
    io: Option<&AtomicQueryStats>,
) -> Result<CrpOutcome, CrpError> {
    let mut stats = RunStats::default();
    let result = with_scratch(|scratch| {
        let an_pos = validate(ds, q, an_id, alpha)?;
        let stage1 = stage1_probabilistic(ds, q, an_pos, filter, &mut stats);
        finish(&stage1.matrix, alpha, config, &mut stats, scratch, |cand| {
            stage1.ids[cand]
        })
    });
    absorb_io(io, &stats);
    result.map(|causes| CrpOutcome { causes, stats })
}

/// Stages 2 + 3 over an already-built dominance matrix, mapping
/// candidate indices back to object ids through `id_of`. Shared by the
/// discrete and pdf variants. `scratch` is the reusable hot-path
/// workspace the caller lends — per-call sites borrow the per-thread
/// pooled one ([`with_scratch`]), the plan executor threads a single
/// workspace through every task of a stage-1 unit.
pub(crate) fn finish(
    matrix: &DominanceMatrix,
    alpha: f64,
    config: &CpConfig,
    stats: &mut RunStats,
    scratch: &mut Scratch,
    id_of: impl Fn(usize) -> ObjectId,
) -> Result<Vec<Cause>, CrpError> {
    // Budget seam: stage 1 is done, so its traversal cost is known —
    // charge it and poll before entering refinement (the part whose
    // cost can explode).
    if let Some(cancel) = super::budget::active() {
        cancel.charge_nodes(stats.query.node_accesses);
        cancel.check()?;
    }
    let pr_an = matrix.pr_full();
    if pr_an >= alpha - PROB_EPSILON {
        return Err(CrpError::NotANonAnswer { prob: pr_an });
    }
    // Stage 2: refine (lemma classification), then stage 3: FMCS — over
    // the lent scratch workspace, so one rayon worker (or one shard
    // thread, or one plan unit) reuses a single allocation-free
    // workspace across every explain it serves.
    let recs = crate::refine::refine(matrix, alpha, config, stats, scratch)?;
    let causes = recs
        .into_iter()
        .map(|r| {
            let gamma_len = r.gamma.len();
            Cause {
                id: id_of(r.cand),
                responsibility: 1.0 / (1.0 + gamma_len as f64),
                min_contingency: r.gamma.into_iter().map(&id_of).collect(),
                counterfactual: r.counterfactual,
            }
        })
        .collect();
    Ok(causes)
}

/// The pdf-model pipeline (Section 3.2): per-quadrant farthest-corner
/// windows for stage 1 (partition-generic through [`RegionHitSource`]),
/// closed-form box integrals for the matrix, then the shared
/// stages 2–3.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_pdf(
    ds: &PdfDataset,
    source: &dyn RegionHitSource,
    q: &Point,
    an_id: ObjectId,
    alpha: f64,
    resolution: usize,
    config: &CpConfig,
    io: Option<&AtomicQueryStats>,
) -> Result<CrpOutcome, CrpError> {
    let mut stats = RunStats::default();
    let result = run_pdf_inner(ds, source, q, an_id, alpha, resolution, config, &mut stats);
    absorb_io(io, &stats);
    result.map(|causes| CrpOutcome { causes, stats })
}

/// Validation shared by the pdf strategies, mirroring
/// [`validate`]'s guard order.
pub(crate) fn validate_pdf(ds: &PdfDataset, an_id: ObjectId, alpha: f64) -> Result<(), CrpError> {
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(CrpError::InvalidAlpha(alpha));
    }
    if ds.is_empty() {
        return Err(CrpError::EmptyDataset);
    }
    if ds.get(an_id).is_none() {
        return Err(CrpError::UnknownObject(an_id));
    }
    Ok(())
}

/// Stage 1 of the pdf pipeline: per-quadrant window traversal, then the
/// closed-form dominance matrix over the non-answer's integration
/// cells. The caller has already validated `an_id`.
pub(crate) fn stage1_pdf(
    ds: &PdfDataset,
    source: &dyn RegionHitSource,
    q: &Point,
    an_id: ObjectId,
    resolution: usize,
    stats: &mut RunStats,
) -> StageOne {
    let an = ds.get(an_id).expect("caller validated the id");

    // Stage 1: multi-window traversal over the per-quadrant windows.
    let windows = crate::pdf::pdf_windows(q, an.region());
    let hits = source.region_hits(&windows, an_id, stats);
    stage1_pdf_from_hits(ds, q, an_id, resolution, hits)
}

/// The integration tail of pdf stage 1, over an already-known hit list
/// (sorted ascending ids, `an_id` excluded): closed-form dominance
/// matrix of each hit over the non-answer's integration cells. Split
/// out so the plan executor can derive the hit list of a contained
/// query window from a larger window's coverage set without another
/// tree traversal and still build a bit-identical matrix.
pub(crate) fn stage1_pdf_from_hits(
    ds: &PdfDataset,
    q: &Point,
    an_id: ObjectId,
    resolution: usize,
    hits: Vec<ObjectId>,
) -> StageOne {
    let an = ds.get(an_id).expect("caller validated the id");

    // Integration cells of the non-answer.
    let cells = an.pdf().discretize(resolution);
    let weights: Vec<f64> = cells.iter().map(|(_, w)| *w).collect();

    // Exact dominance probability of each hit per cell; drop hits with
    // no dominating mass anywhere (the exact counterpart of Lemma 2).
    let mut candidates: Vec<ObjectId> = Vec::new();
    let mut dp: Vec<f64> = Vec::new();
    for id in hits {
        let cand = ds.get(id).expect("hit ids come from the dataset");
        let row: Vec<f64> = cells
            .iter()
            .map(|(center, _)| cand.pdf().box_probability(&dominance_rect(center, q)))
            .collect();
        if row.iter().any(|p| *p > 0.0) {
            candidates.push(id);
            dp.extend(row);
        }
    }
    let matrix = DominanceMatrix::from_parts(dp, weights, candidates.len());
    StageOne {
        ids: candidates,
        matrix,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_pdf_inner(
    ds: &PdfDataset,
    source: &dyn RegionHitSource,
    q: &Point,
    an_id: ObjectId,
    alpha: f64,
    resolution: usize,
    config: &CpConfig,
    stats: &mut RunStats,
) -> Result<Vec<Cause>, CrpError> {
    validate_pdf(ds, an_id, alpha)?;
    let stage1 = stage1_pdf(ds, source, q, an_id, resolution, stats);
    with_scratch(|scratch| {
        finish(&stage1.matrix, alpha, config, stats, scratch, |cand| {
            stage1.ids[cand]
        })
    })
}
