//! Pipeline stage 3 — **FMCS**, the ascending-cardinality minimal
//! contingency search (Algorithm 2), plus the Lemma 6 witness
//! propagation of Algorithm 1.
//!
//! The stage consumes a [`RefinePlan`](super::refine::RefinePlan)
//! produced by stage 2 and emits every actual cause with a minimal
//! contingency set. Two drivers exist:
//!
//! * [`search`] — the serial driver (global subset budget, Lemma 6
//!   witnesses),
//! * a candidate-parallel driver used automatically when
//!   [`CpConfig::parallel_fmcs`] is set *and* the configuration makes
//!   candidates independent (Lemma 6 off — witnesses couple candidates —
//!   and no global budget). Results and counters are bit-identical to
//!   the serial driver because each candidate's search is a pure
//!   function of the shared [`RefinePlan`] and per-candidate counters
//!   are folded in candidate order.
//!
//! Two kernels drive the subset loop, selected by
//! [`CpConfig::use_columnar_kernel`]:
//!
//! * **columnar/delta** (default) — the enumerator reports each subset
//!   as add/remove-one moves ([`for_each_combination_delta`]), the
//!   [`Checker`] maintains `Pr(an | P − Γ)` incrementally in the
//!   per-thread [`Scratch`], and classifications come from the
//!   sample-major fast kernels with a guard-banded exact fallback —
//!   `O(L)` per subset, no allocation per candidate,
//! * **reference** — the pre-rewrite path: a removal list rebuilt per
//!   subset and evaluated over the candidate-major layout. Kept for
//!   the before/after throughput sweep (`hotpath_sweep`) and the
//!   kernel-agreement tests; explanations and the
//!   `subsets_examined`/`prsq_evaluations` counters are identical to
//!   the columnar kernel's.

use super::refine::RefinePlan;
use crate::combinations::{for_each_combination, for_each_combination_delta, DeltaEvent, DeltaOp};
use crate::config::CpConfig;
use crate::error::CrpError;
use crate::matrix::{
    with_scratch, DominanceMatrix, FastVerdict, PrEvaluator, Scratch, SharedBounds, GUARD,
};
use crate::types::RunStats;
use crp_geom::PROB_EPSILON;
use crp_rtree::QueryStats;
use rayon::prelude::*;
use std::cell::Cell;

/// A cause expressed in candidate indices (mapped to object ids by the
/// pipeline driver).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct CauseRec {
    /// Candidate index of the cause.
    pub cand: usize,
    /// Minimal contingency set (candidate indices, ascending).
    pub gamma: Vec<usize>,
    /// True when `gamma` is empty.
    pub counterfactual: bool,
}

#[inline]
pub(crate) fn is_answer(pr: f64, alpha: f64) -> bool {
    pr >= alpha - PROB_EPSILON
}

/// Candidate counts from which the incremental log-space evaluator beats
/// the direct `O(|Cc|·L)` product (see [`PrEvaluator`]).
pub(crate) const INCREMENTAL_THRESHOLD: usize = 64;

/// The evaluator a [`Checker`] consults: owned by the serial driver,
/// borrowed from a shared instance by the parallel workers (building
/// [`PrEvaluator`] is `O(|Cc|·L)`, too much to repeat per candidate).
enum Evaluator<'m> {
    /// Small candidate sets: direct `O(|Cc|·L)` product evaluation.
    Direct,
    Owned(PrEvaluator<'m>),
    Shared(&'m PrEvaluator<'m>),
}

/// Uniform contingency-condition checker: direct evaluation for small
/// candidate sets, incremental (guard-banded) for large ones.
/// Classifications are identical either way, and identical between the
/// columnar and reference kernels.
///
/// All mutable working state lives in the caller-supplied [`Scratch`]
/// (one per rayon worker), so the checker itself is shared by `&` and
/// every hot-path call allocates nothing.
pub(crate) struct Checker<'m> {
    matrix: &'m DominanceMatrix,
    evaluator: Evaluator<'m>,
    /// Columnar/delta kernels vs the pre-rewrite reference path.
    columnar: bool,
    /// Candidate-batched probes: the fused condition pair / singleton
    /// sweep / log-domain screen ([`CpConfig::use_batched_probes`]);
    /// only meaningful on the columnar kernel.
    batched: bool,
    /// Memoised log-domain screen threshold, keyed by `α` bits (the
    /// evaluator's weight sum is fixed per checker). A `Cell` — each
    /// parallel worker owns its own checker, only the [`PrEvaluator`]
    /// is shared.
    screen: Cell<(u64, f64)>,
}

impl<'m> Checker<'m> {
    pub(crate) fn new(
        matrix: &'m DominanceMatrix,
        config: &CpConfig,
        scratch: &mut Scratch,
    ) -> Self {
        let n = matrix.candidates();
        let evaluator = if n >= INCREMENTAL_THRESHOLD {
            Evaluator::Owned(matrix.evaluator())
        } else {
            Evaluator::Direct
        };
        scratch.reset_for(matrix);
        Self {
            matrix,
            evaluator,
            columnar: config.use_columnar_kernel,
            batched: config.use_batched_probes && config.use_columnar_kernel,
            screen: Cell::new((f64::NAN.to_bits(), f64::NEG_INFINITY)),
        }
    }

    /// A checker borrowing an already-built evaluator (`None` = direct
    /// evaluation) — the parallel driver builds the evaluator once and
    /// hands every worker a reference.
    fn with_shared(
        matrix: &'m DominanceMatrix,
        evaluator: Option<&'m PrEvaluator<'m>>,
        config: &CpConfig,
        scratch: &mut Scratch,
    ) -> Self {
        scratch.reset_for(matrix);
        Self {
            matrix,
            evaluator: match evaluator {
                Some(ev) => Evaluator::Shared(ev),
                None => Evaluator::Direct,
            },
            columnar: config.use_columnar_kernel,
            batched: config.use_batched_probes && config.use_columnar_kernel,
            screen: Cell::new((f64::NAN.to_bits(), f64::NEG_INFINITY)),
        }
    }

    /// The log-domain screen threshold for `α`:
    /// `ln((α − GUARD)/Σw) − margin`, or `-∞` (screen disabled) when the
    /// bound cannot certify anything (`α ≤ GUARD` or degenerate
    /// weights). Memoised per α — the subset loop calls this millions
    /// of times with the same value.
    fn ln_threshold(&self, alpha: f64, weight_sum: f64) -> f64 {
        let key = alpha.to_bits();
        let (cached_key, cached) = self.screen.get();
        if cached_key == key {
            return cached;
        }
        let num = alpha - GUARD;
        let thr = if num > 0.0 && weight_sum > 0.0 {
            // The 1e-9 log-space margin dominates every rounding step
            // of the screen's bound chain (see `PrEvaluator` docs), so
            // a certified `Below` is certain.
            (num / weight_sum).ln() - 1e-9
        } else {
            f64::NEG_INFINITY
        };
        self.screen.set((key, thr));
        thr
    }

    fn evaluator(&self) -> Option<&PrEvaluator<'_>> {
        match &self.evaluator {
            Evaluator::Owned(ev) => Some(ev),
            Evaluator::Shared(ev) => Some(ev),
            Evaluator::Direct => None,
        }
    }

    /// Is `an` an answer on `P − removed`? The removal-*list* entry
    /// point of the classification and Lemma 6 paths (the subset loop
    /// uses the delta protocol below instead). Clobbers the scratch
    /// mask.
    pub(crate) fn is_answer(
        &self,
        removed: &[usize],
        alpha: f64,
        scratch: &mut Scratch,
        query: &mut QueryStats,
    ) -> bool {
        let Some(ev) = self.evaluator() else {
            // Small candidate set: exact masked product (reference), or
            // its guard-banded columnar counterpart.
            scratch.clear_mask();
            for &c in removed {
                scratch.set_removed(c);
            }
            if !self.columnar {
                return is_answer(self.matrix.pr_with_removed_fmask(&scratch.mask), alpha);
            }
            let fast = self.matrix.pr_with_removed_columnar(&scratch.mask);
            return self.settle(fast, alpha, &scratch.mask, query);
        };
        if !self.columnar {
            return ev.is_answer_with_removed(removed, alpha);
        }
        let fast = ev.pr_with_removed_list(removed);
        if (fast - alpha).abs() <= GUARD {
            query.eval_slow += 1;
            scratch.clear_mask();
            for &c in removed {
                scratch.set_removed(c);
            }
            return is_answer(self.matrix.pr_with_removed_fmask(&scratch.mask), alpha);
        }
        query.eval_fast += 1;
        is_answer(fast, alpha)
    }

    /// Guard-banded verdict for a fast probability estimate: near the
    /// decision threshold, re-verify with the exact reference product
    /// over `mask`.
    fn settle(&self, fast: f64, alpha: f64, mask: &[f64], query: &mut QueryStats) -> bool {
        if (fast - alpha).abs() <= GUARD {
            query.eval_slow += 1;
            return is_answer(self.matrix.pr_with_removed_fmask(mask), alpha);
        }
        query.eval_fast += 1;
        is_answer(fast, alpha)
    }

    /// [`Checker::settle`] with candidate `cc` transiently folded into
    /// the mask for the exact fallback — the condition-(ii) variant.
    fn settle_extra(
        &self,
        cc: usize,
        fast: f64,
        alpha: f64,
        scratch: &mut Scratch,
        query: &mut QueryStats,
    ) -> bool {
        if (fast - alpha).abs() <= GUARD {
            query.eval_slow += 1;
            scratch.set_removed(cc);
            let verdict = is_answer(self.matrix.pr_with_removed_fmask(&scratch.mask), alpha);
            scratch.unset_removed(cc);
            return verdict;
        }
        query.eval_fast += 1;
        is_answer(fast, alpha)
    }

    // --- the delta protocol of the columnar subset loop ---------------

    /// Resets the maintained removal set to exactly `forced` (start of
    /// one cardinality's enumeration).
    fn begin(&self, forced: &[usize], scratch: &mut Scratch) {
        scratch.clear_mask();
        if let Some(ev) = self.evaluator() {
            ev.delta_begin(scratch);
            for &c in forced {
                scratch.set_removed(c);
                ev.delta_add(c, scratch);
            }
        } else {
            for &c in forced {
                scratch.set_removed(c);
            }
        }
    }

    /// Folds one enumerator move (in search-space coordinates, mapped
    /// through `search`) into the maintained state.
    fn apply(&self, op: DeltaOp, search: &[usize], scratch: &mut Scratch) {
        match op {
            DeltaOp::Add(s) => {
                let c = search[s];
                scratch.set_removed(c);
                if let Some(ev) = self.evaluator() {
                    ev.delta_add(c, scratch);
                }
            }
            DeltaOp::Remove(s) => {
                let c = search[s];
                scratch.unset_removed(c);
                if let Some(ev) = self.evaluator() {
                    ev.delta_remove(c, scratch);
                }
            }
        }
    }

    /// FMCS condition (i): is `an` an answer on `P − Γ` for the
    /// maintained `Γ`?
    fn current_is_answer(&self, alpha: f64, scratch: &mut Scratch, query: &mut QueryStats) -> bool {
        let fast = match self.evaluator() {
            Some(ev) => ev.delta_pr(scratch),
            None => self.matrix.pr_with_removed_columnar(&scratch.mask),
        };
        self.settle(fast, alpha, &scratch.mask, query)
    }

    /// FMCS condition (ii): is `an` an answer on `P − Γ − {cc}`? Leaves
    /// the maintained state untouched.
    fn extra_is_answer(
        &self,
        cc: usize,
        alpha: f64,
        scratch: &mut Scratch,
        query: &mut QueryStats,
    ) -> bool {
        debug_assert!(!scratch.is_removed(cc));
        let fast = match self.evaluator() {
            Some(ev) => ev.delta_pr_with_extra(cc, scratch),
            None => {
                scratch.set_removed(cc);
                let fast = self.matrix.pr_with_removed_columnar(&scratch.mask);
                scratch.unset_removed(cc);
                fast
            }
        };
        self.settle_extra(cc, fast, alpha, scratch, query)
    }

    /// One FMCS subset check — both conditions for the maintained `Γ`
    /// and its extension candidate `cc` — through the fastest route the
    /// checker's mode allows. The caller owns the counter protocol:
    /// `flips` is only meaningful when `answer` is false (condition (ii)
    /// is never *charged* — nor, in unbatched mode, evaluated — when
    /// condition (i) already holds).
    fn probe(&self, cc: usize, alpha: f64, scratch: &mut Scratch, query: &mut QueryStats) -> Probe {
        if !self.batched {
            let answer = self.current_is_answer(alpha, scratch, query);
            let flips = !answer && self.extra_is_answer(cc, alpha, scratch, query);
            return Probe { answer, flips };
        }
        match self.evaluator() {
            Some(ev) => {
                // Screened incremental route: the log-domain screen
                // certifies almost every deep probe `< α − GUARD` with
                // zero `exp` calls; anything it cannot certify runs the
                // exact same guard-banded evaluation as unbatched mode,
                // so verdicts are identical.
                let thr = self.ln_threshold(alpha, ev.weight_sum());
                let answer = match ev.delta_verdict(scratch, thr) {
                    FastVerdict::Below => {
                        query.eval_fast += 1;
                        false
                    }
                    FastVerdict::Value(fast) => self.settle(fast, alpha, &scratch.mask, query),
                };
                if answer {
                    return Probe {
                        answer: true,
                        flips: false,
                    };
                }
                let flips = match ev.delta_verdict_with_extra(cc, scratch, thr) {
                    FastVerdict::Below => {
                        query.eval_fast += 1;
                        false
                    }
                    FastVerdict::Value(fast) => self.settle_extra(cc, fast, alpha, scratch, query),
                };
                Probe {
                    answer: false,
                    flips,
                }
            }
            None => {
                // Direct route: one fused streaming pass over the
                // complement matrix yields both condition values.
                let (keep, drop) = self.matrix.pr_pair_with_extra(cc, &mut scratch.mask);
                let answer = self.settle(keep, alpha, &scratch.mask, query);
                if answer {
                    return Probe {
                        answer: true,
                        flips: false,
                    };
                }
                let flips = self.settle_extra(cc, drop, alpha, scratch, query);
                Probe {
                    answer: false,
                    flips,
                }
            }
        }
    }

    /// Max per-removal loosening of the cardinality screen over the
    /// search space, or 0.0 when this checker cannot use the screen
    /// (no evaluator, or batching off).
    pub(crate) fn search_neg_bound(&self, search: &[usize]) -> f64 {
        match self.evaluator() {
            Some(ev) if self.batched => ev.max_neg_over(search),
            _ => 0.0,
        }
    }

    /// Certifies — at the start of one cardinality's enumeration, with
    /// the delta state at the forced base — that every size-`k` subset
    /// keeps both FMCS conditions provably `< α − GUARD` (see
    /// [`PrEvaluator::cardinality_below`]). The caller then replaces
    /// the whole walk's evaluations with counter bookkeeping:
    /// classifications and every counter are exactly what per-subset
    /// probing would produce.
    pub(crate) fn cardinality_is_inert(
        &self,
        cc: usize,
        k: usize,
        search_maxneg: f64,
        alpha: f64,
        scratch: &Scratch,
    ) -> bool {
        if !self.batched {
            return false;
        }
        let Some(ev) = self.evaluator() else {
            return false;
        };
        let thr = self.ln_threshold(alpha, ev.weight_sum());
        ev.cardinality_below(scratch, k, search_maxneg, ev.neg_col_max(cc), thr)
    }

    /// The batched Lemma 5 sweep: fills `scratch.batch_prs` with every
    /// singleton-removal probability in one prefix/suffix pass. Returns
    /// false when this checker's mode runs sequential probes instead
    /// (reference kernel, or batching disabled).
    pub(crate) fn batch_singletons(&self, scratch: &mut Scratch) -> bool {
        if !self.batched {
            return false;
        }
        let mut prefix = std::mem::take(&mut scratch.batch_prefix);
        let mut prs = std::mem::take(&mut scratch.batch_prs);
        self.matrix.singleton_prs(&mut prefix, &mut prs);
        scratch.batch_prefix = prefix;
        scratch.batch_prs = prs;
        true
    }

    /// Settles one batched singleton verdict (`fast` =
    /// `scratch.batch_prs[c]`): near-threshold values re-verify against
    /// the exact singleton reference, so classifications match the
    /// sequential probe protocol exactly.
    pub(crate) fn settle_singleton(
        &self,
        c: usize,
        fast: f64,
        alpha: f64,
        query: &mut QueryStats,
    ) -> bool {
        if (fast - alpha).abs() <= GUARD {
            query.eval_slow += 1;
            return is_answer(self.matrix.pr_with_removed_singleton(c), alpha);
        }
        query.eval_fast += 1;
        is_answer(fast, alpha)
    }
}

/// Outcome of one [`Checker::probe`]: the condition-(i) verdict and —
/// only meaningful when `answer` is false — whether removing the probe
/// candidate flips `an` into an answer (condition (ii)).
struct Probe {
    answer: bool,
    flips: bool,
}

/// Outcome of one candidate's FMCS run.
struct CandidateSearch {
    /// The minimal contingency set found strictly below the witness
    /// bound, if any.
    found: Option<Vec<usize>>,
}

/// FMCS for a single candidate `cc`: enumerate candidate contingency
/// sets in ascending cardinality over the search space (on top of the
/// forced set), strictly below `upper_exclusive`.
///
/// Pure with respect to the other candidates: given the same plan
/// inputs it always produces the same result and the same counter
/// increments, which is what makes the parallel driver exact.
#[allow(clippy::too_many_arguments)]
fn search_candidate(
    matrix: &DominanceMatrix,
    alpha: f64,
    config: &CpConfig,
    cc: usize,
    forced_mask: &[bool],
    excluded: &[bool],
    impacts: &[f64],
    witness_len: Option<usize>,
    checker: &Checker<'_>,
    scratch: &mut Scratch,
    shared_bounds: Option<&SharedBounds>,
    stats: &mut RunStats,
) -> Result<CandidateSearch, CrpError> {
    let n = matrix.candidates();
    // The index buffers are borrowed out of the scratch for the whole
    // candidate search (the checker only touches the mask/delta state).
    let mut forced = std::mem::take(&mut scratch.forced);
    forced.clear();
    forced.extend((0..n).filter(|&c| c != cc && forced_mask[c]));
    let mut search = std::mem::take(&mut scratch.search);
    search.clear();
    search.extend((0..n).filter(|&c| c != cc && !forced_mask[c] && !excluded[c]));
    // Global impact ordering (see `super::merge`): `impacts` is
    // precomputed once per matrix by the drivers — the weighted sum is
    // O(L) and this sort runs per candidate.
    super::merge::order_by_impact(&mut search, impacts);
    // Search strictly below the witness size (Lemma 6 already proves a
    // set of that size exists); otherwise everything up to the whole
    // search space.
    let upper_exclusive = witness_len.unwrap_or(forced.len() + search.len() + 1);
    // Loosening bound of the batched cardinality screen (one O(|search|)
    // scan per candidate search; 0.0 when the screen does not apply).
    let search_maxneg = checker.search_neg_bound(&search);

    let mut budget_hit: Option<u64> = None;
    let mut found: Option<Vec<usize>> = None;
    // Plan-budget seam: poll the scoped cancellation handle every
    // CHECK_INTERVAL subset checks, charging that interval's work into
    // the plan-wide counters first so a `Partial` reports real
    // progress.
    let cancel = super::budget::active();
    let mut cancel_err: Option<CrpError> = None;
    let mut uncharged: u64 = 0;
    'sizes: for total in forced.len()..upper_exclusive {
        let k = total - forced.len();
        if k > search.len() {
            break;
        }
        // Probability-based pruning (extension): if even the most
        // damaging total+1 removals cannot reach α, no Γ of this size
        // can satisfy condition (ii). Served from a memo — the
        // worker-shared table in candidate-parallel mode (one factor
        // sort per explain, each size computed once across workers),
        // the per-thread scratch otherwise; values are bit-identical
        // to the reference bound either way.
        if config.use_probability_bound {
            let bound = match shared_bounds {
                Some(sb) => sb.get(matrix, total + 1),
                None => scratch.max_pr_bound(matrix, total + 1),
            };
            if !is_answer(bound, alpha) {
                continue;
            }
        }
        let budget = config.max_subsets;
        if config.use_columnar_kernel {
            checker.begin(&forced, scratch);
            // Whole-cardinality certification: when every size-k subset
            // is provably inert, the walk below skips the delta moves
            // and evaluations and only advances the counters — exactly
            // the increments per-subset probing would produce (cond (i)
            // false → both conditions charged, both screened fast).
            let inert = checker.cardinality_is_inert(cc, k, search_maxneg, alpha, scratch);
            for_each_combination_delta(search.len(), k, |event| {
                let _combo = match event {
                    DeltaEvent::Move(op) => {
                        if !inert {
                            checker.apply(op, &search, scratch);
                        }
                        return false;
                    }
                    DeltaEvent::Subset(combo) => combo,
                };
                stats.subsets_examined += 1;
                if let Some(max) = budget {
                    if stats.subsets_examined > max {
                        budget_hit = Some(stats.subsets_examined);
                        return true;
                    }
                }
                uncharged += 1;
                if uncharged >= super::budget::CHECK_INTERVAL {
                    if let Some(c) = &cancel {
                        c.charge_subsets(uncharged);
                        if let Err(e) = c.check() {
                            cancel_err = Some(e);
                            return true;
                        }
                    }
                    uncharged = 0;
                }
                stats.prsq_evaluations += 1;
                if inert {
                    stats.prsq_evaluations += 1;
                    stats.query.eval_fast += 2;
                    return false;
                }
                // Condition (i): P − Γ still a non-answer.
                let probe = checker.probe(cc, alpha, scratch, &mut stats.query);
                if !probe.answer {
                    stats.prsq_evaluations += 1;
                    // Condition (ii): P − Γ − {cc} becomes an answer.
                    if probe.flips {
                        // Γ = the maintained mask, already ascending.
                        found = Some(
                            scratch
                                .mask
                                .iter()
                                .enumerate()
                                .filter_map(|(c, &gone)| (gone != 0.0).then_some(c))
                                .collect(),
                        );
                        return true;
                    }
                }
                false
            });
        } else {
            // The pre-rewrite reference kernel: removal list per subset.
            let mut removal_list = std::mem::take(&mut scratch.list);
            for_each_combination(search.len(), k, |combo| {
                stats.subsets_examined += 1;
                if let Some(max) = budget {
                    if stats.subsets_examined > max {
                        budget_hit = Some(stats.subsets_examined);
                        return true;
                    }
                }
                uncharged += 1;
                if uncharged >= super::budget::CHECK_INTERVAL {
                    if let Some(c) = &cancel {
                        c.charge_subsets(uncharged);
                        if let Err(e) = c.check() {
                            cancel_err = Some(e);
                            return true;
                        }
                    }
                    uncharged = 0;
                }
                removal_list.clear();
                removal_list.extend_from_slice(&forced);
                removal_list.extend(combo.iter().map(|&s| search[s]));
                stats.prsq_evaluations += 1;
                // Condition (i): P − Γ still a non-answer.
                if !checker.is_answer(&removal_list, alpha, scratch, &mut stats.query) {
                    removal_list.push(cc);
                    stats.prsq_evaluations += 1;
                    // Condition (ii): P − Γ − {cc} becomes an answer.
                    let becomes =
                        checker.is_answer(&removal_list, alpha, scratch, &mut stats.query);
                    removal_list.pop();
                    if becomes {
                        let mut gamma = removal_list.clone();
                        gamma.sort_unstable();
                        found = Some(gamma);
                        return true;
                    }
                }
                false
            });
            scratch.list = removal_list;
        }
        if budget_hit.is_some() || cancel_err.is_some() {
            break 'sizes;
        }
        if found.is_some() {
            break 'sizes;
        }
    }
    scratch.forced = forced;
    scratch.search = search;
    if let Some(c) = &cancel {
        c.charge_subsets(uncharged);
    }
    if let Some(e) = cancel_err {
        return Err(e);
    }
    if let Some(examined) = budget_hit {
        return Err(CrpError::BudgetExhausted { examined });
    }
    Ok(CandidateSearch { found })
}

/// The serial FMCS driver with Lemma 6 witness propagation — stage 3 of
/// the pipeline. Dispatches to the candidate-parallel driver when the
/// configuration allows it (see module docs).
pub(crate) fn search(
    matrix: &DominanceMatrix,
    alpha: f64,
    config: &CpConfig,
    plan: RefinePlan<'_>,
    stats: &mut RunStats,
    scratch: &mut Scratch,
) -> Result<Vec<CauseRec>, CrpError> {
    let RefinePlan {
        forced_mask,
        excluded,
        mut done,
        mut results,
        complete,
        checker,
    } = plan;
    if complete {
        results.sort_by_key(|r| r.cand);
        return Ok(results);
    }

    // Candidate-level parallelism is exact only when candidates are
    // independent: Lemma 6 couples them through witnesses, and a global
    // subset budget couples them through the shared counter. A plan
    // budget also stays serial: its cancellation handle is scoped to
    // this thread, and serial order keeps the progress counters
    // deterministic up to the trip.
    if config.parallel_fmcs
        && !config.use_lemma6
        && config.max_subsets.is_none()
        && super::budget::active().is_none()
    {
        return search_parallel(
            matrix,
            alpha,
            config,
            &forced_mask,
            &excluded,
            &done,
            results,
            stats,
        );
    }

    let n = matrix.candidates();
    let impacts = super::merge::impacts(matrix);
    let cancel = super::budget::active();
    let mut witness: Vec<Option<Vec<usize>>> = vec![None; n];
    for cc in 0..n {
        if done[cc] {
            continue;
        }
        // Per-candidate budget poll: a deadline is honored at the next
        // candidate boundary even when each candidate stays under
        // CHECK_INTERVAL subsets.
        if let Some(c) = &cancel {
            c.check()?;
        }
        let outcome = search_candidate(
            matrix,
            alpha,
            config,
            cc,
            &forced_mask,
            &excluded,
            &impacts,
            witness[cc].as_ref().map(|w| w.len()),
            &checker,
            scratch,
            None,
            stats,
        )?;

        let gamma = match outcome.found {
            Some(g) => Some(g),
            // Nothing strictly smaller than the witness: the witness set
            // is minimal (Algorithm 1, lines 23–24).
            None => witness[cc].take(),
        };
        done[cc] = true;
        let Some(gamma) = gamma else {
            continue; // not an actual cause
        };

        // Lemma 6: seed witnesses for the unprocessed members of Γ.
        if config.use_lemma6 {
            for &o in &gamma {
                if done[o] {
                    continue;
                }
                let better = witness[o].as_ref().is_none_or(|w| w.len() > gamma.len());
                if !better {
                    continue;
                }
                let mut list = std::mem::take(&mut scratch.list);
                list.clear();
                list.extend(gamma.iter().copied().filter(|&g| g != o));
                list.push(cc);
                stats.prsq_evaluations += 1;
                let still_non_answer = !checker.is_answer(&list, alpha, scratch, &mut stats.query);
                scratch.list = list;
                if still_non_answer {
                    // (Γ−{o}) ∪ {cc} is a contingency set for o: condition
                    // (ii) holds because P−Γ−{cc} is an answer already.
                    let mut w: Vec<usize> = gamma.iter().copied().filter(|&g| g != o).collect();
                    w.push(cc);
                    w.sort_unstable();
                    witness[o] = Some(w);
                }
            }
        }

        results.push(CauseRec {
            cand: cc,
            counterfactual: gamma.is_empty(),
            gamma,
        });
    }

    results.sort_by_key(|r| r.cand);
    Ok(results)
}

/// Candidate-parallel FMCS: every open candidate searched concurrently.
///
/// Preconditions (checked by [`search`]): Lemma 6 off, no subset budget.
/// Per-candidate counters are folded in ascending candidate order, so
/// the aggregate [`RunStats`] equals the serial driver's exactly. Each
/// worker borrows its own thread-local [`Scratch`].
#[allow(clippy::too_many_arguments)]
fn search_parallel(
    matrix: &DominanceMatrix,
    alpha: f64,
    config: &CpConfig,
    forced_mask: &[bool],
    excluded: &[bool],
    done: &[bool],
    mut results: Vec<CauseRec>,
    stats: &mut RunStats,
) -> Result<Vec<CauseRec>, CrpError> {
    let n = matrix.candidates();
    let impacts = super::merge::impacts(matrix);
    // One evaluator for every worker: its O(|Cc|·L) precompute must not
    // be repeated per candidate (workers only read it). Likewise one
    // probability-bound table: its factor sort must not be repeated per
    // worker scratch.
    let shared_evaluator = (n >= INCREMENTAL_THRESHOLD).then(|| matrix.evaluator());
    let shared_bounds = config
        .use_probability_bound
        .then(|| SharedBounds::new(matrix));
    let open: Vec<usize> = (0..n).filter(|&cc| !done[cc]).collect();
    let per_candidate: Vec<(usize, Option<Vec<usize>>, RunStats)> = open
        .par_iter()
        .map(|&cc| {
            let mut local_stats = RunStats::default();
            let outcome = with_scratch(|scratch| {
                let checker =
                    Checker::with_shared(matrix, shared_evaluator.as_ref(), config, scratch);
                search_candidate(
                    matrix,
                    alpha,
                    config,
                    cc,
                    forced_mask,
                    excluded,
                    &impacts,
                    None,
                    &checker,
                    scratch,
                    shared_bounds.as_ref(),
                    &mut local_stats,
                )
            })
            .expect("parallel FMCS runs without a budget");
            (cc, outcome.found, local_stats)
        })
        .collect();

    for (cc, found, local_stats) in per_candidate {
        stats.subsets_examined += local_stats.subsets_examined;
        stats.prsq_evaluations += local_stats.prsq_evaluations;
        stats.query.absorb(local_stats.query);
        if let Some(gamma) = found {
            results.push(CauseRec {
                cand: cc,
                counterfactual: gamma.is_empty(),
                gamma,
            });
        }
    }
    results.sort_by_key(|r| r.cand);
    Ok(results)
}
