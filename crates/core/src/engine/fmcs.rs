//! Pipeline stage 3 — **FMCS**, the ascending-cardinality minimal
//! contingency search (Algorithm 2), plus the Lemma 6 witness
//! propagation of Algorithm 1.
//!
//! The stage consumes a [`RefinePlan`](super::refine::RefinePlan)
//! produced by stage 2 and emits every actual cause with a minimal
//! contingency set. Two drivers exist:
//!
//! * [`search`] — the serial driver, byte-for-byte the behaviour of the
//!   seed implementation (global subset budget, Lemma 6 witnesses),
//! * a candidate-parallel driver used automatically when
//!   [`CpConfig::parallel_fmcs`] is set *and* the configuration makes
//!   candidates independent (Lemma 6 off — witnesses couple candidates —
//!   and no global budget). Results and counters are bit-identical to
//!   the serial driver because each candidate's search is a pure
//!   function of the shared [`RefinePlan`] and per-candidate counters
//!   are folded in candidate order.

use super::refine::RefinePlan;
use crate::combinations::for_each_combination;
use crate::config::CpConfig;
use crate::error::CrpError;
use crate::matrix::{DominanceMatrix, PrEvaluator};
use crate::types::RunStats;
use crp_geom::PROB_EPSILON;
use rayon::prelude::*;

/// A cause expressed in candidate indices (mapped to object ids by the
/// pipeline driver).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct CauseRec {
    /// Candidate index of the cause.
    pub cand: usize,
    /// Minimal contingency set (candidate indices, ascending).
    pub gamma: Vec<usize>,
    /// True when `gamma` is empty.
    pub counterfactual: bool,
}

#[inline]
pub(crate) fn is_answer(pr: f64, alpha: f64) -> bool {
    pr >= alpha - PROB_EPSILON
}

/// Candidate counts from which the incremental log-space evaluator beats
/// the direct `O(|Cc|·L)` product (see [`PrEvaluator`]).
const INCREMENTAL_THRESHOLD: usize = 64;

/// The evaluator a [`Checker`] consults: owned by the serial driver,
/// borrowed from a shared instance by the parallel workers (building
/// [`PrEvaluator`] is `O(|Cc|·L)`, too much to repeat per candidate).
enum Evaluator<'m> {
    /// Small candidate sets: direct `O(|Cc|·L)` product evaluation.
    Direct,
    Owned(PrEvaluator<'m>),
    Shared(&'m PrEvaluator<'m>),
}

/// Uniform contingency-condition checker over removal *lists*: direct
/// evaluation for small candidate sets, incremental (guard-banded) for
/// large ones. Classifications are identical either way.
pub(crate) struct Checker<'m> {
    matrix: &'m DominanceMatrix,
    evaluator: Evaluator<'m>,
    mask: Vec<bool>,
}

impl<'m> Checker<'m> {
    pub(crate) fn new(matrix: &'m DominanceMatrix) -> Self {
        let n = matrix.candidates();
        let evaluator = if n >= INCREMENTAL_THRESHOLD {
            Evaluator::Owned(matrix.evaluator())
        } else {
            Evaluator::Direct
        };
        Self {
            matrix,
            evaluator,
            mask: vec![false; n],
        }
    }

    /// A checker borrowing an already-built evaluator (`None` = direct
    /// evaluation) — the parallel driver builds the evaluator once and
    /// hands every worker a reference.
    fn with_shared(matrix: &'m DominanceMatrix, evaluator: Option<&'m PrEvaluator<'m>>) -> Self {
        Self {
            matrix,
            evaluator: match evaluator {
                Some(ev) => Evaluator::Shared(ev),
                None => Evaluator::Direct,
            },
            mask: vec![false; matrix.candidates()],
        }
    }

    /// Is `an` an answer on `P − removed`?
    pub(crate) fn is_answer(&mut self, removed: &[usize], alpha: f64) -> bool {
        let ev = match &self.evaluator {
            Evaluator::Owned(ev) => ev,
            Evaluator::Shared(ev) => ev,
            Evaluator::Direct => {
                self.mask.fill(false);
                for &c in removed {
                    self.mask[c] = true;
                }
                return is_answer(self.matrix.pr_with_removed(&self.mask), alpha);
            }
        };
        ev.is_answer_with_removed(removed, alpha)
    }
}

/// Outcome of one candidate's FMCS run.
struct CandidateSearch {
    /// The minimal contingency set found strictly below the witness
    /// bound, if any.
    found: Option<Vec<usize>>,
}

/// FMCS for a single candidate `cc`: enumerate candidate contingency
/// sets in ascending cardinality over `search_space` (on top of the
/// forced set), strictly below `upper_exclusive`.
///
/// Pure with respect to the other candidates: given the same plan
/// inputs it always produces the same result and the same counter
/// increments, which is what makes the parallel driver exact.
#[allow(clippy::too_many_arguments)]
fn search_candidate(
    matrix: &DominanceMatrix,
    alpha: f64,
    config: &CpConfig,
    cc: usize,
    forced_mask: &[bool],
    excluded: &[bool],
    impacts: &[f64],
    witness_len: Option<usize>,
    checker: &mut Checker<'_>,
    removal_list: &mut Vec<usize>,
    stats: &mut RunStats,
) -> Result<CandidateSearch, CrpError> {
    let n = matrix.candidates();
    let forced: Vec<usize> = (0..n).filter(|&c| c != cc && forced_mask[c]).collect();
    let mut search: Vec<usize> = (0..n)
        .filter(|&c| c != cc && !forced_mask[c] && !excluded[c])
        .collect();
    // Global impact ordering (see `super::merge`): `impacts` is
    // precomputed once per matrix by the drivers — the weighted sum is
    // O(L) and this sort runs per candidate.
    super::merge::order_by_impact(&mut search, impacts);
    // Search strictly below the witness size (Lemma 6 already proves a
    // set of that size exists); otherwise everything up to the whole
    // search space.
    let upper_exclusive = witness_len.unwrap_or(forced.len() + search.len() + 1);

    let mut budget_hit: Option<u64> = None;
    let mut found: Option<Vec<usize>> = None;
    'sizes: for total in forced.len()..upper_exclusive {
        let k = total - forced.len();
        if k > search.len() {
            break;
        }
        // Probability-based pruning (extension): if even the most
        // damaging total+1 removals cannot reach α, no Γ of this size
        // can satisfy condition (ii).
        if config.use_probability_bound
            && !is_answer(matrix.max_pr_after_removing(total + 1), alpha)
        {
            continue;
        }
        let budget = config.max_subsets;
        for_each_combination(search.len(), k, |combo| {
            stats.subsets_examined += 1;
            if let Some(max) = budget {
                if stats.subsets_examined > max {
                    budget_hit = Some(stats.subsets_examined);
                    return true;
                }
            }
            removal_list.clear();
            removal_list.extend_from_slice(&forced);
            removal_list.extend(combo.iter().map(|&s| search[s]));
            stats.prsq_evaluations += 1;
            // Condition (i): P − Γ still a non-answer.
            if !checker.is_answer(removal_list, alpha) {
                removal_list.push(cc);
                stats.prsq_evaluations += 1;
                // Condition (ii): P − Γ − {cc} becomes an answer.
                let becomes = checker.is_answer(removal_list, alpha);
                removal_list.pop();
                if becomes {
                    let mut gamma = removal_list.clone();
                    gamma.sort_unstable();
                    found = Some(gamma);
                    return true;
                }
            }
            false
        });
        if let Some(examined) = budget_hit {
            return Err(CrpError::BudgetExhausted { examined });
        }
        if found.is_some() {
            break 'sizes;
        }
    }
    Ok(CandidateSearch { found })
}

/// The serial FMCS driver with Lemma 6 witness propagation — stage 3 of
/// the pipeline. Dispatches to the candidate-parallel driver when the
/// configuration allows it (see module docs).
pub(crate) fn search(
    matrix: &DominanceMatrix,
    alpha: f64,
    config: &CpConfig,
    plan: RefinePlan<'_>,
    stats: &mut RunStats,
) -> Result<Vec<CauseRec>, CrpError> {
    let RefinePlan {
        forced_mask,
        excluded,
        mut done,
        mut results,
        complete,
        mut checker,
    } = plan;
    if complete {
        results.sort_by_key(|r| r.cand);
        return Ok(results);
    }

    // Candidate-level parallelism is exact only when candidates are
    // independent: Lemma 6 couples them through witnesses, and a global
    // subset budget couples them through the shared counter.
    if config.parallel_fmcs && !config.use_lemma6 && config.max_subsets.is_none() {
        return search_parallel(
            matrix,
            alpha,
            config,
            &forced_mask,
            &excluded,
            &done,
            results,
            stats,
        );
    }

    let n = matrix.candidates();
    let impacts = super::merge::impacts(matrix);
    let mut removal_list: Vec<usize> = Vec::with_capacity(n);
    let mut witness: Vec<Option<Vec<usize>>> = vec![None; n];
    for cc in 0..n {
        if done[cc] {
            continue;
        }
        let outcome = search_candidate(
            matrix,
            alpha,
            config,
            cc,
            &forced_mask,
            &excluded,
            &impacts,
            witness[cc].as_ref().map(|w| w.len()),
            &mut checker,
            &mut removal_list,
            stats,
        )?;

        let gamma = match outcome.found {
            Some(g) => Some(g),
            // Nothing strictly smaller than the witness: the witness set
            // is minimal (Algorithm 1, lines 23–24).
            None => witness[cc].take(),
        };
        done[cc] = true;
        let Some(gamma) = gamma else {
            continue; // not an actual cause
        };

        // Lemma 6: seed witnesses for the unprocessed members of Γ.
        if config.use_lemma6 {
            for &o in &gamma {
                if done[o] {
                    continue;
                }
                let better = witness[o].as_ref().is_none_or(|w| w.len() > gamma.len());
                if !better {
                    continue;
                }
                removal_list.clear();
                removal_list.extend(gamma.iter().copied().filter(|&g| g != o));
                removal_list.push(cc);
                stats.prsq_evaluations += 1;
                if !checker.is_answer(&removal_list, alpha) {
                    // (Γ−{o}) ∪ {cc} is a contingency set for o: condition
                    // (ii) holds because P−Γ−{cc} is an answer already.
                    let mut w: Vec<usize> = gamma.iter().copied().filter(|&g| g != o).collect();
                    w.push(cc);
                    w.sort_unstable();
                    witness[o] = Some(w);
                }
            }
        }

        results.push(CauseRec {
            cand: cc,
            counterfactual: gamma.is_empty(),
            gamma,
        });
    }

    results.sort_by_key(|r| r.cand);
    Ok(results)
}

/// Candidate-parallel FMCS: every open candidate searched concurrently.
///
/// Preconditions (checked by [`search`]): Lemma 6 off, no subset budget.
/// Per-candidate counters are folded in ascending candidate order, so
/// the aggregate [`RunStats`] equals the serial driver's exactly.
#[allow(clippy::too_many_arguments)]
fn search_parallel(
    matrix: &DominanceMatrix,
    alpha: f64,
    config: &CpConfig,
    forced_mask: &[bool],
    excluded: &[bool],
    done: &[bool],
    mut results: Vec<CauseRec>,
    stats: &mut RunStats,
) -> Result<Vec<CauseRec>, CrpError> {
    let n = matrix.candidates();
    let impacts = super::merge::impacts(matrix);
    // One evaluator for every worker: its O(|Cc|·L) precompute must not
    // be repeated per candidate (workers only read it).
    let shared_evaluator = (n >= INCREMENTAL_THRESHOLD).then(|| matrix.evaluator());
    let open: Vec<usize> = (0..n).filter(|&cc| !done[cc]).collect();
    let per_candidate: Vec<(usize, Option<Vec<usize>>, RunStats)> = open
        .par_iter()
        .map(|&cc| {
            let mut local_stats = RunStats::default();
            let mut checker = Checker::with_shared(matrix, shared_evaluator.as_ref());
            let mut removal_list: Vec<usize> = Vec::with_capacity(n);
            let outcome = search_candidate(
                matrix,
                alpha,
                config,
                cc,
                forced_mask,
                excluded,
                &impacts,
                None,
                &mut checker,
                &mut removal_list,
                &mut local_stats,
            )
            .expect("parallel FMCS runs without a budget");
            (cc, outcome.found, local_stats)
        })
        .collect();

    for (cc, found, local_stats) in per_candidate {
        stats.subsets_examined += local_stats.subsets_examined;
        stats.prsq_evaluations += local_stats.prsq_evaluations;
        if let Some(gamma) = found {
            results.push(CauseRec {
                cand: cc,
                counterfactual: gamma.is_empty(),
                gamma,
            });
        }
    }
    results.sort_by_key(|r| r.cand);
    Ok(results)
}
