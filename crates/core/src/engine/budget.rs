//! Plan execution budgets: wall deadlines, node-access and subset
//! limits with **cooperative cancellation** and a typed `Partial`
//! outcome.
//!
//! Responsibility computation is NP-hard in general (Meliou et al.),
//! so one adversarial request — a huge α-sweep, a candidate set whose
//! FMCS search space explodes — can monopolize the engine forever.
//! [`PlanLimits`] bounds a single
//! [`ExplainRequest`](super::ExplainRequest)'s execution:
//!
//! * **wall deadline** (`deadline_ms`) — measured from the moment the
//!   plan starts executing,
//! * **node accesses** (`max_node_accesses`) — R-tree nodes read by
//!   stage-1 traversals across the whole plan,
//! * **subset checks** (`max_subsets`) — FMCS candidate sets examined
//!   across the whole plan (a *plan-wide* ceiling, unlike
//!   [`CpConfig::max_subsets`](crate::CpConfig::max_subsets) which is
//!   per-explain).
//!
//! Enforcement is cooperative: the executor threads one shared
//! `Cancel` handle through its workers (via a scoped thread-local,
//! so rayon-spawned unit tasks see it too) and the hot loops poll it
//! at bounded intervals — before each task, at the refinement
//! entry, per FMCS candidate, and every [`CHECK_INTERVAL`] subset
//! checks. A tripped budget surfaces as [`CrpError::Partial`]
//! carrying a
//! [`PartialProgress`]: monotone counters of the work completed, never
//! a wrong or torn result. Finished tasks keep their real outcomes;
//! only the tasks the budget cut short report `Partial`.

use crate::error::CrpError;
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many FMCS subset checks may pass between two cancellation
/// polls — deadlines are honored within one such interval.
pub const CHECK_INTERVAL: u64 = 4096;

/// Per-request execution limits (all optional; `default()` is
/// unlimited). Attached to an
/// [`ExplainRequest`](super::ExplainRequest) via its `with_*` budget
/// builders; when several requests execute as one plan, the
/// most-restrictive limit of each kind applies to the whole plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanLimits {
    /// Wall-clock deadline in milliseconds from plan start.
    pub deadline_ms: Option<u64>,
    /// Ceiling on R-tree node accesses across the plan.
    pub max_node_accesses: Option<u64>,
    /// Ceiling on FMCS subset checks across the plan.
    pub max_subsets: Option<u64>,
}

impl PlanLimits {
    /// True when no limit is set — the executor skips all polling.
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ms.is_none() && self.max_node_accesses.is_none() && self.max_subsets.is_none()
    }

    /// The most restrictive combination of two limit sets (used when
    /// several requests join one plan).
    pub fn merge_min(self, other: PlanLimits) -> PlanLimits {
        fn min_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        PlanLimits {
            deadline_ms: min_opt(self.deadline_ms, other.deadline_ms),
            max_node_accesses: min_opt(self.max_node_accesses, other.max_node_accesses),
            max_subsets: min_opt(self.max_subsets, other.max_subsets),
        }
    }
}

/// Which limit stopped a budgeted plan first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The wall deadline passed.
    DeadlineExceeded,
    /// The node-access ceiling was reached.
    NodeAccessBudget,
    /// The subset-check ceiling was reached.
    SubsetBudget,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::DeadlineExceeded => write!(f, "wall deadline exceeded"),
            StopReason::NodeAccessBudget => write!(f, "node-access budget exhausted"),
            StopReason::SubsetBudget => write!(f, "subset-check budget exhausted"),
        }
    }
}

/// Monotone progress counters carried by a
/// [`CrpError::Partial`] outcome: how much of
/// the plan completed before the budget tripped. Counters only grow as
/// a plan runs, so a larger budget on the same workload never reports
/// less progress.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialProgress {
    /// Which limit tripped.
    pub reason: StopReason,
    /// Tasks in the whole plan.
    pub tasks_total: u64,
    /// Tasks that finished with a real outcome before the trip.
    pub tasks_completed: u64,
    /// R-tree node accesses charged so far.
    pub node_accesses: u64,
    /// FMCS subset checks charged so far.
    pub subsets_examined: u64,
    /// Wall milliseconds from plan start to the trip.
    pub elapsed_ms: u64,
}

impl fmt::Display for PartialProgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}/{} task(s) done, {} node access(es), {} subset check(s), {} ms",
            self.reason,
            self.tasks_completed,
            self.tasks_total,
            self.node_accesses,
            self.subsets_examined,
            self.elapsed_ms
        )
    }
}

const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_NODES: u8 = 2;
const TRIP_SUBSETS: u8 = 3;

/// The shared cancellation handle of one budgeted plan: the deadline
/// instant plus atomic usage counters. Workers charge work into it and
/// poll [`Cancel::check`]; the first poll past a limit latches the
/// stop reason so every subsequent poll reports the same `Partial`.
pub(crate) struct Cancel {
    started: Instant,
    deadline: Option<Instant>,
    max_nodes: Option<u64>,
    max_subsets: Option<u64>,
    tasks_total: u64,
    tasks_completed: AtomicU64,
    nodes: AtomicU64,
    subsets: AtomicU64,
    tripped: AtomicU8,
}

impl Cancel {
    /// A handle for `limits`, or `None` when nothing is limited (the
    /// executor then skips all polling).
    pub(crate) fn new(limits: PlanLimits, tasks_total: u64) -> Option<Arc<Cancel>> {
        if limits.is_unlimited() {
            return None;
        }
        let started = Instant::now();
        Some(Arc::new(Cancel {
            started,
            deadline: limits
                .deadline_ms
                .map(|ms| started + Duration::from_millis(ms)),
            max_nodes: limits.max_node_accesses,
            max_subsets: limits.max_subsets,
            tasks_total,
            tasks_completed: AtomicU64::new(0),
            nodes: AtomicU64::new(0),
            subsets: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
        }))
    }

    pub(crate) fn charge_nodes(&self, n: u64) {
        if n > 0 {
            self.nodes.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub(crate) fn charge_subsets(&self, n: u64) {
        if n > 0 {
            self.subsets.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub(crate) fn task_completed(&self) {
        self.tasks_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Polls every limit; `Err(Partial)` once any has tripped. The trip
    /// latches: later polls keep failing with the same reason.
    pub(crate) fn check(&self) -> Result<(), CrpError> {
        let tripped = match self.tripped.load(Ordering::Relaxed) {
            TRIP_NONE => {
                let hit = if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    TRIP_DEADLINE
                } else if self
                    .max_nodes
                    .is_some_and(|max| self.nodes.load(Ordering::Relaxed) > max)
                {
                    TRIP_NODES
                } else if self
                    .max_subsets
                    .is_some_and(|max| self.subsets.load(Ordering::Relaxed) > max)
                {
                    TRIP_SUBSETS
                } else {
                    return Ok(());
                };
                // First writer wins; a concurrent racer's reason is as
                // valid as ours, so keep whichever latched.
                let _ = self.tripped.compare_exchange(
                    TRIP_NONE,
                    hit,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                self.tripped.load(Ordering::Relaxed)
            }
            hit => hit,
        };
        let reason = match tripped {
            TRIP_DEADLINE => StopReason::DeadlineExceeded,
            TRIP_NODES => StopReason::NodeAccessBudget,
            _ => StopReason::SubsetBudget,
        };
        Err(CrpError::Partial(Box::new(PartialProgress {
            reason,
            tasks_total: self.tasks_total,
            tasks_completed: self.tasks_completed.load(Ordering::Relaxed),
            node_accesses: self.nodes.load(Ordering::Relaxed),
            subsets_examined: self.subsets.load(Ordering::Relaxed),
            elapsed_ms: self.started.elapsed().as_millis() as u64,
        })))
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Arc<Cancel>>> = const { RefCell::new(None) };
}

/// Runs `f` with `cancel` installed as this thread's active budget
/// handle (restored afterwards, panic included). The executor wraps
/// each unit/per-call task body in this — *inside* the rayon worker —
/// so the deep pipeline and FMCS loops can poll without new
/// parameters on every seam.
pub(crate) fn with_cancel<R>(cancel: Option<&Arc<Cancel>>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<Cancel>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.with(|slot| *slot.borrow_mut() = self.0.take());
        }
    }
    let previous = ACTIVE.with(|slot| slot.replace(cancel.cloned()));
    let _restore = Restore(previous);
    f()
}

/// The budget handle installed on this thread, if any.
pub(crate) fn active() -> Option<Arc<Cancel>> {
    ACTIVE.with(|slot| slot.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_limits_make_no_handle() {
        assert!(PlanLimits::default().is_unlimited());
        assert!(Cancel::new(PlanLimits::default(), 3).is_none());
    }

    #[test]
    fn merge_min_takes_the_most_restrictive_of_each_kind() {
        let a = PlanLimits {
            deadline_ms: Some(100),
            max_node_accesses: None,
            max_subsets: Some(50),
        };
        let b = PlanLimits {
            deadline_ms: Some(40),
            max_node_accesses: Some(9),
            max_subsets: None,
        };
        let m = a.merge_min(b);
        assert_eq!(m.deadline_ms, Some(40));
        assert_eq!(m.max_node_accesses, Some(9));
        assert_eq!(m.max_subsets, Some(50));
    }

    #[test]
    fn subset_budget_trips_latch_and_report_progress() {
        let cancel = Cancel::new(
            PlanLimits {
                max_subsets: Some(10),
                ..PlanLimits::default()
            },
            2,
        )
        .unwrap();
        cancel.charge_subsets(10);
        assert!(cancel.check().is_ok(), "at the ceiling is still fine");
        cancel.charge_subsets(1);
        cancel.task_completed();
        let err = cancel.check().unwrap_err();
        let CrpError::Partial(progress) = err else {
            panic!("expected Partial, got {err}");
        };
        assert_eq!(progress.reason, StopReason::SubsetBudget);
        assert_eq!(progress.subsets_examined, 11);
        assert_eq!(progress.tasks_completed, 1);
        assert_eq!(progress.tasks_total, 2);
        // Latched: the deadline never tripping doesn't clear it.
        assert!(matches!(
            cancel.check().unwrap_err(),
            CrpError::Partial(p) if p.reason == StopReason::SubsetBudget
        ));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let cancel = Cancel::new(
            PlanLimits {
                deadline_ms: Some(0),
                ..PlanLimits::default()
            },
            1,
        )
        .unwrap();
        assert!(matches!(
            cancel.check().unwrap_err(),
            CrpError::Partial(p) if p.reason == StopReason::DeadlineExceeded
        ));
    }

    #[test]
    fn scoped_handle_is_visible_then_restored() {
        assert!(active().is_none());
        let cancel = Cancel::new(
            PlanLimits {
                max_node_accesses: Some(5),
                ..PlanLimits::default()
            },
            1,
        )
        .unwrap();
        with_cancel(Some(&cancel), || {
            assert!(active().is_some());
            with_cancel(None, || assert!(active().is_none()));
            assert!(active().is_some());
        });
        assert!(active().is_none());
    }
}
