//! Epoch-snapshot MVCC over an explain session: any number of reader
//! threads run the full filter → refine → FMCS pipeline against a
//! **pinned, immutable epoch snapshot** while a single writer applies
//! the next update batch and publishes it atomically.
//!
//! ## Architecture
//!
//! * The **writer** owns the authoritative mutable engine behind a
//!   mutex. [`MvccEngine::apply_batch`] applies a whole batch, then
//!   [forks](super::ExplainEngine::fork) an immutable snapshot of the
//!   post-batch state — dataset view, built R-trees (the eagerly
//!   re-frozen packed images are shared zero-copy through their `Arc`s)
//!   and a fresh cache generation — and publishes it.
//! * **Publication** is `ArcSwap`-style: the current snapshot lives in
//!   an `RwLock<Arc<_>>` whose lock scope is a pointer clone (readers)
//!   or a pointer store (writer) — readers never block behind a batch,
//!   and the writer never waits for in-flight explains to drain.
//! * A bounded **epoch ring** retains recent snapshots so sessions can
//!   pin a specific epoch ([`MvccEngine::pin_at`]); when the ring
//!   overflows, the oldest snapshot is retired — its memory is freed
//!   when the last reader still holding its `Arc` drops it.
//!
//! Readers can never observe a torn epoch: a snapshot is forked only
//! after its whole batch applied, so every published epoch is a batch
//! boundary. Explains against a pinned snapshot are bit-identical
//! (outcome *and* `stats.query`) to a fresh serial engine replayed to
//! that epoch — incremental R*-tree patching is deterministic, so the
//! forked trees equal the replayed trees node for node; the concurrency
//! stress suite pins this across engines, workloads and shard counts.
//!
//! Durability (write-ahead logging of update batches + snapshot
//! manifests) composes on top: see `crp_data::wal` and the `crp` CLI's
//! session assembly, which log a batch before handing it to
//! [`MvccEngine::apply_batch`].

use super::session::ExplainSession;
use super::{ExplainEngine, ShardedExplainEngine};
use crate::error::CrpError;
use crp_uncertain::{Epoch, PdfObject, UncertainDataset, UncertainObject, Update};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

/// What the MVCC session needs from an engine: single-writer update
/// application plus an immutable snapshot fork for readers. Implemented
/// by both [`ExplainEngine`] and [`ShardedExplainEngine`].
pub trait SnapshotEngine: ExplainSession + Send + Sync {
    /// Forks an immutable reader snapshot of the current state.
    fn fork_snapshot(&self) -> Self
    where
        Self: Sized;

    /// Applies one discrete-sample update.
    fn apply_update(&mut self, update: Update<UncertainObject>) -> Result<Epoch, CrpError>;

    /// Applies one continuous-pdf update.
    fn apply_pdf_update(&mut self, update: Update<PdfObject>) -> Result<Epoch, CrpError>;

    /// The discrete dataset this session serves, `None` for a
    /// continuous-pdf session. Durable sessions use this to validate a
    /// batch against the published state before logging it (the WAL
    /// grammar is discrete-only).
    fn discrete_dataset(&self) -> Option<&UncertainDataset>;
}

impl SnapshotEngine for ExplainEngine {
    fn fork_snapshot(&self) -> Self {
        self.fork()
    }

    fn apply_update(&mut self, update: Update<UncertainObject>) -> Result<Epoch, CrpError> {
        self.apply(update)
    }

    fn apply_pdf_update(&mut self, update: Update<PdfObject>) -> Result<Epoch, CrpError> {
        self.apply_pdf(update)
    }

    fn discrete_dataset(&self) -> Option<&UncertainDataset> {
        if self.pdf_dataset().is_some() {
            None
        } else {
            Some(self.dataset())
        }
    }
}

impl SnapshotEngine for ShardedExplainEngine {
    fn fork_snapshot(&self) -> Self {
        self.fork()
    }

    fn apply_update(&mut self, update: Update<UncertainObject>) -> Result<Epoch, CrpError> {
        self.apply(update)
    }

    fn apply_pdf_update(&mut self, update: Update<PdfObject>) -> Result<Epoch, CrpError> {
        self.apply_pdf(update)
    }

    fn discrete_dataset(&self) -> Option<&UncertainDataset> {
        if self.pdf_dataset().is_some() {
            None
        } else {
            Some(self.dataset())
        }
    }
}

/// One published epoch: an immutable engine fork pinned to the dataset
/// version it was taken at. Readers explain through
/// [`EpochSnapshot::engine`] (an [`ExplainSession`]); the snapshot
/// stays alive — and bit-stable — for as long as any reader holds its
/// `Arc`, regardless of how far the writer has advanced.
pub struct EpochSnapshot<E> {
    epoch: Epoch,
    engine: E,
}

impl<E> EpochSnapshot<E> {
    /// The dataset version this snapshot serves.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The immutable engine fork — explain through its
    /// [`ExplainSession`] surface.
    pub fn engine(&self) -> &E {
        &self.engine
    }
}

/// Lifecycle counters of an MVCC session (see
/// [`MvccEngine::counters`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MvccCounters {
    /// Snapshots published so far, including the construction snapshot.
    pub published: u64,
    /// Snapshots evicted from the epoch ring (no longer pinnable by
    /// epoch; freed once their last reader drops them).
    pub retired: u64,
    /// Snapshots currently held by the ring.
    pub live: usize,
    /// The currently published epoch.
    pub epoch: Epoch,
}

/// The concurrent session: one writer, many lock-free readers over
/// epoch snapshots. See the [module docs](self).
pub struct MvccEngine<E> {
    /// The authoritative mutable engine — single writer by construction.
    writer: Mutex<E>,
    /// The currently published snapshot; lock scope is a pointer
    /// clone/store, never a computation.
    published: RwLock<Arc<EpochSnapshot<E>>>,
    /// Recent snapshots, newest last, bounded by `ring_capacity`.
    ring: Mutex<VecDeque<Arc<EpochSnapshot<E>>>>,
    ring_capacity: usize,
    published_count: AtomicU64,
    retired: AtomicU64,
}

impl<E: SnapshotEngine> MvccEngine<E> {
    /// Wraps an engine into an MVCC session, publishing its current
    /// state as the first snapshot. Default epoch-ring capacity is 8.
    pub fn new(engine: E) -> Self {
        Self::with_ring_capacity(engine, 8)
    }

    /// [`MvccEngine::new`] with an explicit epoch-ring capacity
    /// (clamped to ≥ 1 — the published snapshot always stays pinnable).
    pub fn with_ring_capacity(engine: E, capacity: usize) -> Self {
        let snapshot = Arc::new(EpochSnapshot {
            epoch: engine.epoch(),
            engine: engine.fork_snapshot(),
        });
        let mut ring = VecDeque::new();
        ring.push_back(Arc::clone(&snapshot));
        Self {
            writer: Mutex::new(engine),
            published: RwLock::new(snapshot),
            ring: Mutex::new(ring),
            ring_capacity: capacity.max(1),
            published_count: AtomicU64::new(1),
            retired: AtomicU64::new(0),
        }
    }

    /// Pins the currently published snapshot: a reader holding the
    /// returned `Arc` keeps explaining against that epoch no matter how
    /// many batches the writer publishes meanwhile.
    ///
    /// Poison-tolerant: the lock's critical sections are pure pointer
    /// clones/stores, so a thread that panicked while holding one left
    /// the pointer intact — readers keep serving the last complete
    /// epoch even after a writer panic poisoned the session
    /// (see [`MvccEngine::is_poisoned`]).
    pub fn pin(&self) -> Arc<EpochSnapshot<E>> {
        Arc::clone(
            &self
                .published
                .read()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Pins a specific epoch from the ring, `None` when it was never
    /// published at a batch boundary or has already been retired.
    /// Poison-tolerant like [`MvccEngine::pin`].
    pub fn pin_at(&self, epoch: Epoch) -> Option<Arc<EpochSnapshot<E>>> {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|s| s.epoch == epoch)
            .cloned()
    }

    /// Whether a panicked batch has poisoned the writer. Readers are
    /// unaffected either way; write entry points return
    /// [`CrpError::WriterPoisoned`] instead of publishing from a state
    /// that may hold a half-applied batch.
    pub fn is_poisoned(&self) -> bool {
        self.writer.is_poisoned()
    }

    /// The writer mutex as a typed error instead of a panic: a
    /// poisoned guard means some earlier batch panicked mid-apply, so
    /// the authoritative engine may hold a torn prefix — nothing from
    /// it may be published again.
    fn writer_guard(&self) -> Result<MutexGuard<'_, E>, CrpError> {
        self.writer.lock().map_err(|_| CrpError::WriterPoisoned)
    }

    /// Applies one discrete update batch and publishes the post-batch
    /// epoch atomically. Readers keep serving the previous snapshot
    /// until the new one is fully built; they never see a partially
    /// applied batch. On a mid-batch error nothing is published (the
    /// writer state may have absorbed the batch's valid prefix; callers
    /// that need all-or-nothing batches should validate first — the WAL
    /// layer does, by replaying only committed batches). Returns
    /// [`CrpError::WriterPoisoned`] once a previous batch panicked.
    pub fn apply_batch(
        &self,
        updates: impl IntoIterator<Item = Update<UncertainObject>>,
    ) -> Result<Epoch, CrpError> {
        let mut writer = self.writer_guard()?;
        for update in updates {
            writer.apply_update(update)?;
        }
        Ok(self.publish(&writer))
    }

    /// [`MvccEngine::apply_batch`] for continuous-pdf sessions.
    pub fn apply_pdf_batch(
        &self,
        updates: impl IntoIterator<Item = Update<PdfObject>>,
    ) -> Result<Epoch, CrpError> {
        let mut writer = self.writer_guard()?;
        for update in updates {
            writer.apply_pdf_update(update)?;
        }
        Ok(self.publish(&writer))
    }

    /// Forks and publishes the writer's current state. The expensive
    /// part (the fork) runs while readers still serve the old snapshot;
    /// only the pointer swap takes the publication write lock.
    fn publish(&self, writer: &E) -> Epoch {
        let snapshot = Arc::new(EpochSnapshot {
            epoch: writer.epoch(),
            engine: writer.fork_snapshot(),
        });
        {
            let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
            ring.push_back(Arc::clone(&snapshot));
            while ring.len() > self.ring_capacity {
                ring.pop_front();
                self.retired.fetch_add(1, Ordering::Relaxed);
            }
        }
        let epoch = snapshot.epoch;
        *self
            .published
            .write()
            .unwrap_or_else(PoisonError::into_inner) = snapshot;
        self.published_count.fetch_add(1, Ordering::Relaxed);
        epoch
    }

    /// Current lifecycle counters.
    pub fn counters(&self) -> MvccCounters {
        MvccCounters {
            published: self.published_count.load(Ordering::Relaxed),
            retired: self.retired.load(Ordering::Relaxed),
            live: self
                .ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
            epoch: self.pin().epoch(),
        }
    }

    /// Runs `f` against the authoritative writer engine — for session
    /// assembly tasks (replaying a recovered WAL tail, draining
    /// accumulated I/O) that must not race the update stream. Readers
    /// are unaffected: they hold snapshots. Returns
    /// [`CrpError::WriterPoisoned`] once a previous batch panicked.
    pub fn with_writer<R>(&self, f: impl FnOnce(&mut E) -> R) -> Result<R, CrpError> {
        let mut guard = self.writer_guard()?;
        Ok(f(&mut guard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crp_geom::Point;
    use crp_uncertain::{ObjectId, UncertainDataset, UncertainObject};

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    fn fixture() -> UncertainDataset {
        UncertainDataset::from_objects(vec![
            UncertainObject::certain(ObjectId(0), pt(10.0, 10.0)),
            UncertainObject::certain(ObjectId(1), pt(7.0, 7.0)),
            UncertainObject::with_equal_probs(ObjectId(2), vec![pt(8.0, 9.0), pt(30.0, 30.0)])
                .unwrap(),
            UncertainObject::certain(ObjectId(3), pt(40.0, 40.0)),
        ])
        .unwrap()
    }

    #[test]
    fn pinned_snapshots_survive_writer_batches() {
        let engine = ExplainEngine::new(fixture(), EngineConfig::with_alpha(0.75)).unwrap();
        let mvcc = MvccEngine::new(engine);
        let q = pt(5.0, 5.0);

        let pinned = mvcc.pin();
        assert_eq!(pinned.epoch(), Epoch(4), "construction pushed four objects");
        let before = pinned.engine().explain(&q, ObjectId(0)).unwrap();

        // A batch lands: object 9 becomes a new dominator.
        let e = mvcc
            .apply_batch(vec![Update::Insert(UncertainObject::certain(
                ObjectId(9),
                pt(6.5, 6.5),
            ))])
            .unwrap();
        assert_eq!(e, Epoch(5));

        // The old pin still answers at its epoch — bit-identical to its
        // pre-batch result — while a fresh pin sees the new object.
        let replay = pinned.engine().explain(&q, ObjectId(0)).unwrap();
        assert_eq!(replay, before);
        assert!(replay.cause(ObjectId(9)).is_none());
        let fresh = mvcc.pin();
        assert_eq!(fresh.epoch(), Epoch(5));
        assert!(fresh
            .engine()
            .explain(&q, ObjectId(0))
            .unwrap()
            .cause(ObjectId(9))
            .is_some());

        // Both epochs stay pinnable through the ring.
        assert_eq!(mvcc.pin_at(Epoch(4)).unwrap().epoch(), Epoch(4));
        assert_eq!(mvcc.pin_at(Epoch(5)).unwrap().epoch(), Epoch(5));
        assert!(mvcc.pin_at(Epoch(99)).is_none());
        let counters = mvcc.counters();
        assert_eq!(counters.published, 2);
        assert_eq!(counters.live, 2);
        assert_eq!(counters.retired, 0);
        assert_eq!(counters.epoch, Epoch(5));
    }

    #[test]
    fn ring_overflow_retires_oldest_epochs() {
        let engine = ExplainEngine::new(fixture(), EngineConfig::with_alpha(0.75)).unwrap();
        let mvcc = MvccEngine::with_ring_capacity(engine, 2);
        // Pin the construction snapshot, then push it out of the ring.
        let oldest = mvcc.pin();
        for i in 0..3u32 {
            mvcc.apply_batch(vec![Update::Insert(UncertainObject::certain(
                ObjectId(10 + i),
                pt(50.0 + i as f64, 50.0),
            ))])
            .unwrap();
        }
        let counters = mvcc.counters();
        assert_eq!(counters.published, 4);
        assert_eq!(counters.live, 2);
        assert_eq!(counters.retired, 2);
        // The retired epoch is no longer pinnable from the ring…
        assert!(mvcc.pin_at(Epoch(4)).is_none());
        // …but the reader that pinned it earlier still owns it.
        assert_eq!(oldest.epoch(), Epoch(4));
        assert_eq!(oldest.engine().dataset().len(), 4);
    }

    #[test]
    fn readers_keep_serving_after_a_writer_panic_poisons_the_session() {
        let engine = ExplainEngine::new(fixture(), EngineConfig::with_alpha(0.75)).unwrap();
        let mvcc = MvccEngine::new(engine);
        let q = pt(5.0, 5.0);
        let pinned = mvcc.pin();
        let before = pinned.engine().explain(&q, ObjectId(0)).unwrap();

        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Result<(), CrpError> =
                mvcc.with_writer(|_| panic!("simulated writer crash mid-batch"));
        }));
        assert!(panicked.is_err());
        assert!(mvcc.is_poisoned());

        // Write entry points fail typed, not by panicking the caller.
        assert_eq!(
            mvcc.apply_batch(vec![Update::Insert(UncertainObject::certain(
                ObjectId(9),
                pt(6.5, 6.5),
            ))])
            .unwrap_err(),
            CrpError::WriterPoisoned
        );
        assert_eq!(
            mvcc.with_writer(|_| ()).unwrap_err(),
            CrpError::WriterPoisoned
        );

        // Readers are untouched: old pins replay bit-identically, fresh
        // pins still resolve, the ring still serves epochs, counters
        // still read.
        assert_eq!(pinned.engine().explain(&q, ObjectId(0)).unwrap(), before);
        let fresh = mvcc.pin();
        assert_eq!(fresh.epoch(), Epoch(4));
        assert_eq!(fresh.engine().explain(&q, ObjectId(0)).unwrap(), before);
        assert_eq!(mvcc.pin_at(Epoch(4)).unwrap().epoch(), Epoch(4));
        assert_eq!(mvcc.counters().published, 1);
    }

    #[test]
    fn mid_batch_error_publishes_nothing() {
        let engine = ExplainEngine::new(fixture(), EngineConfig::with_alpha(0.75)).unwrap();
        let mvcc = MvccEngine::new(engine);
        let err = mvcc
            .apply_batch(vec![
                Update::Insert(UncertainObject::certain(ObjectId(9), pt(6.5, 6.5))),
                Update::Delete(ObjectId(42)), // unknown id: the batch fails here
            ])
            .unwrap_err();
        assert_eq!(err, CrpError::UnknownObject(ObjectId(42)));
        // Readers still serve the last complete epoch.
        assert_eq!(mvcc.pin().epoch(), Epoch(4));
        assert_eq!(mvcc.counters().published, 1);
    }
}
