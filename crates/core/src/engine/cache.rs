//! The **explanation cache** of a live engine session: memoised
//! stage-1 dominance rows and full outcomes, with conservative
//! *geometric* invalidation under dataset updates.
//!
//! Two maps, two payoffs:
//!
//! * **Row entries**, keyed `(an, q)` — the stage-1 output (candidate
//!   ids + dominance matrix) that every α and every lemma configuration
//!   shares. An α-sweep over the same non-answer re-runs only the
//!   α-dependent refinement stages; the R-tree traversal and matrix
//!   build are paid once. This subsumes the ROADMAP "memoise
//!   dominance-probability rows per (an, q)" item.
//! * **Outcome entries**, keyed `(an, q, α, strategy, CpConfig)` — the
//!   finished result (successes and `NotANonAnswer` classifications),
//!   so a repeated identical request costs a hash lookup.
//!
//! ## Invalidation
//!
//! Every entry stores the non-answer's **candidate region**: the
//! bounding box of its stage-1 filter windows (see
//! [`super::filter::candidate_region`]). By Lemmas 1–2 an object whose
//! MBR misses that box has zero dominance probability w.r.t. every
//! sample of `an`, so it cannot appear in the candidate set, the
//! matrix, or the outcome. An update therefore evicts exactly the
//! entries that could have changed:
//!
//! * entries whose `an` **is** the touched object (its samples, and
//!   with them the windows themselves, may have changed), and
//! * entries whose candidate region intersects the touched object's
//!   old or new MBR.
//!
//! Certain-data strategies additionally depend on the dataset being
//! *globally* certain; their entries are flagged and flushed whenever
//! an update could change that property.
//!
//! The cached values are exactly what the pipeline computed, and the
//! invalidation is a superset of the entries an update can affect, so
//! serving from the cache is result-identical to recomputation — the
//! engine-agreement property tests pin this across random interleaved
//! update/explain sequences.

use super::pipeline::{self, StageOne};
use super::{filter, ExplainStrategy};
use crate::config::CpConfig;
use crate::error::CrpError;
use crate::matrix::Scratch;
use crate::types::{CrpOutcome, RunStats};
use crp_geom::{HyperRect, Point};
use crp_rtree::{AtomicQueryStats, QueryStats};
use crp_uncertain::{ObjectId, PdfDataset, UncertainDataset};
use std::collections::{HashMap, HashSet};
use std::sync::{Condvar, Mutex, RwLock};

/// Hash key for a query point: exact f64 bit patterns (explanations are
/// deterministic functions of the exact coordinates, so bitwise
/// equality is the right notion — no tolerance).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct PointKey(Vec<u64>);

impl PointKey {
    fn of(q: &Point) -> Self {
        Self(q.coords().iter().map(|c| c.to_bits()).collect())
    }
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct RowKey {
    an: ObjectId,
    q: PointKey,
}

/// A cached stage-1 computation for one `(an, q)` pair.
#[derive(Clone, Debug)]
pub(crate) struct CachedRows {
    /// Bounding box of the filter windows — the invalidation key.
    pub region: HyperRect,
    /// Candidate ids + dominance matrix, in pipeline order.
    pub stage1: StageOne,
    /// The traversal cost the original computation paid, replayed into
    /// served outcomes so their stats equal a fresh computation's.
    pub query: QueryStats,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct OutcomeKey {
    an: ObjectId,
    q: PointKey,
    /// `α` as exact bits (outcomes of certain-data strategies do not
    /// depend on it, but keying on it stays correct — just finer).
    alpha: u64,
    strategy: ExplainStrategy,
    cp: CpConfig,
}

#[derive(Clone, Debug)]
struct OutcomeEntry {
    region: HyperRect,
    /// Entry was produced by a certain-data strategy, whose validity
    /// additionally requires the dataset to stay globally certain.
    certain: bool,
    result: Result<CrpOutcome, CrpError>,
}

/// Soft capacity bounds: past these, storing a new entry first drops an
/// arbitrary existing one (counted as an eviction). Correctness never
/// depends on residency, so arbitrary-victim is fine and keeps the maps
/// O(1) with zero bookkeeping on the hit path.
const MAX_ROWS: usize = 4_096;
const MAX_OUTCOMES: usize = 16_384;

/// The session cache. Interior-mutable (`RwLock`) so the engine's
/// `&self` explain paths — including rayon-parallel batches — can share
/// it; lock scope is a hash lookup or insert, never a computation.
#[derive(Debug, Default)]
pub(crate) struct ExplanationCache {
    rows: RwLock<HashMap<RowKey, CachedRows>>,
    outcomes: RwLock<HashMap<OutcomeKey, OutcomeEntry>>,
    /// Hit / miss / eviction counters (only the `cache_*` fields are
    /// used), folded into the session totals by the engine.
    stats: AtomicQueryStats,
    /// Single-flight registry: outcome keys currently being computed.
    /// Concurrent explains for the same `(an, q, α, cp)` after an
    /// invalidation coalesce on one leader instead of stampeding the
    /// pipeline (see [`ExplanationCache::coalesce_cp`]).
    inflight: Inflight,
}

/// The in-flight key set plus its wake-up signal. The mutex is held
/// only for set membership checks — never across a computation.
#[derive(Debug, Default)]
struct Inflight {
    keys: Mutex<HashSet<OutcomeKey>>,
    cv: Condvar,
}

/// Removes the led key and wakes the waiters when the leader's
/// computation finishes — on the success path *and* on unwind, so a
/// panicking leader cannot strand its followers.
struct InflightGuard<'a> {
    cache: &'a ExplanationCache,
    key: OutcomeKey,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut keys = self.cache.inflight.keys.lock().expect("in-flight lock");
        keys.remove(&self.key);
        self.cache.inflight.cv.notify_all();
    }
}

impl ExplanationCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current cache counters (only `cache_*` fields populated).
    pub fn stats(&self) -> QueryStats {
        self.stats.snapshot()
    }

    /// Drains the cache counters.
    pub fn take_stats(&self) -> QueryStats {
        self.stats.take()
    }

    /// Number of live (row, outcome) entries.
    pub fn len(&self) -> (usize, usize) {
        (
            self.rows.read().expect("cache lock").len(),
            self.outcomes.read().expect("cache lock").len(),
        )
    }

    fn bump(&self, hits: u64, misses: u64, evictions: u64) {
        self.stats.absorb(QueryStats {
            cache_hits: hits,
            cache_misses: misses,
            cache_evictions: evictions,
            ..Default::default()
        });
    }

    /// Looks up a finished outcome. Counts one hit or one miss — the
    /// per-explain accounting entry point (the row lookup below only
    /// adds a hit when it saves the traversal, so one explain call
    /// counts at most one miss).
    pub fn lookup_outcome(
        &self,
        an: ObjectId,
        q: &Point,
        alpha: f64,
        strategy: ExplainStrategy,
        cp: &CpConfig,
    ) -> Option<Result<CrpOutcome, CrpError>> {
        let key = OutcomeKey {
            an,
            q: PointKey::of(q),
            alpha: alpha.to_bits(),
            strategy,
            cp: *cp,
        };
        let found = self
            .outcomes
            .read()
            .expect("cache lock")
            .get(&key)
            .map(|e| e.result.clone());
        match found {
            Some(result) => {
                self.bump(1, 0, 0);
                Some(result)
            }
            None => {
                self.bump(0, 1, 0);
                None
            }
        }
    }

    /// Stores a finished outcome. Only deterministic, region-dependent
    /// results are kept: successes and `NotANonAnswer` classifications;
    /// everything else (unknown ids, budget exhaustion, …) is cheap or
    /// non-geometric to invalidate and is recomputed instead.
    #[allow(clippy::too_many_arguments)]
    pub fn store_outcome(
        &self,
        an: ObjectId,
        q: &Point,
        alpha: f64,
        strategy: ExplainStrategy,
        cp: &CpConfig,
        region: HyperRect,
        certain: bool,
        result: &Result<CrpOutcome, CrpError>,
    ) {
        if !matches!(result, Ok(_) | Err(CrpError::NotANonAnswer { .. })) {
            return;
        }
        let key = OutcomeKey {
            an,
            q: PointKey::of(q),
            alpha: alpha.to_bits(),
            strategy,
            cp: *cp,
        };
        let mut map = self.outcomes.write().expect("cache lock");
        if map.len() >= MAX_OUTCOMES && !map.contains_key(&key) {
            if let Some(victim) = map.keys().next().cloned() {
                map.remove(&victim);
                self.bump(0, 0, 1);
            }
        }
        map.insert(
            key,
            OutcomeEntry {
                region,
                certain,
                result: result.clone(),
            },
        );
    }

    /// Looks up cached stage-1 rows. Counts a hit when found (the
    /// traversal and matrix build are saved); misses were already
    /// counted by the outcome lookup of the same explain call.
    pub fn lookup_rows(&self, an: ObjectId, q: &Point) -> Option<CachedRows> {
        let key = RowKey {
            an,
            q: PointKey::of(q),
        };
        let found = self.rows.read().expect("cache lock").get(&key).cloned();
        if found.is_some() {
            self.bump(1, 0, 0);
        }
        found
    }

    /// Stores stage-1 rows for `(an, q)`.
    pub fn store_rows(&self, an: ObjectId, q: &Point, rows: CachedRows) {
        let key = RowKey {
            an,
            q: PointKey::of(q),
        };
        let mut map = self.rows.write().expect("cache lock");
        if map.len() >= MAX_ROWS && !map.contains_key(&key) {
            if let Some(victim) = map.keys().next().cloned() {
                map.remove(&victim);
                self.bump(0, 0, 1);
            }
        }
        map.insert(key, rows);
    }

    /// Single-flight guard over one CP outcome computation: when
    /// several threads miss the outcome layer for the **same**
    /// `(an, q, α, cp)` — the first-reader stampede after an
    /// invalidation bump — exactly one becomes the leader and runs
    /// `compute`; the rest block until it finishes, then serve the
    /// leader's freshly stored outcome from the cache (counted as a
    /// hit, like any other outcome-layer serve). When the leader's
    /// result was not cacheable (budget exhaustion, unknown id, …) or
    /// was invalidated again before the waiters woke, the waiters
    /// compete to lead a recomputation — correctness never depends on
    /// coalescing, it only collapses duplicate work.
    pub fn coalesce_cp(
        &self,
        an: ObjectId,
        q: &Point,
        alpha: f64,
        cp: &CpConfig,
        trace: &mut ServeTrace,
        compute: impl FnOnce(&mut ServeTrace) -> Result<CrpOutcome, CrpError>,
    ) -> Result<CrpOutcome, CrpError> {
        let key = OutcomeKey {
            an,
            q: PointKey::of(q),
            alpha: alpha.to_bits(),
            strategy: ExplainStrategy::Cp,
            cp: *cp,
        };
        loop {
            let lead = {
                let mut keys = self.inflight.keys.lock().expect("in-flight lock");
                if keys.contains(&key) {
                    // A leader is already computing this exact explain:
                    // wait it out instead of recomputing, then re-check
                    // the outcome layer below.
                    let _woken = self
                        .inflight
                        .cv
                        .wait_while(keys, |k| k.contains(&key))
                        .expect("in-flight lock");
                    false
                } else {
                    keys.insert(key.clone());
                    true
                }
            };
            if lead {
                break;
            }
            if let Some(hit) = self.lookup_outcome(an, q, alpha, ExplainStrategy::Cp, cp) {
                trace.outcome_hit = true;
                return hit;
            }
        }
        let _done = InflightGuard { cache: self, key };
        compute(trace)
    }

    /// Evicts everything an update to `touched` (old and/or new MBR in
    /// `regions`) could have changed; `flush_certain` additionally
    /// drops every certain-strategy outcome (set when the update could
    /// change the dataset's global certainty).
    pub fn invalidate(&self, touched: ObjectId, regions: &[HyperRect], flush_certain: bool) {
        let mut evicted = 0u64;
        {
            let mut rows = self.rows.write().expect("cache lock");
            rows.retain(|key, entry| {
                let keep =
                    key.an != touched && !regions.iter().any(|r| r.intersects(&entry.region));
                if !keep {
                    evicted += 1;
                }
                keep
            });
        }
        {
            let mut outcomes = self.outcomes.write().expect("cache lock");
            outcomes.retain(|key, entry| {
                let keep = key.an != touched
                    && !regions.iter().any(|r| r.intersects(&entry.region))
                    && !(flush_certain && entry.certain);
                if !keep {
                    evicted += 1;
                }
                keep
            });
        }
        if evicted > 0 {
            self.bump(0, 0, evicted);
        }
    }
}

/// How one CP explain was served — filled by [`serve_cp_discrete`] /
/// [`serve_cp_pdf`], read by the plan executor's counters. Per-call
/// entry points pass a throwaway.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ServeTrace {
    /// The finished outcome came straight from the outcome layer.
    pub outcome_hit: bool,
    /// Stage-1 rows came from the row layer (traversal saved).
    pub rows_hit: bool,
}

/// The **single seam** every indexed CP explain goes through — the
/// unsharded session, every shard fan-out, and the plan executor all
/// assemble the same cache-key/finish tuple here instead of
/// hand-rolling it per call site: outcome-layer lookup, input
/// validation, candidate-region derivation, then [`cached_cp_finish`].
///
/// `fresh` produces the stage-1 output (candidates + dominance matrix)
/// when neither cache layer can serve it; it receives the validated
/// dataset position of `an` and the [`RunStats`] to fold traversal
/// costs into.
#[allow(clippy::too_many_arguments)]
pub(crate) fn serve_cp_discrete(
    cache: &ExplanationCache,
    io: Option<&AtomicQueryStats>,
    ds: &UncertainDataset,
    q: &Point,
    an: ObjectId,
    alpha: f64,
    cp: &CpConfig,
    trace: &mut ServeTrace,
    scratch: &mut Scratch,
    fresh: impl FnOnce(usize, &mut RunStats) -> Result<StageOne, CrpError>,
) -> Result<CrpOutcome, CrpError> {
    if let Some(hit) = cache.lookup_outcome(an, q, alpha, ExplainStrategy::Cp, cp) {
        trace.outcome_hit = true;
        return hit;
    }
    let an_pos = pipeline::validate(ds, q, an, alpha)?;
    let region = filter::candidate_region(ds.object_at(an_pos), q);
    cache.coalesce_cp(an, q, alpha, cp, trace, |trace| {
        cached_cp_finish(
            cache,
            io,
            q,
            an,
            alpha,
            cp,
            region,
            trace,
            scratch,
            |stats| fresh(an_pos, stats),
        )
    })
}

/// [`serve_cp_discrete`] for continuous-pdf workloads; `fresh` receives
/// the per-quadrant filter windows of `(an, q)` instead of a dataset
/// position.
#[allow(clippy::too_many_arguments)]
pub(crate) fn serve_cp_pdf(
    cache: &ExplanationCache,
    io: Option<&AtomicQueryStats>,
    ds: &PdfDataset,
    q: &Point,
    an: ObjectId,
    alpha: f64,
    cp: &CpConfig,
    trace: &mut ServeTrace,
    scratch: &mut Scratch,
    fresh: impl FnOnce(&[HyperRect], &mut RunStats) -> Result<StageOne, CrpError>,
) -> Result<CrpOutcome, CrpError> {
    if let Some(hit) = cache.lookup_outcome(an, q, alpha, ExplainStrategy::Cp, cp) {
        trace.outcome_hit = true;
        return hit;
    }
    pipeline::validate_pdf(ds, an, alpha)?;
    let an_obj = ds.get(an).expect("validated above");
    let windows = crate::pdf::pdf_windows(q, an_obj.region());
    let region = filter::windows_region(&windows).expect("pdf windows are non-empty");
    cache.coalesce_cp(an, q, alpha, cp, trace, |trace| {
        cached_cp_finish(
            cache,
            io,
            q,
            an,
            alpha,
            cp,
            region,
            trace,
            scratch,
            |stats| fresh(&windows, stats),
        )
    })
}

/// The shared tail of every cached CP path — unsharded (discrete and
/// pdf), sharded, and planned: row-cache lookup (or a fresh stage 1 via
/// `fresh`), α-dependent refinement, and population of both cache
/// layers. One body, so the caching protocol — stats replay on hits,
/// cacheability of outcomes — cannot drift between workloads, engines,
/// or the plan executor.
///
/// `io`, when given, receives the freshly paid traversal cost (the
/// unsharded session's accumulator; sharded sessions account traversal
/// inside their shards and pass `None`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn cached_cp_finish(
    cache: &ExplanationCache,
    io: Option<&AtomicQueryStats>,
    q: &Point,
    an: ObjectId,
    alpha: f64,
    cp: &CpConfig,
    region: HyperRect,
    trace: &mut ServeTrace,
    scratch: &mut Scratch,
    fresh: impl FnOnce(&mut RunStats) -> Result<StageOne, CrpError>,
) -> Result<CrpOutcome, CrpError> {
    let mut stats = RunStats::default();
    let stage1 = match cache.lookup_rows(an, q) {
        Some(rows) => {
            trace.rows_hit = true;
            stats.query = rows.query;
            rows.stage1
        }
        None => {
            let stage1 = fresh(&mut stats)?;
            // Only freshly paid traversal enters the session totals.
            if let Some(io) = io {
                io.absorb(stats.query);
            }
            cache.store_rows(
                an,
                q,
                CachedRows {
                    region: region.clone(),
                    stage1: stage1.clone(),
                    query: stats.query,
                },
            );
            stage1
        }
    };
    let result = pipeline::finish(&stage1.matrix, alpha, cp, &mut stats, scratch, |c| {
        stage1.ids[c]
    })
    .map(|causes| CrpOutcome { causes, stats });
    cache.store_outcome(
        an,
        q,
        alpha,
        ExplainStrategy::Cp,
        cp,
        region,
        false,
        &result,
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DominanceMatrix;

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    fn rect(lo: (f64, f64), hi: (f64, f64)) -> HyperRect {
        HyperRect::new(pt(lo.0, lo.1), pt(hi.0, hi.1))
    }

    fn dummy_rows(region: HyperRect) -> CachedRows {
        CachedRows {
            region,
            stage1: StageOne {
                ids: vec![ObjectId(1)],
                matrix: DominanceMatrix::from_parts(vec![0.5], vec![1.0], 1),
            },
            query: QueryStats {
                node_accesses: 3,
                leaf_accesses: 1,
                ..Default::default()
            },
        }
    }

    fn dummy_outcome() -> Result<CrpOutcome, CrpError> {
        Ok(CrpOutcome::default())
    }

    #[test]
    fn outcome_roundtrip_counts_hits_and_misses() {
        let cache = ExplanationCache::new();
        let q = pt(5.0, 5.0);
        let cp = CpConfig::default();
        assert!(cache
            .lookup_outcome(ObjectId(0), &q, 0.5, ExplainStrategy::Cp, &cp)
            .is_none());
        cache.store_outcome(
            ObjectId(0),
            &q,
            0.5,
            ExplainStrategy::Cp,
            &cp,
            rect((0.0, 0.0), (5.0, 5.0)),
            false,
            &dummy_outcome(),
        );
        assert_eq!(
            cache.lookup_outcome(ObjectId(0), &q, 0.5, ExplainStrategy::Cp, &cp),
            Some(dummy_outcome())
        );
        // A different α is a different entry.
        assert!(cache
            .lookup_outcome(ObjectId(0), &q, 0.75, ExplainStrategy::Cp, &cp)
            .is_none());
        let stats = cache.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn non_cacheable_errors_are_skipped() {
        let cache = ExplanationCache::new();
        let q = pt(5.0, 5.0);
        let cp = CpConfig::default();
        for result in [
            Err(CrpError::UnknownObject(ObjectId(7))),
            Err(CrpError::BudgetExhausted { examined: 10 }),
            Err(CrpError::EmptyDataset),
        ] {
            cache.store_outcome(
                ObjectId(7),
                &q,
                0.5,
                ExplainStrategy::Cp,
                &cp,
                rect((0.0, 0.0), (5.0, 5.0)),
                false,
                &result,
            );
        }
        assert_eq!(cache.len().1, 0);
        // NotANonAnswer IS cached (it is a region-dependent result).
        cache.store_outcome(
            ObjectId(7),
            &q,
            0.5,
            ExplainStrategy::Cp,
            &cp,
            rect((0.0, 0.0), (5.0, 5.0)),
            false,
            &Err(CrpError::NotANonAnswer { prob: 0.9 }),
        );
        assert_eq!(cache.len().1, 1);
    }

    #[test]
    fn geometric_invalidation_is_selective() {
        let cache = ExplanationCache::new();
        let q = pt(5.0, 5.0);
        let cp = CpConfig::default();
        // Entry A: region near the origin. Entry B: region far away.
        cache.store_rows(ObjectId(0), &q, dummy_rows(rect((0.0, 0.0), (5.0, 5.0))));
        cache.store_rows(
            ObjectId(1),
            &q,
            dummy_rows(rect((50.0, 50.0), (60.0, 60.0))),
        );
        cache.store_outcome(
            ObjectId(0),
            &q,
            0.5,
            ExplainStrategy::Cp,
            &cp,
            rect((0.0, 0.0), (5.0, 5.0)),
            false,
            &dummy_outcome(),
        );
        // An update near the origin evicts A (row + outcome), not B.
        cache.invalidate(ObjectId(9), &[rect((4.0, 4.0), (6.0, 6.0))], false);
        assert!(cache.lookup_rows(ObjectId(0), &q).is_none());
        assert!(cache.lookup_rows(ObjectId(1), &q).is_some());
        assert_eq!(cache.stats().cache_evictions, 2);
        // Touching the non-answer itself evicts regardless of geometry.
        cache.invalidate(ObjectId(1), &[rect((500.0, 500.0), (501.0, 501.0))], false);
        assert!(cache.lookup_rows(ObjectId(1), &q).is_none());
    }

    #[test]
    fn certainty_flush_only_hits_flagged_entries() {
        let cache = ExplanationCache::new();
        let q = pt(5.0, 5.0);
        let cp = CpConfig::default();
        let far = rect((50.0, 50.0), (60.0, 60.0));
        cache.store_outcome(
            ObjectId(0),
            &q,
            0.5,
            ExplainStrategy::Cr,
            &cp,
            far.clone(),
            true,
            &dummy_outcome(),
        );
        cache.store_outcome(
            ObjectId(0),
            &q,
            0.5,
            ExplainStrategy::Cp,
            &cp,
            far,
            false,
            &dummy_outcome(),
        );
        // Update far from both regions, but certainty may have changed:
        // the certain-strategy entry must go, the CP entry stays.
        cache.invalidate(ObjectId(9), &[rect((0.0, 0.0), (1.0, 1.0))], true);
        assert!(cache
            .lookup_outcome(ObjectId(0), &q, 0.5, ExplainStrategy::Cr, &cp)
            .is_none());
        assert!(cache
            .lookup_outcome(ObjectId(0), &q, 0.5, ExplainStrategy::Cp, &cp)
            .is_some());
    }

    #[test]
    fn capacity_bound_evicts_instead_of_growing() {
        let cache = ExplanationCache::new();
        let cp = CpConfig::default();
        for i in 0..(MAX_OUTCOMES + 10) as u32 {
            cache.store_outcome(
                ObjectId(i),
                &pt(1.0, 1.0),
                0.5,
                ExplainStrategy::Cp,
                &cp,
                rect((0.0, 0.0), (1.0, 1.0)),
                false,
                &dummy_outcome(),
            );
        }
        assert!(cache.len().1 <= MAX_OUTCOMES);
        assert!(cache.stats().cache_evictions >= 10);
    }
}
