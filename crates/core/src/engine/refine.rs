//! Pipeline stage 2 — **refine**: lemma-driven classification of the
//! candidate causes before the contingency search.
//!
//! Consumes the dominance matrix built from stage 1's candidates and
//! produces a [`RefinePlan`] for stage 3 ([`super::fmcs`]):
//!
//! 1. `α = 1` fast path (Algorithm 1, lines 9–11) — every candidate is
//!    a cause with responsibility `1/|Cc|`; the plan is already
//!    complete and stage 3 only sorts it,
//! 2. Lemma 4 — candidates dominating with probability 1 w.r.t. every
//!    sample (`Ca`) are forced into every contingency set,
//! 3. Lemma 5 — counterfactual causes (`Cb`) are reported immediately
//!    and excluded from the other candidates' search spaces.
//!
//! Every switch honours [`CpConfig`], which is what turns the same
//! stage into the CP refinement or the Naive-I non-refinement.

use super::fmcs::{CauseRec, Checker};
use crate::config::CpConfig;
use crate::matrix::{DominanceMatrix, Scratch};
use crate::types::RunStats;
use crp_geom::PROB_EPSILON;

/// The classification stage's output, consumed by the FMCS stage.
pub(crate) struct RefinePlan<'m> {
    /// `forced_mask[c]`: candidate `c` is in `Ca` (Lemma 4).
    pub forced_mask: Vec<bool>,
    /// `excluded[c]`: candidate `c` is removed from every later search
    /// space (Lemma 5 counterfactuals).
    pub excluded: Vec<bool>,
    /// `done[c]`: candidate `c` needs no FMCS run.
    pub done: Vec<bool>,
    /// Causes already established during classification.
    pub results: Vec<CauseRec>,
    /// True when the plan is final and FMCS has nothing left to search
    /// (the `α = 1` fast path).
    pub complete: bool,
    /// The contingency-condition checker, shared with stage 3 so the
    /// incremental evaluator is built at most once per non-answer.
    pub checker: Checker<'m>,
}

/// Runs the classification. `matrix` must contain only genuine
/// candidates (positive dominance mass; Lemma 1 filtering is stage 1's
/// job). `scratch` is the per-thread hot-path workspace, re-shaped here
/// (via [`Checker::new`]) and shared with stage 3.
pub(crate) fn classify<'m>(
    matrix: &'m DominanceMatrix,
    alpha: f64,
    config: &CpConfig,
    stats: &mut RunStats,
    scratch: &mut Scratch,
) -> RefinePlan<'m> {
    let n = matrix.candidates();
    stats.candidates = n;
    let checker = Checker::new(matrix, config, scratch);
    let mut results: Vec<CauseRec> = Vec::new();

    // --- α = 1 fast path (Algorithm 1, lines 9–11). -------------------
    if n > 0 && config.alpha_one_fast_path && alpha >= 1.0 - PROB_EPSILON {
        for cand in 0..n {
            let gamma: Vec<usize> = (0..n).filter(|&c| c != cand).collect();
            results.push(CauseRec {
                cand,
                counterfactual: gamma.is_empty(),
                gamma,
            });
        }
        return RefinePlan {
            forced_mask: vec![false; n],
            excluded: vec![false; n],
            done: vec![true; n],
            results,
            complete: true,
            checker,
        };
    }

    // --- Lemma 4: forced contingency members (Ca). ---------------------
    let forced_mask: Vec<bool> = if config.use_lemma4 {
        (0..n).map(|c| matrix.forces_zero(c)).collect()
    } else {
        vec![false; n]
    };
    stats.forced = forced_mask.iter().filter(|f| **f).count();

    // --- Lemma 5: counterfactual causes (Cb). --------------------------
    // `excluded[c]` removes c from every later search space.
    let mut excluded = vec![false; n];
    let mut done = vec![false; n];
    if config.use_lemma5 {
        // Batched mode computes all |Cc| singleton probabilities in one
        // prefix/suffix pass over the complement matrix; verdicts and
        // counters are identical to the sequential probes.
        let batched = checker.batch_singletons(scratch);
        for c in 0..n {
            stats.subsets_examined += 1;
            stats.prsq_evaluations += 1;
            let counterfactual = if batched {
                let fast = scratch.batch_prs[c];
                checker.settle_singleton(c, fast, alpha, &mut stats.query)
            } else {
                checker.is_answer(&[c], alpha, scratch, &mut stats.query)
            };
            if counterfactual {
                excluded[c] = true;
                done[c] = true;
                results.push(CauseRec {
                    cand: c,
                    gamma: Vec::new(),
                    counterfactual: true,
                });
            }
        }
        stats.counterfactuals = results.len();
        // The singleton probes are subset checks too: charge them so a
        // plan budget meters refine-only explains (certain data under
        // Lemma 7 never reaches the FMCS kernels). The next check
        // site — the FMCS driver or the following task — observes it.
        if let Some(cancel) = super::budget::active() {
            cancel.charge_subsets(n as u64);
        }
    }

    RefinePlan {
        forced_mask,
        excluded,
        done,
        results,
        complete: n == 0,
        checker,
    }
}
