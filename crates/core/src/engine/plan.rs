//! The **query planner**: `Request → Plan → Execute` over one engine
//! session.
//!
//! The paper's CP/CR algorithms are almost always invoked as
//! *workloads* — the same non-answer at many `α`, many non-answers at
//! one `q`, what-if re-explains of a whole grid of nearby queries —
//! yet per-call entry points can only see one `(q, an, α)` triple at a
//! time. This module adds the missing layer:
//!
//! 1. **Request** — a typed, builder-style [`ExplainRequest`]
//!    describing a workload (query grid × non-answer set × α list,
//!    with optional strategy/lemma-config overrides),
//! 2. **Plan** — the planner compiles one or more requests into
//!    *stage-1 work units*, deduplicated across the whole workload:
//!    one dominance-row computation per distinct `(an, q)` (α-sweeps
//!    share it through the session row cache), and — the cross-query
//!    rule — a unit whose filter-window bounding box is **contained**
//!    in another unit's box for the same `an` is *derived* from the
//!    larger unit's coverage list instead of paying its own R-tree
//!    traversal,
//! 3. **Execute** — one engine-agnostic executor drives the plan over
//!    any plan host (the unsharded [`ExplainEngine`] or the
//!    [`ShardedExplainEngine`]), rayon-parallel
//!    across units exactly like the legacy batch paths, and returns a
//!    [`PlanReport`] with per-plan [`PlanCounters`].
//!
//! ## Why window containment is sound
//!
//! Stage 1 of CP finds every object with positive dominance
//! probability w.r.t. some sample of `an` (Lemmas 1–2). Such an object
//! has a sample strictly inside one of the per-sample filter windows,
//! so its MBR intersects the windows' bounding box (the *candidate
//! region* the explanation cache also keys on). If the candidate
//! region of `(an, q')` is contained in the candidate region of
//! `(an, q)`, every stage-1 candidate of `q'` therefore appears in the
//! **coverage list** of `q` — all objects whose MBR intersects `q`'s
//! region, collected by one single-window traversal. Re-running only
//! the exact Lemma 2 test (and the matrix build, which genuinely
//! depends on `q'`) over that list reproduces the traversal's
//! candidate set bit-for-bit at zero node accesses. The
//! engine-agreement property tests pin this equivalence; the
//! `plan_sweep` bench measures what it saves.
//!
//! Single-task plans (everything the legacy `explain*` shims forward)
//! skip coverage mode entirely and execute the exact pre-planner code
//! path, so per-call behaviour — outcomes *and* I/O counters — is
//! unchanged.
//!
//! [`ExplainEngine`]: super::ExplainEngine
//! [`ShardedExplainEngine`]: super::ShardedExplainEngine

use super::budget::{self, Cancel, PlanLimits};
use super::cache::{self, ExplanationCache, ServeTrace};
use super::filter;
use super::pipeline::{self, StageOne};
use super::{EngineConfig, ExplainStrategy, Workload};
use crate::config::CpConfig;
use crate::error::CrpError;
use crate::matrix::{with_scratch, DominanceMatrix, Scratch};
use crate::types::{CrpOutcome, RunStats};
use crp_geom::{HyperRect, Point};
use crp_rtree::{AtomicQueryStats, QueryStats};
use crp_uncertain::{ObjectId, PdfDataset, UncertainDataset};
use rayon::prelude::*;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A declarative explain workload: the cross product of a query grid,
/// a non-answer set and an α list, with optional per-request strategy
/// and lemma-configuration overrides (session defaults otherwise).
///
/// Build one with the constructors ([`ExplainRequest::explain`],
/// [`ExplainRequest::batch`], [`ExplainRequest::alpha_sweep`],
/// [`ExplainRequest::query_sweep`]) and the `with_*` refiners, then
/// hand it — together with any other requests of the same workload —
/// to [`ExplainSession::run`](super::session::ExplainSession::run),
/// which plans stage-1 work units across *all* requests at once.
///
/// Result order is the nested expansion order: queries (outer), then
/// non-answers, then α values — so
/// [`ExplainRequest::batch`]`(q, ans)` produces one result per `an` in
/// input order, exactly like the legacy batch entry points.
#[derive(Clone, Debug, PartialEq)]
pub struct ExplainRequest {
    queries: Vec<Point>,
    objects: Vec<ObjectId>,
    /// Empty means "the session α".
    alphas: Vec<f64>,
    strategy: Option<ExplainStrategy>,
    cp: Option<CpConfig>,
    serial: bool,
    limits: PlanLimits,
}

impl ExplainRequest {
    /// One explanation: `(q, an)` at the session α and strategy.
    pub fn explain(q: &Point, an: ObjectId) -> Self {
        Self {
            queries: vec![q.clone()],
            objects: vec![an],
            alphas: Vec::new(),
            strategy: None,
            cp: None,
            serial: false,
            limits: PlanLimits::default(),
        }
    }

    /// Many non-answers at one query — the batch workload.
    pub fn batch(q: &Point, ans: &[ObjectId]) -> Self {
        Self {
            objects: ans.to_vec(),
            ..Self::explain(q, ObjectId(0))
        }
    }

    /// One non-answer across an α list — the threshold-sensitivity
    /// workload. Every α shares one stage-1 computation.
    pub fn alpha_sweep(q: &Point, an: ObjectId, alphas: impl Into<Vec<f64>>) -> Self {
        Self {
            alphas: alphas.into(),
            ..Self::explain(q, an)
        }
    }

    /// A fixed non-answer set across a query grid — the what-if
    /// workload the cross-query containment rule deduplicates.
    pub fn query_sweep(queries: impl Into<Vec<Point>>, ans: &[ObjectId]) -> Self {
        Self {
            queries: queries.into(),
            objects: ans.to_vec(),
            alphas: Vec::new(),
            strategy: None,
            cp: None,
            serial: false,
            limits: PlanLimits::default(),
        }
    }

    /// Replaces the query grid.
    pub fn with_queries(mut self, queries: impl Into<Vec<Point>>) -> Self {
        self.queries = queries.into();
        self
    }

    /// Replaces the non-answer set.
    pub fn with_objects(mut self, ans: &[ObjectId]) -> Self {
        self.objects = ans.to_vec();
        self
    }

    /// Pins a single α (instead of the session default).
    pub fn with_alpha(self, alpha: f64) -> Self {
        self.with_alphas(vec![alpha])
    }

    /// Replaces the α list; an empty list means "the session α".
    pub fn with_alphas(mut self, alphas: impl Into<Vec<f64>>) -> Self {
        self.alphas = alphas.into();
        self
    }

    /// Overrides the session strategy for this request.
    pub fn with_strategy(mut self, strategy: ExplainStrategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Overrides the session lemma configuration for this request —
    /// the ablation experiments sweep lemma switches this way without
    /// rebuilding the session.
    pub fn with_cp(mut self, cp: CpConfig) -> Self {
        self.cp = Some(cp);
        self
    }

    /// Forces serial execution of the whole plan this request joins
    /// (the reference mode the parallel paths are tested against).
    pub fn serial(mut self) -> Self {
        self.serial = true;
        self
    }

    /// Wall deadline in milliseconds: past it, unfinished tasks return
    /// [`CrpError::Partial`] (honored within one cancellation-check
    /// interval, [`budget::CHECK_INTERVAL`] subset checks).
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.limits.deadline_ms = Some(ms);
        self
    }

    /// Caps R-tree node accesses across the plan this request joins.
    pub fn with_node_budget(mut self, max: u64) -> Self {
        self.limits.max_node_accesses = Some(max);
        self
    }

    /// Caps FMCS subset checks across the plan this request joins
    /// (plan-wide, unlike the per-explain
    /// [`CpConfig::max_subsets`](crate::CpConfig::max_subsets)).
    pub fn with_subset_budget(mut self, max: u64) -> Self {
        self.limits.max_subsets = Some(max);
        self
    }

    /// Replaces every execution limit at once.
    pub fn with_limits(mut self, limits: PlanLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The execution limits of this request.
    pub fn limits(&self) -> &PlanLimits {
        &self.limits
    }

    /// The query grid.
    pub fn queries(&self) -> &[Point] {
        &self.queries
    }

    /// The non-answer set.
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }

    /// The α list resolved against a session default.
    pub fn alphas_or(&self, default: f64) -> Vec<f64> {
        if self.alphas.is_empty() {
            vec![default]
        } else {
            self.alphas.clone()
        }
    }

    /// Tasks this request expands to (queries × objects × α values).
    pub fn task_count(&self) -> usize {
        self.queries.len() * self.objects.len() * self.alphas.len().max(1)
    }
}

/// Per-plan execution counters: how much stage-1 work the planner
/// found, shared, derived, or served from the session cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCounters {
    /// Explain cells across every request (`Σ` queries × objects × α).
    pub tasks: usize,
    /// Tasks executed through the per-call path (strategies the
    /// planner does not dedup: CR and friends, oracles, unindexed CP).
    pub per_call_tasks: usize,
    /// CP tasks that needed stage-1 dominance rows.
    pub stage1_tasks: usize,
    /// Distinct `(an, q)` stage-1 work units after planning.
    pub stage1_units: usize,
    /// CP tasks beyond the first of their unit — α-sweep sharing.
    pub stage1_shared_tasks: usize,
    /// Units computed from a containing unit's coverage list instead
    /// of their own traversal (the cross-query dedup).
    pub stage1_derived: usize,
    /// Units served entirely from the session cache (row or outcome
    /// layer) without any stage-1 computation.
    pub stage1_cache_served: usize,
    /// Units that paid a filter traversal of the index.
    pub stage1_traversals: usize,
    /// CP tasks answered straight from the outcome cache.
    pub outcome_cache_hits: usize,
}

impl fmt::Display for PlanCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} task(s) → {} stage-1 unit(s): {} traversal(s), {} derived by containment, \
             {} cache-served; {} task(s) shared a unit's rows; {} outcome-cache hit(s); \
             {} per-call task(s)",
            self.tasks,
            self.stage1_units,
            self.stage1_traversals,
            self.stage1_derived,
            self.stage1_cache_served,
            self.stage1_shared_tasks,
            self.outcome_cache_hits,
            self.per_call_tasks
        )
    }
}

/// The output of one planned execution: per-task results in request
/// expansion order, plus the plan's counters.
#[derive(Clone, Debug)]
pub struct PlanReport {
    /// One result per task, ordered request by request, each request
    /// expanded queries-outer / objects / α-inner.
    pub results: Vec<Result<CrpOutcome, CrpError>>,
    /// What the planner did to serve them.
    pub counters: PlanCounters,
}

impl PlanReport {
    /// Consumes a single-task report (the legacy shim tail).
    ///
    /// # Panics
    ///
    /// Panics when the report holds more or fewer than one result.
    pub fn into_single(self) -> Result<CrpOutcome, CrpError> {
        let mut results = self.results;
        assert_eq!(results.len(), 1, "expected a single-task plan");
        results.pop().expect("checked above")
    }
}

/// The engine-side seams the executor drives — implemented by
/// [`ExplainEngine`](super::ExplainEngine) and
/// [`ShardedExplainEngine`](super::ShardedExplainEngine). Everything
/// partition-specific (which trees, which fan-out) lives behind these
/// methods; the planning and execution logic above them is shared.
pub(crate) trait PlanHost: Sync {
    fn host_config(&self) -> &EngineConfig;
    fn host_workload(&self) -> &Workload;
    fn host_cache(&self) -> &ExplanationCache;
    /// The session accumulator fresh traversal costs fold into
    /// (`None` for sharded hosts, whose shards self-account).
    fn host_io(&self) -> Option<&AtomicQueryStats>;
    fn resolve_strategy(&self, strategy: ExplainStrategy) -> ExplainStrategy;
    /// Builds the indexes `strategy` needs before a parallel phase.
    fn prepare_strategy(&self, strategy: ExplainStrategy);
    /// Guards evaluated before the cached CP path (the sharded engine
    /// rejects empty datasets before consulting the cache; the
    /// unsharded one lets validation do it) — kept per-engine so error
    /// ordering stays bit-identical to the legacy entry points.
    fn cp_pre_guard(&self) -> Result<(), CrpError>;
    /// The legacy per-call dispatch (cache included) for strategies
    /// the planner does not dedup. `fan_parallel` controls intra-call
    /// partition parallelism where the host has any.
    fn per_call(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
        cp: &CpConfig,
        fan_parallel: bool,
    ) -> Result<CrpOutcome, CrpError>;
    /// The legacy stage-1 traversal of the discrete CP pipeline
    /// (multi-window filter + matrix build).
    fn fresh_stage1_discrete(
        &self,
        q: &Point,
        an_pos: usize,
        fan_parallel: bool,
        stats: &mut RunStats,
    ) -> Result<StageOne, CrpError>;
    /// The legacy stage-1 traversal of the pdf CP pipeline.
    fn fresh_stage1_pdf(
        &self,
        q: &Point,
        an: ObjectId,
        resolution: usize,
        fan_parallel: bool,
        stats: &mut RunStats,
    ) -> Result<StageOne, CrpError>;
    /// Every indexed id whose MBR/region intersects `region`
    /// (ascending, deduplicated, `exclude` removed) — the coverage
    /// list containment-derived units are filtered from.
    fn coverage_ids(
        &self,
        region: &HyperRect,
        exclude: ObjectId,
        fan_parallel: bool,
        stats: &mut RunStats,
    ) -> Result<Vec<ObjectId>, CrpError>;
    /// Fused stage-1 pre-pass: one grouped descent of the packed tree
    /// serves every traversing unit of the plan at once, each shared
    /// upper node read a single time. Returns `None` when the host
    /// cannot fuse (sharded hosts, packed filter off, empty data); an
    /// entry per group otherwise — the unit's raw hit list (ascending,
    /// deduplicated, the excluded id removed) plus the traversal
    /// counters of that unit's *solo* descent, so the per-outcome stats
    /// and the session I/O metric stay bit-identical to unfused
    /// execution while the physical node reads shrink.
    ///
    /// The pre-pass is eager: a unit later served from the session
    /// cache wastes its share of the descent. That trade is accepted —
    /// cold plans (the planner's main workload) fuse fully, and the
    /// wasted share on warm plans is one already-shared descent.
    fn fused_unit_hits(&self, groups: &[FusedGroup]) -> Option<Vec<(Vec<ObjectId>, QueryStats)>> {
        let _ = groups;
        None
    }
}

/// One group of a fused stage-1 descent: a traversing unit's filter
/// windows and the non-answer its hit list excludes.
pub(crate) struct FusedGroup {
    pub unit: usize,
    pub windows: Vec<HyperRect>,
    pub exclude: ObjectId,
}

/// The filter windows a traversing unit's solo descent would use —
/// discrete leaves test the per-sample dominance windows, coverage
/// roots their single bounding box, pdf leaves the per-quadrant
/// windows. `None` for units the serve path will fail before stage 1
/// (unknown non-answer, dimension mismatch), which must keep surfacing
/// their errors through the unfused path.
fn unit_windows(workload: &Workload, unit: &Unit, q: &Point) -> Option<Vec<HyperRect>> {
    unit.region.as_ref()?;
    if unit.kind == UnitKind::CoverageRoot {
        return unit.region.clone().map(|r| vec![r]);
    }
    match workload {
        Workload::Discrete(ds) => {
            let an = ds.get(unit.an)?;
            Some(
                an.samples()
                    .iter()
                    .map(|s| crp_geom::dominance_rect(s.point(), q))
                    .collect(),
            )
        }
        Workload::Pdf { ds, .. } => {
            let an = ds.get(unit.an)?;
            Some(crate::pdf::pdf_windows(q, an.region()))
        }
    }
}

/// One explain cell of the expanded workload.
#[derive(Clone, Copy)]
struct Task {
    /// Index into the plan's deduplicated query table.
    q: usize,
    an: ObjectId,
    alpha: f64,
    /// The request's strategy, unresolved (per-call dispatch resolves
    /// `Auto` itself, exactly like the legacy paths).
    strategy: ExplainStrategy,
    cp: CpConfig,
    /// The stage-1 unit serving this task (`None` for per-call
    /// strategies).
    unit: Option<usize>,
}

/// How a stage-1 unit obtains its dominance rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum UnitKind {
    /// Own traversal through the exact legacy filter path.
    Leaf,
    /// Own traversal in coverage mode (single bounding-box window),
    /// keeping the raw coverage list for derived children.
    CoverageRoot,
    /// Filtered from the parent unit's coverage list — no traversal.
    Derived { parent: usize },
}

/// One distinct `(an, q)` stage-1 computation.
struct Unit {
    an: ObjectId,
    q: usize,
    /// Bounding box of the unit's filter windows (`None` when the
    /// non-answer is unknown or the dataset empty — the serve path
    /// will produce the proper error).
    region: Option<HyperRect>,
    kind: UnitKind,
    /// Task indices served by this unit, in task order.
    tasks: Vec<usize>,
}

/// Aggregated execution flags of one unit.
#[derive(Clone, Copy, Default)]
struct UnitFlags {
    traversed: bool,
    derived: bool,
    rows_or_outcome_hit: bool,
    outcome_hits: usize,
}

/// The compiled plan: deduplicated queries, expanded tasks, linked
/// stage-1 units.
struct Plan {
    qtable: Vec<Point>,
    tasks: Vec<Task>,
    units: Vec<Unit>,
    serial_forced: bool,
}

/// Bit-exact hash key for a query point (planning, like the cache,
/// treats queries as exact coordinate vectors).
fn qbits(q: &Point) -> Vec<u64> {
    q.coords().iter().map(|c| c.to_bits()).collect()
}

/// The candidate region of a prospective unit — discrete: the bounding
/// box of the per-sample dominance windows; pdf: the bounding box of
/// the per-quadrant windows. `None` when the serve path would error
/// before reaching stage 1 anyway.
fn unit_region(workload: &Workload, an: ObjectId, q: &Point) -> Option<HyperRect> {
    match workload {
        Workload::Discrete(ds) => {
            let obj = ds.get(an)?;
            if obj.mbr().dim() != q.dim() {
                return None;
            }
            Some(filter::candidate_region(obj, q))
        }
        Workload::Pdf { ds, .. } => {
            let obj = ds.get(an)?;
            if obj.region().dim() != q.dim() {
                return None;
            }
            filter::windows_region(&crate::pdf::pdf_windows(q, obj.region()))
        }
    }
}

/// Compiles `requests` against a host: expand tasks, dedup `(an, q)`
/// units, link containment derivations.
fn compile<H: PlanHost + ?Sized>(host: &H, requests: &[ExplainRequest]) -> Plan {
    let config = host.host_config();
    let workload = host.host_workload();

    let mut qtable: Vec<Point> = Vec::new();
    let mut qindex: HashMap<Vec<u64>, usize> = HashMap::new();
    let mut tasks: Vec<Task> = Vec::new();
    let mut serial_forced = false;

    for req in requests {
        serial_forced |= req.serial;
        let strategy = req.strategy.unwrap_or(config.strategy);
        let cp = req.cp.unwrap_or(config.cp);
        let alphas = req.alphas_or(config.alpha);
        for q in &req.queries {
            let qi = *qindex.entry(qbits(q)).or_insert_with(|| {
                qtable.push(q.clone());
                qtable.len() - 1
            });
            for &an in &req.objects {
                for &alpha in &alphas {
                    tasks.push(Task {
                        q: qi,
                        an,
                        alpha,
                        strategy,
                        cp,
                        unit: None,
                    });
                }
            }
        }
    }

    // Stage-1 units: one per distinct (an, q) over the CP tasks.
    let mut units: Vec<Unit> = Vec::new();
    let mut unit_index: HashMap<(ObjectId, usize), usize> = HashMap::new();
    for (ti, task) in tasks.iter_mut().enumerate() {
        if host.resolve_strategy(task.strategy) != ExplainStrategy::Cp {
            continue;
        }
        let ui = *unit_index.entry((task.an, task.q)).or_insert_with(|| {
            units.push(Unit {
                an: task.an,
                q: task.q,
                region: unit_region(workload, task.an, &qtable[task.q]),
                kind: UnitKind::Leaf,
                tasks: Vec::new(),
            });
            units.len() - 1
        });
        task.unit = Some(ui);
        units[ui].tasks.push(ti);
    }

    // Containment linking, per non-answer: order candidate units by
    // descending region volume, greedily accept roots, and derive any
    // unit whose region fits inside an accepted root's. Derivation is
    // single-level (every derived unit points at a traversed root), so
    // execution is two phases, not a dependency graph.
    let mut by_an: HashMap<ObjectId, Vec<usize>> = HashMap::new();
    for (ui, unit) in units.iter().enumerate() {
        if unit.region.is_some() {
            by_an.entry(unit.an).or_default().push(ui);
        }
    }
    for group in by_an.values_mut() {
        if group.len() < 2 {
            continue;
        }
        group.sort_by(|&a, &b| {
            let (va, vb) = (
                units[a].region.as_ref().expect("filtered above").volume(),
                units[b].region.as_ref().expect("filtered above").volume(),
            );
            vb.partial_cmp(&va).expect("finite volumes").then(a.cmp(&b))
        });
        let mut roots: Vec<usize> = Vec::new();
        for &ui in group.iter() {
            let region = units[ui].region.as_ref().expect("filtered above");
            match roots
                .iter()
                .find(|&&r| {
                    units[r]
                        .region
                        .as_ref()
                        .expect("roots keep their regions")
                        .contains_rect(region)
                })
                .copied()
            {
                Some(parent) => {
                    units[ui].kind = UnitKind::Derived { parent };
                    units[parent].kind = UnitKind::CoverageRoot;
                }
                None => roots.push(ui),
            }
        }
    }

    Plan {
        qtable,
        tasks,
        units,
        serial_forced,
    }
}

/// Discrete stage 1 from a coverage superset: map ids to positions,
/// re-run the exact Lemma 2 test, build the matrix — bit-identical
/// candidates and rows to the traversal path (see the module docs for
/// the soundness argument), zero node accesses.
fn stage1_discrete_from_coverage(
    ds: &UncertainDataset,
    q: &Point,
    an_pos: usize,
    coverage: &[ObjectId],
) -> StageOne {
    let an = ds.object_at(an_pos);
    let mut positions: Vec<usize> = coverage.iter().filter_map(|&id| ds.index_of(id)).collect();
    positions.sort_unstable();
    positions.dedup();
    positions.retain(|&pos| pos != an_pos);
    filter::retain_causal(ds, an, q, &mut positions);
    let matrix = DominanceMatrix::build(ds, an_pos, q, &positions);
    let ids = positions
        .into_iter()
        .map(|pos| ds.object_at(pos).id())
        .collect();
    StageOne { ids, matrix }
}

/// Pdf stage 1 from a coverage superset: keep ids whose region
/// intersects any per-quadrant window (what the tree traversal
/// returns), then the shared integration tail.
fn stage1_pdf_from_coverage(
    ds: &PdfDataset,
    q: &Point,
    an: ObjectId,
    resolution: usize,
    windows: &[HyperRect],
    coverage: &[ObjectId],
) -> StageOne {
    let hits: Vec<ObjectId> = coverage
        .iter()
        .copied()
        .filter(|&id| {
            id != an
                && ds
                    .get(id)
                    .is_some_and(|o| windows.iter().any(|w| w.intersects(o.region())))
        })
        .collect();
    pipeline::stage1_pdf_from_hits(ds, q, an, resolution, hits)
}

/// Executes one unit's stage 1 (discrete): derive from the parent's
/// coverage when possible, consume the fused pre-pass's hit list when
/// one exists, else traverse — in coverage mode when children depend
/// on this unit. The fused hit list is exactly what this unit's solo
/// traversal would return (and its counters the solo counters), so all
/// three paths produce the identical [`StageOne`].
#[allow(clippy::too_many_arguments)]
fn unit_stage1_discrete<H: PlanHost + ?Sized>(
    host: &H,
    units: &[Unit],
    ui: usize,
    coverage: &[OnceLock<Arc<Vec<ObjectId>>>],
    fused: &[Option<(Vec<ObjectId>, QueryStats)>],
    ds: &UncertainDataset,
    q: &Point,
    an_pos: usize,
    fan_parallel: bool,
    stats: &mut RunStats,
    flags: &mut UnitFlags,
) -> Result<StageOne, CrpError> {
    if let UnitKind::Derived { parent } = units[ui].kind {
        if let Some(cov) = coverage[parent].get() {
            flags.derived = true;
            return Ok(stage1_discrete_from_coverage(ds, q, an_pos, cov));
        }
        // Parent rows came from the session cache (or failed): fall
        // through to this unit's own computation.
    }
    flags.traversed = true;
    if let Some((hits, qs)) = &fused[ui] {
        stats.query += *qs;
        if units[ui].kind == UnitKind::CoverageRoot {
            let cov = Arc::new(hits.clone());
            let stage1 = stage1_discrete_from_coverage(ds, q, an_pos, &cov);
            let _ = coverage[ui].set(cov);
            return Ok(stage1);
        }
        return Ok(stage1_discrete_from_coverage(ds, q, an_pos, hits));
    }
    if units[ui].kind == UnitKind::CoverageRoot {
        let region = units[ui]
            .region
            .clone()
            .expect("coverage roots have regions");
        let cov = Arc::new(host.coverage_ids(&region, units[ui].an, fan_parallel, stats)?);
        let stage1 = stage1_discrete_from_coverage(ds, q, an_pos, &cov);
        let _ = coverage[ui].set(cov);
        return Ok(stage1);
    }
    host.fresh_stage1_discrete(q, an_pos, fan_parallel, stats)
}

/// [`unit_stage1_discrete`] for pdf workloads.
#[allow(clippy::too_many_arguments)]
fn unit_stage1_pdf<H: PlanHost + ?Sized>(
    host: &H,
    units: &[Unit],
    ui: usize,
    coverage: &[OnceLock<Arc<Vec<ObjectId>>>],
    fused: &[Option<(Vec<ObjectId>, QueryStats)>],
    ds: &PdfDataset,
    q: &Point,
    resolution: usize,
    windows: &[HyperRect],
    fan_parallel: bool,
    stats: &mut RunStats,
    flags: &mut UnitFlags,
) -> Result<StageOne, CrpError> {
    let an = units[ui].an;
    if let UnitKind::Derived { parent } = units[ui].kind {
        if let Some(cov) = coverage[parent].get() {
            flags.derived = true;
            return Ok(stage1_pdf_from_coverage(
                ds, q, an, resolution, windows, cov,
            ));
        }
    }
    flags.traversed = true;
    if let Some((hits, qs)) = &fused[ui] {
        stats.query += *qs;
        if units[ui].kind == UnitKind::CoverageRoot {
            let cov = Arc::new(hits.clone());
            let stage1 = stage1_pdf_from_coverage(ds, q, an, resolution, windows, &cov);
            let _ = coverage[ui].set(cov);
            return Ok(stage1);
        }
        return Ok(pipeline::stage1_pdf_from_hits(
            ds,
            q,
            an,
            resolution,
            hits.clone(),
        ));
    }
    if units[ui].kind == UnitKind::CoverageRoot {
        let region = units[ui]
            .region
            .clone()
            .expect("coverage roots have regions");
        let cov = Arc::new(host.coverage_ids(&region, an, fan_parallel, stats)?);
        let stage1 = stage1_pdf_from_coverage(ds, q, an, resolution, windows, &cov);
        let _ = coverage[ui].set(cov);
        return Ok(stage1);
    }
    host.fresh_stage1_pdf(q, an, resolution, fan_parallel, stats)
}

/// Runs every task of one unit (first task computes or fetches the
/// rows, the rest share them through the session row cache), filling
/// `results` and returning the unit's execution flags.
#[allow(clippy::too_many_arguments)]
fn run_unit<H: PlanHost + ?Sized>(
    host: &H,
    plan: &Plan,
    ui: usize,
    coverage: &[OnceLock<Arc<Vec<ObjectId>>>],
    fused: &[Option<(Vec<ObjectId>, QueryStats)>],
    fan_parallel: bool,
    cancel: Option<&Arc<Cancel>>,
    results: &[OnceLock<Result<CrpOutcome, CrpError>>],
) -> UnitFlags {
    let mut flags = UnitFlags::default();
    let unit = &plan.units[ui];
    let q = &plan.qtable[unit.q];
    let cache = host.host_cache();
    let io = host.host_io();
    // Install the plan's budget handle on *this* thread (rayon workers
    // included) so the pipeline and FMCS loops below can poll it.
    budget::with_cancel(cancel, || {
        with_scratch(|scratch| {
            for &ti in &unit.tasks {
                if let Some(c) = cancel {
                    if let Err(partial) = c.check() {
                        results[ti]
                            .set(Err(partial))
                            .expect("each task executes exactly once");
                        continue;
                    }
                }
                let task = &plan.tasks[ti];
                let mut trace = ServeTrace::default();
                let outcome = run_cp_task(
                    host,
                    plan,
                    ui,
                    task,
                    q,
                    coverage,
                    fused,
                    fan_parallel,
                    cache,
                    io,
                    scratch,
                    &mut trace,
                    &mut flags,
                );
                if trace.outcome_hit {
                    flags.outcome_hits += 1;
                }
                if trace.outcome_hit || trace.rows_hit {
                    flags.rows_or_outcome_hit = true;
                }
                let finished = !matches!(outcome, Err(CrpError::Partial(_)));
                results[ti]
                    .set(outcome)
                    .expect("each task executes exactly once");
                if finished {
                    if let Some(c) = cancel {
                        c.task_completed();
                    }
                }
            }
        })
    });
    flags
}

/// One CP task through the shared cache seam, with the unit-appropriate
/// fresh-stage-1 closure.
#[allow(clippy::too_many_arguments)]
fn run_cp_task<H: PlanHost + ?Sized>(
    host: &H,
    plan: &Plan,
    ui: usize,
    task: &Task,
    q: &Point,
    coverage: &[OnceLock<Arc<Vec<ObjectId>>>],
    fused: &[Option<(Vec<ObjectId>, QueryStats)>],
    fan_parallel: bool,
    cache: &ExplanationCache,
    io: Option<&AtomicQueryStats>,
    scratch: &mut Scratch,
    trace: &mut ServeTrace,
    flags: &mut UnitFlags,
) -> Result<CrpOutcome, CrpError> {
    host.cp_pre_guard()?;
    match host.host_workload() {
        Workload::Discrete(ds) => cache::serve_cp_discrete(
            cache,
            io,
            ds,
            q,
            task.an,
            task.alpha,
            &task.cp,
            trace,
            scratch,
            |an_pos, stats| {
                unit_stage1_discrete(
                    host,
                    &plan.units,
                    ui,
                    coverage,
                    fused,
                    ds,
                    q,
                    an_pos,
                    fan_parallel,
                    stats,
                    flags,
                )
            },
        ),
        Workload::Pdf { ds, resolution } => cache::serve_cp_pdf(
            cache,
            io,
            ds,
            q,
            task.an,
            task.alpha,
            &task.cp,
            trace,
            scratch,
            |windows, stats| {
                unit_stage1_pdf(
                    host,
                    &plan.units,
                    ui,
                    coverage,
                    fused,
                    ds,
                    q,
                    *resolution,
                    windows,
                    fan_parallel,
                    stats,
                    flags,
                )
            },
        ),
    }
}

/// Compiles and executes a workload over one host — the single body
/// behind [`ExplainSession::run`](super::session::ExplainSession::run)
/// and every legacy entry-point shim.
pub(crate) fn execute<H: PlanHost + ?Sized>(host: &H, requests: &[ExplainRequest]) -> PlanReport {
    let plan = compile(host, requests);
    let config = host.host_config();
    // One budget handle for the whole plan: the most restrictive limit
    // of each kind across the joined requests. `None` (the common
    // case) costs nothing on the hot paths.
    let limits = requests
        .iter()
        .fold(PlanLimits::default(), |acc, r| acc.merge_min(r.limits));
    let cancel = Cancel::new(limits, plan.tasks.len() as u64);
    let cancel = cancel.as_ref();
    // Mirror the legacy dispatch exactly: batches (> 1 task) run
    // task-parallel with partition fan-out disabled per call; a single
    // task keeps the per-call fan-out the legacy `explain` used.
    let parallel = config.parallel && !plan.serial_forced && plan.tasks.len() > 1;
    let fan_parallel = config.parallel && !plan.serial_forced && plan.tasks.len() == 1;
    if parallel {
        let mut prepared: Vec<ExplainStrategy> = Vec::new();
        for task in &plan.tasks {
            if !prepared.contains(&task.strategy) {
                prepared.push(task.strategy);
                host.prepare_strategy(task.strategy);
            }
        }
    }

    let results: Vec<OnceLock<Result<CrpOutcome, CrpError>>> =
        (0..plan.tasks.len()).map(|_| OnceLock::new()).collect();
    let coverage: Vec<OnceLock<Arc<Vec<ObjectId>>>> =
        (0..plan.units.len()).map(|_| OnceLock::new()).collect();

    // Phase 1: traversing units (leaves + coverage roots); phase 2:
    // derived units, whose parents' coverage lists now exist; phase 3:
    // per-call tasks. Each phase is rayon-parallel when the session is.
    let phase1: Vec<usize> = (0..plan.units.len())
        .filter(|&ui| !matches!(plan.units[ui].kind, UnitKind::Derived { .. }))
        .collect();
    let phase2: Vec<usize> = (0..plan.units.len())
        .filter(|&ui| matches!(plan.units[ui].kind, UnitKind::Derived { .. }))
        .collect();

    // Fused stage-1 pre-pass: when the host can fuse and at least two
    // phase-1 units would traverse, one grouped packed descent computes
    // every unit's hit list up front — shared upper nodes read once.
    // Units the serve path fails before stage 1 (no windows) stay
    // unfused so their errors surface identically.
    let mut fused: Vec<Option<(Vec<ObjectId>, QueryStats)>> =
        (0..plan.units.len()).map(|_| None).collect();
    if phase1.len() >= 2 {
        let workload = host.host_workload();
        let groups: Vec<FusedGroup> = phase1
            .iter()
            .filter_map(|&ui| {
                let unit = &plan.units[ui];
                Some(FusedGroup {
                    unit: ui,
                    windows: unit_windows(workload, unit, &plan.qtable[unit.q])?,
                    exclude: unit.an,
                })
            })
            .collect();
        if groups.len() >= 2 {
            if let Some(hits) = host.fused_unit_hits(&groups) {
                for (group, hit) in groups.into_iter().zip(hits) {
                    fused[group.unit] = Some(hit);
                }
            }
        }
    }

    let run_units = |unit_ids: &[usize]| -> Vec<(usize, UnitFlags)> {
        let one_unit = |ui: usize| {
            (
                ui,
                run_unit(
                    host,
                    &plan,
                    ui,
                    &coverage,
                    &fused,
                    fan_parallel,
                    cancel,
                    &results,
                ),
            )
        };
        if parallel && unit_ids.len() > 1 {
            unit_ids.par_iter().map(|&ui| one_unit(ui)).collect()
        } else {
            unit_ids.iter().map(|&ui| one_unit(ui)).collect()
        }
    };
    let mut unit_flags: Vec<(usize, UnitFlags)> = run_units(&phase1);
    unit_flags.extend(run_units(&phase2));

    let per_call: Vec<usize> = (0..plan.tasks.len())
        .filter(|&ti| plan.tasks[ti].unit.is_none())
        .collect();
    let run_per_call = |ti: usize| {
        if let Some(c) = cancel {
            if let Err(partial) = c.check() {
                results[ti]
                    .set(Err(partial))
                    .expect("each task executes exactly once");
                return;
            }
        }
        let task = &plan.tasks[ti];
        let outcome = budget::with_cancel(cancel, || {
            host.per_call(
                task.strategy,
                &plan.qtable[task.q],
                task.alpha,
                task.an,
                &task.cp,
                fan_parallel,
            )
        });
        let finished = !matches!(outcome, Err(CrpError::Partial(_)));
        results[ti]
            .set(outcome)
            .expect("each task executes exactly once");
        if finished {
            if let Some(c) = cancel {
                c.task_completed();
            }
        }
    };
    if parallel && per_call.len() > 1 {
        let _: Vec<()> = per_call.par_iter().map(|&ti| run_per_call(ti)).collect();
    } else {
        per_call.iter().for_each(|&ti| run_per_call(ti));
    }

    // Fold the counters.
    let mut counters = PlanCounters {
        tasks: plan.tasks.len(),
        per_call_tasks: per_call.len(),
        stage1_units: plan.units.len(),
        ..PlanCounters::default()
    };
    counters.stage1_tasks = counters.tasks - counters.per_call_tasks;
    counters.stage1_shared_tasks = counters.stage1_tasks - counters.stage1_units;
    for (_, flags) in &unit_flags {
        counters.outcome_cache_hits += flags.outcome_hits;
        if flags.derived {
            counters.stage1_derived += 1;
        }
        if flags.traversed {
            counters.stage1_traversals += 1;
        }
        if !flags.derived && !flags.traversed && flags.rows_or_outcome_hit {
            counters.stage1_cache_served += 1;
        }
    }

    PlanReport {
        results: results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every task executed"))
            .collect(),
        counters,
    }
}

/// Plans and executes a single-task request, unwrapping the one result
/// — the tail every legacy per-call shim forwards through.
pub(crate) fn one<H: PlanHost + ?Sized>(
    host: &H,
    request: ExplainRequest,
) -> Result<CrpOutcome, CrpError> {
    debug_assert_eq!(request.task_count(), 1);
    execute(host, std::slice::from_ref(&request)).into_single()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    #[test]
    fn request_builder_expands_the_cross_product() {
        let req = ExplainRequest::query_sweep(vec![pt(1.0, 1.0), pt(2.0, 2.0)], &[ObjectId(3)])
            .with_alphas(vec![0.25, 0.5, 0.75]);
        assert_eq!(req.task_count(), 6);
        assert_eq!(req.queries().len(), 2);
        assert_eq!(req.objects(), &[ObjectId(3)]);
        assert_eq!(req.alphas_or(0.9), vec![0.25, 0.5, 0.75]);

        let single = ExplainRequest::explain(&pt(1.0, 1.0), ObjectId(0));
        assert_eq!(single.task_count(), 1);
        assert_eq!(single.alphas_or(0.9), vec![0.9], "session α by default");

        let batch = ExplainRequest::batch(&pt(1.0, 1.0), &[ObjectId(0), ObjectId(1)]).serial();
        assert_eq!(batch.task_count(), 2);
        assert!(batch.serial);
    }

    #[test]
    fn counters_render_human_readably() {
        let counters = PlanCounters {
            tasks: 12,
            stage1_tasks: 10,
            stage1_units: 5,
            stage1_shared_tasks: 5,
            stage1_derived: 3,
            stage1_traversals: 2,
            per_call_tasks: 2,
            ..PlanCounters::default()
        };
        let s = counters.to_string();
        assert!(s.contains("12 task(s)"), "{s}");
        assert!(s.contains("3 derived by containment"), "{s}");
    }
}
