//! The **ExplainEngine**: a per-dataset session that answers "why is
//! this object not in the (probabilistic) reverse skyline?" through one
//! explicit three-stage pipeline — `filter → refine → fmcs` — with
//! pluggable stage implementations.
//!
//! The seed implementation exposed the paper's algorithms as free
//! functions (`cp`, `cp_unindexed`, `cr`, `naive_i`, `naive_ii`,
//! `oracle_*`) that each required the caller to build and thread the
//! right R-tree. The engine owns that state instead:
//!
//! * the dataset (discrete-sample or continuous-pdf workload),
//! * lazily built R-trees (object MBRs for CP, points for CR), shared
//!   by every explain call,
//! * an [`AtomicQueryStats`] accumulator so total node accesses can be
//!   reported across a rayon-parallel batch.
//!
//! Every algorithm of the paper is a [`ExplainStrategy`] selection over
//! the same pipeline:
//!
//! | strategy | stage 1 (filter) | stage 2 (refine) | stage 3 (search) |
//! |---|---|---|---|
//! | [`Cp`](ExplainStrategy::Cp) | Lemma 2 R-tree windows | Lemmas 4–5 | FMCS + Lemma 6 |
//! | [`CpUnindexed`](ExplainStrategy::CpUnindexed) | Lemma 2 full scan | Lemmas 4–5 | FMCS + Lemma 6 |
//! | [`NaiveI`](ExplainStrategy::NaiveI) | Lemma 2 R-tree windows | (disabled) | exhaustive FMCS |
//! | [`Cr`](ExplainStrategy::Cr) | dominance window | — | Lemma 7 closed form |
//! | [`CrKskyband`](ExplainStrategy::CrKskyband) | dominance window | — | k-skyband closed form |
//! | [`NaiveII`](ExplainStrategy::NaiveII) | dominance window | — | subset verification |
//! | [`OracleCp`](ExplainStrategy::OracleCp)/[`OracleCr`](ExplainStrategy::OracleCr) | whole dataset | — | Definitions 1–2 brute force |
//!
//! [`ExplainEngine::explain_batch`] answers many non-answers in one
//! call, data-parallel over the batch with `rayon` (order-preserving,
//! so results are **bit-identical** to the serial path — a property the
//! test suite pins). Within one non-answer, candidate-level FMCS
//! parallelism is available through [`CpConfig::parallel_fmcs`]
//! whenever the lemma configuration keeps candidates independent.
//!
//! Every stage-1 implementation is **partition-generic**: the same
//! pipelines drive this single-tree session and the
//! [`ShardedExplainEngine`](shard::ShardedExplainEngine), which splits
//! the dataset across per-shard R-trees (see [`shard`]) and merges
//! per-shard candidate sets (see [`merge`]) into bit-identical
//! outcomes.
//!
//! ```
//! use crp_core::{EngineConfig, ExplainEngine};
//! use crp_geom::Point;
//! use crp_uncertain::{ObjectId, UncertainDataset};
//!
//! let ds = UncertainDataset::from_points(vec![
//!     Point::from([10.0, 10.0]),
//!     Point::from([7.0, 7.0]),
//! ])
//! .unwrap();
//! let engine = ExplainEngine::new(ds, EngineConfig::default());
//! let out = engine
//!     .explain(&Point::from([5.0, 5.0]), ObjectId(0))
//!     .unwrap();
//! assert!(out.causes[0].counterfactual);
//! ```

pub mod certain;
pub mod filter;
pub(crate) mod fmcs;
pub mod merge;
pub(crate) mod pipeline;
pub(crate) mod refine;
pub mod shard;

pub use shard::{ShardPolicy, ShardedExplainEngine};

use crate::config::CpConfig;
use crate::error::CrpError;
use crate::oracle::{oracle_cp, oracle_cr, OracleCause};
use crate::types::{Cause, CrpOutcome, RunStats};
use certain::{run_certain, Lemma7ClosedForm, PointTreeDominators, SubsetVerify};
use crp_geom::Point;
use crp_rtree::{AtomicQueryStats, QueryStats, RTree, RTreeParams};
use crp_skyline::{build_object_rtree, build_point_rtree};
use crp_uncertain::{ObjectId, PdfDataset, UncertainDataset};
use filter::{FilterStage, SampleWindowFilter, ScanFilter};
use pipeline::RegionHitSource;
use rayon::prelude::*;
use std::sync::OnceLock;

/// Algorithm selection over the shared pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExplainStrategy {
    /// CR for certain data, CP otherwise — what a client that just
    /// wants an explanation should use.
    Auto,
    /// Algorithm 1 (*CP*): R-tree filter + lemma refinement + FMCS.
    Cp,
    /// CP with the filter ablated to a full scan (no index I/O).
    CpUnindexed,
    /// The Naive-I baseline: CP's filter, exhaustive refinement.
    NaiveI {
        /// Subset-examination budget (`None` = unlimited).
        max_subsets: Option<u64>,
    },
    /// The certain-data algorithm *CR* (Lemma 7, verification-free).
    Cr,
    /// CRP for reverse k-skyband non-answers (closed form; `k = 0` is
    /// [`Cr`](ExplainStrategy::Cr)).
    CrKskyband { k: usize },
    /// The Naive-II baseline: CR's filter, subset verification.
    NaiveII {
        /// Subset-examination budget (`None` = unlimited).
        max_subsets: Option<u64>,
    },
    /// Definition-level brute force for probabilistic queries (ground
    /// truth; exponential in the dataset size).
    OracleCp,
    /// Definition-level brute force for certain data.
    OracleCr,
}

impl ExplainStrategy {
    fn name(self) -> &'static str {
        match self {
            ExplainStrategy::Auto => "auto",
            ExplainStrategy::Cp => "cp",
            ExplainStrategy::CpUnindexed => "cp-unindexed",
            ExplainStrategy::NaiveI { .. } => "naive-i",
            ExplainStrategy::Cr => "cr",
            ExplainStrategy::CrKskyband { .. } => "cr-kskyband",
            ExplainStrategy::NaiveII { .. } => "naive-ii",
            ExplainStrategy::OracleCp => "oracle-cp",
            ExplainStrategy::OracleCr => "oracle-cr",
        }
    }
}

/// Session configuration of an [`ExplainEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Probability threshold `α` of the query (ignored by the
    /// certain-data strategies).
    pub alpha: f64,
    /// Strategy used by [`ExplainEngine::explain`] /
    /// [`ExplainEngine::explain_batch`].
    pub strategy: ExplainStrategy,
    /// Lemma switches and budgets for the refinement stages.
    pub cp: CpConfig,
    /// R-tree shape; `None` uses the paper's 4 KiB-page default for the
    /// dataset's dimensionality.
    pub rtree: Option<RTreeParams>,
    /// Run [`ExplainEngine::explain_batch`] data-parallel with rayon.
    pub parallel: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            strategy: ExplainStrategy::Auto,
            cp: CpConfig::default(),
            rtree: None,
            parallel: true,
        }
    }
}

impl EngineConfig {
    /// Default configuration at a given `α`.
    pub fn with_alpha(alpha: f64) -> Self {
        Self {
            alpha,
            ..Self::default()
        }
    }
}

/// The data a session explains over — shared with the sharded engine,
/// which keeps a global `Workload` for validation and matrix building
/// while all index I/O happens in the shards.
pub(crate) enum Workload {
    Discrete(UncertainDataset),
    Pdf { ds: PdfDataset, resolution: usize },
}

/// A per-dataset explain session: owns the dataset, the R-trees and the
/// cross-call accounting. See the [module docs](self) for the pipeline
/// it dispatches.
pub struct ExplainEngine {
    data: Workload,
    config: EngineConfig,
    /// Object-MBR tree (CP filtering) — for pdf workloads, the region
    /// tree.
    object_tree: OnceLock<RTree<ObjectId>>,
    /// Point tree (CR filtering; certain data only).
    point_tree: OnceLock<RTree<ObjectId>>,
    /// Node accesses accumulated across every explain call (including
    /// parallel batches).
    io: AtomicQueryStats,
}

impl ExplainEngine {
    /// Creates a session over a discrete-sample (or certain) dataset.
    pub fn new(ds: UncertainDataset, config: EngineConfig) -> Self {
        Self {
            data: Workload::Discrete(ds),
            config,
            object_tree: OnceLock::new(),
            point_tree: OnceLock::new(),
            io: AtomicQueryStats::new(),
        }
    }

    /// Creates a session over a continuous-pdf dataset (Section 3.2).
    /// `resolution` controls the midpoint-rule discretisation of
    /// non-answer regions (`resolution^D` cells).
    pub fn for_pdf(ds: PdfDataset, resolution: usize, config: EngineConfig) -> Self {
        Self {
            data: Workload::Pdf { ds, resolution },
            config,
            object_tree: OnceLock::new(),
            point_tree: OnceLock::new(),
            io: AtomicQueryStats::new(),
        }
    }

    /// The session configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The discrete dataset of this session.
    ///
    /// # Panics
    ///
    /// Panics when the session was built with [`ExplainEngine::for_pdf`].
    pub fn dataset(&self) -> &UncertainDataset {
        match &self.data {
            Workload::Discrete(ds) => ds,
            Workload::Pdf { .. } => panic!("pdf engine has no discrete dataset"),
        }
    }

    /// The pdf dataset and resolution, when this is a pdf session.
    pub fn pdf_dataset(&self) -> Option<(&PdfDataset, usize)> {
        match &self.data {
            Workload::Discrete(_) => None,
            Workload::Pdf { ds, resolution } => Some((ds, *resolution)),
        }
    }

    fn rtree_params(&self, dim: usize) -> RTreeParams {
        self.config
            .rtree
            .unwrap_or_else(|| RTreeParams::paper_default(dim))
    }

    /// The object-MBR R-tree (regions, for pdf sessions), built on
    /// first use and shared by all subsequent calls.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset (nothing to index).
    pub fn object_tree(&self) -> &RTree<ObjectId> {
        self.object_tree.get_or_init(|| match &self.data {
            Workload::Discrete(ds) => {
                let dim = ds.dim().expect("cannot index an empty dataset");
                build_object_rtree(ds, self.rtree_params(dim))
            }
            Workload::Pdf { ds, .. } => {
                let dim = ds.dim().expect("cannot index an empty dataset");
                crate::pdf::build_pdf_rtree(ds, self.rtree_params(dim))
            }
        })
    }

    /// The point R-tree used by the certain-data strategies, built on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics on an empty, pdf, or genuinely uncertain dataset.
    pub fn point_tree(&self) -> &RTree<ObjectId> {
        self.point_tree.get_or_init(|| {
            let ds = self.dataset();
            assert!(ds.is_certain(), "point tree requires certain data");
            let dim = ds.dim().expect("cannot index an empty dataset");
            build_point_rtree(ds, self.rtree_params(dim))
        })
    }

    /// Total node accesses across every explain call so far (including
    /// parallel batches), thread-safe.
    pub fn accumulated_io(&self) -> QueryStats {
        self.io.snapshot()
    }

    /// Resets the I/O accumulator, returning the totals so far.
    pub fn reset_io(&self) -> QueryStats {
        self.io.take()
    }

    /// Explains one non-answer with the configured strategy and `α`.
    pub fn explain(&self, q: &Point, an: ObjectId) -> Result<CrpOutcome, CrpError> {
        self.explain_as(self.config.strategy, q, self.config.alpha, an)
    }

    /// Explains one non-answer with an explicit strategy and `α`.
    pub fn explain_as(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
    ) -> Result<CrpOutcome, CrpError> {
        let cp = self.config.cp;
        self.explain_configured(strategy, q, alpha, an, &cp)
    }

    /// [`ExplainEngine::explain_as`] with a per-call [`CpConfig`]
    /// override — the ablation experiments sweep lemma switches over
    /// one session this way, so the index is built once per dataset
    /// instead of once per variant.
    pub fn explain_configured(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
        cp: &CpConfig,
    ) -> Result<CrpOutcome, CrpError> {
        // The pipelines fold their node accesses into `self.io`
        // themselves (passed as the `io` sink below), so error outcomes
        // — which already paid their tree traversal — are counted too.
        self.dispatch(strategy, q, alpha, an, cp)
    }

    /// Explains a batch of non-answers with the configured strategy,
    /// data-parallel over the batch when the session's `parallel` flag
    /// is set. Result order matches `ans`, and each element is
    /// bit-identical to what [`ExplainEngine::explain`] returns.
    pub fn explain_batch(&self, q: &Point, ans: &[ObjectId]) -> Vec<Result<CrpOutcome, CrpError>> {
        self.explain_batch_as(self.config.strategy, q, self.config.alpha, ans)
    }

    /// [`ExplainEngine::explain_batch`] with an explicit strategy and
    /// `α`.
    pub fn explain_batch_as(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        ans: &[ObjectId],
    ) -> Vec<Result<CrpOutcome, CrpError>> {
        if self.config.parallel && ans.len() > 1 {
            self.prepare(strategy);
            ans.par_iter()
                .map(|&an| self.explain_as(strategy, q, alpha, an))
                .collect()
        } else {
            self.explain_batch_serial_as(strategy, q, alpha, ans)
        }
    }

    /// The serial batch path (regardless of the `parallel` flag) — the
    /// reference the parallel path is tested against.
    pub fn explain_batch_serial_as(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        ans: &[ObjectId],
    ) -> Vec<Result<CrpOutcome, CrpError>> {
        ans.iter()
            .map(|&an| self.explain_as(strategy, q, alpha, an))
            .collect()
    }

    /// The stage-1 output for one non-answer: every candidate cause id
    /// (ascending) — the set the refinement stage consumes, before any
    /// matrix or FMCS work. For pdf sessions these are the region hits
    /// of the per-quadrant windows.
    ///
    /// A [`ShardedExplainEngine`] over the same dataset merges its
    /// per-shard stage-1 outputs to exactly this list (the sharding
    /// contract); the shard-sweep bench pins that and measures the
    /// fan-out's speedup.
    pub fn candidate_ids(&self, q: &Point, an: ObjectId) -> Result<Vec<ObjectId>, CrpError> {
        match &self.data {
            Workload::Discrete(ds) => {
                if ds.is_empty() {
                    return Err(CrpError::EmptyDataset);
                }
                let an_pos = ds.index_of(an).ok_or(CrpError::UnknownObject(an))?;
                let mut stats = RunStats::default();
                let filter = SampleWindowFilter::new(self.object_tree());
                let positions = filter.candidates(ds, q, an_pos, &mut stats);
                self.io.absorb(stats.query);
                let mut ids: Vec<ObjectId> = positions
                    .into_iter()
                    .map(|pos| ds.object_at(pos).id())
                    .collect();
                ids.sort_unstable();
                Ok(ids)
            }
            Workload::Pdf { ds, .. } => {
                let tree = self.guarded_pdf_tree(ds)?;
                let an_obj = ds.get(an).ok_or(CrpError::UnknownObject(an))?;
                let windows = crate::pdf::pdf_windows(q, an_obj.region());
                let mut stats = RunStats::default();
                let hits = tree.region_hits(&windows, an, &mut stats);
                self.io.absorb(stats.query);
                Ok(hits)
            }
        }
    }

    /// Builds the index a strategy needs *before* a parallel batch, so
    /// tree construction happens once up front instead of inside the
    /// first worker that wins the `OnceLock` race.
    fn prepare(&self, strategy: ExplainStrategy) {
        let strategy = self.resolve(strategy);
        match strategy {
            ExplainStrategy::Cp | ExplainStrategy::NaiveI { .. } if !self.is_empty_data() => {
                self.object_tree();
            }
            ExplainStrategy::Cr
            | ExplainStrategy::CrKskyband { .. }
            | ExplainStrategy::NaiveII { .. } => {
                if let Workload::Discrete(ds) = &self.data {
                    if !ds.is_empty() && ds.is_certain() {
                        self.point_tree();
                    }
                }
            }
            _ => {}
        }
    }

    fn is_empty_data(&self) -> bool {
        match &self.data {
            Workload::Discrete(ds) => ds.is_empty(),
            Workload::Pdf { ds, .. } => ds.is_empty(),
        }
    }

    /// Resolves [`ExplainStrategy::Auto`] against the workload.
    fn resolve(&self, strategy: ExplainStrategy) -> ExplainStrategy {
        match (strategy, &self.data) {
            (ExplainStrategy::Auto, Workload::Discrete(ds))
                if ds.is_certain() && !ds.is_empty() =>
            {
                ExplainStrategy::Cr
            }
            (ExplainStrategy::Auto, _) => ExplainStrategy::Cp,
            (s, _) => s,
        }
    }

    fn dispatch(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
        cp: &CpConfig,
    ) -> Result<CrpOutcome, CrpError> {
        let strategy = self.resolve(strategy);
        match &self.data {
            Workload::Discrete(ds) => match strategy {
                ExplainStrategy::Cp => pipeline::run_probabilistic(
                    ds,
                    q,
                    an,
                    alpha,
                    cp,
                    &SampleWindowFilter::new(self.guarded_object_tree(ds)?),
                    Some(&self.io),
                ),
                ExplainStrategy::CpUnindexed => {
                    pipeline::run_probabilistic(ds, q, an, alpha, cp, &ScanFilter, Some(&self.io))
                }
                ExplainStrategy::NaiveI { max_subsets } => {
                    let config = CpConfig {
                        max_subsets,
                        ..CpConfig::naive()
                    };
                    pipeline::run_probabilistic(
                        ds,
                        q,
                        an,
                        alpha,
                        &config,
                        &SampleWindowFilter::new(self.guarded_object_tree(ds)?),
                        Some(&self.io),
                    )
                }
                ExplainStrategy::Cr => run_certain(
                    ds,
                    &PointTreeDominators {
                        tree: self.guarded_point_tree(ds)?,
                    },
                    q,
                    an,
                    &Lemma7ClosedForm { k: 0 },
                    Some(&self.io),
                ),
                ExplainStrategy::CrKskyband { k } => run_certain(
                    ds,
                    &PointTreeDominators {
                        tree: self.guarded_point_tree(ds)?,
                    },
                    q,
                    an,
                    &Lemma7ClosedForm { k },
                    Some(&self.io),
                ),
                ExplainStrategy::NaiveII { max_subsets } => run_certain(
                    ds,
                    &PointTreeDominators {
                        tree: self.guarded_point_tree(ds)?,
                    },
                    q,
                    an,
                    &SubsetVerify { max_subsets },
                    Some(&self.io),
                ),
                ExplainStrategy::OracleCp => {
                    oracle_cp(ds, q, an, alpha).map(|causes| oracle_outcome(ds, causes))
                }
                ExplainStrategy::OracleCr => {
                    oracle_cr(ds, q, an).map(|causes| oracle_outcome(ds, causes))
                }
                ExplainStrategy::Auto => unreachable!("resolved above"),
            },
            Workload::Pdf { ds, resolution } => match strategy {
                ExplainStrategy::Cp => pipeline::run_pdf(
                    ds,
                    self.guarded_pdf_tree(ds)?,
                    q,
                    an,
                    alpha,
                    *resolution,
                    cp,
                    Some(&self.io),
                ),
                ExplainStrategy::NaiveI { max_subsets } => {
                    let config = CpConfig {
                        max_subsets,
                        ..CpConfig::naive()
                    };
                    pipeline::run_pdf(
                        ds,
                        self.guarded_pdf_tree(ds)?,
                        q,
                        an,
                        alpha,
                        *resolution,
                        &config,
                        Some(&self.io),
                    )
                }
                other => Err(CrpError::UnsupportedStrategy {
                    strategy: other.name(),
                    workload: "pdf",
                }),
            },
        }
    }

    /// The pdf region tree, with empty datasets surfaced as the
    /// pipeline's `EmptyDataset` error instead of an index-build panic.
    fn guarded_pdf_tree(&self, ds: &PdfDataset) -> Result<&RTree<ObjectId>, CrpError> {
        if ds.is_empty() {
            return Err(CrpError::EmptyDataset);
        }
        Ok(self.object_tree())
    }

    /// The object tree, with empty datasets surfaced as the pipeline's
    /// `EmptyDataset` error instead of an index-build panic.
    fn guarded_object_tree(&self, ds: &UncertainDataset) -> Result<&RTree<ObjectId>, CrpError> {
        if ds.is_empty() {
            return Err(CrpError::EmptyDataset);
        }
        Ok(self.object_tree())
    }

    /// The point tree, with the certain-data preconditions surfaced as
    /// pipeline errors instead of index-build panics.
    fn guarded_point_tree(&self, ds: &UncertainDataset) -> Result<&RTree<ObjectId>, CrpError> {
        if ds.is_empty() {
            return Err(CrpError::EmptyDataset);
        }
        if !ds.is_certain() {
            return Err(CrpError::NotCertainData);
        }
        Ok(self.point_tree())
    }
}

/// Converts the oracle's position-level causes into the engine's
/// id-level [`CrpOutcome`] — shared with the sharded engine's oracle
/// dispatch.
pub(crate) fn oracle_outcome(
    ds: &UncertainDataset,
    causes: Vec<(ObjectId, OracleCause)>,
) -> CrpOutcome {
    let causes = causes
        .into_iter()
        .map(|(id, c)| Cause {
            id,
            responsibility: c.responsibility(),
            counterfactual: c.min_gamma.is_empty(),
            min_contingency: c
                .min_gamma
                .into_iter()
                .map(|pos| ds.object_at(pos).id())
                .collect(),
        })
        .collect();
    CrpOutcome {
        causes,
        stats: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_uncertain::UncertainObject;

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    fn uncertain_fixture() -> UncertainDataset {
        UncertainDataset::from_objects(vec![
            UncertainObject::certain(ObjectId(0), pt(10.0, 10.0)),
            UncertainObject::certain(ObjectId(1), pt(7.0, 7.0)),
            UncertainObject::with_equal_probs(ObjectId(2), vec![pt(8.0, 9.0), pt(30.0, 30.0)])
                .unwrap(),
            UncertainObject::certain(ObjectId(3), pt(40.0, 40.0)),
        ])
        .unwrap()
    }

    #[test]
    #[allow(deprecated)]
    fn engine_matches_free_cp() {
        let ds = uncertain_fixture();
        let engine = ExplainEngine::new(ds.clone(), EngineConfig::with_alpha(0.75));
        let tree = build_object_rtree(&ds, RTreeParams::paper_default(2));
        let q = pt(5.0, 5.0);
        let a = engine.explain(&q, ObjectId(0)).unwrap();
        let b = crate::cp(&ds, &tree, &q, ObjectId(0), 0.75, &CpConfig::default()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            engine.accumulated_io().node_accesses,
            a.stats.query.node_accesses
        );
    }

    #[test]
    fn auto_resolves_by_workload() {
        let certain = UncertainDataset::from_points(vec![pt(10.0, 10.0), pt(7.0, 7.0)]).unwrap();
        let engine = ExplainEngine::new(certain, EngineConfig::default());
        // Auto on certain data runs CR: no α involved, single
        // counterfactual cause.
        let out = engine.explain(&pt(5.0, 5.0), ObjectId(0)).unwrap();
        assert!(out.causes[0].counterfactual);

        let uncertain = uncertain_fixture();
        let engine = ExplainEngine::new(uncertain, EngineConfig::with_alpha(0.75));
        let out = engine.explain(&pt(5.0, 5.0), ObjectId(0)).unwrap();
        assert_eq!(out.causes.len(), 2, "CP path found both causes");
    }

    #[test]
    fn batch_parallel_matches_serial_exactly() {
        let ds = uncertain_fixture();
        let engine = ExplainEngine::new(ds, EngineConfig::with_alpha(0.75));
        let q = pt(5.0, 5.0);
        let ids: Vec<ObjectId> = (0..4).map(ObjectId).collect();
        let par = engine.explain_batch(&q, &ids);
        let ser = engine.explain_batch_serial_as(ExplainStrategy::Auto, &q, 0.75, &ids);
        assert_eq!(par, ser);
    }

    #[test]
    fn strategies_share_the_session() {
        let ds = UncertainDataset::from_points(vec![
            pt(10.0, 10.0),
            pt(7.0, 7.0),
            pt(6.0, 8.0),
            pt(8.0, 6.0),
        ])
        .unwrap();
        let engine = ExplainEngine::new(ds, EngineConfig::default());
        let q = pt(5.0, 5.0);
        let cr = engine
            .explain_as(ExplainStrategy::Cr, &q, 0.5, ObjectId(0))
            .unwrap();
        let naive = engine
            .explain_as(
                ExplainStrategy::NaiveII { max_subsets: None },
                &q,
                0.5,
                ObjectId(0),
            )
            .unwrap();
        let oracle = engine
            .explain_as(ExplainStrategy::OracleCr, &q, 0.5, ObjectId(0))
            .unwrap();
        assert_eq!(cr.causes.len(), naive.causes.len());
        assert_eq!(cr.causes.len(), oracle.causes.len());
        for ((a, b), c) in cr.causes.iter().zip(&naive.causes).zip(&oracle.causes) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.id, c.id);
            assert_eq!(a.min_contingency.len(), b.min_contingency.len());
            assert_eq!(a.min_contingency.len(), c.min_contingency.len());
        }
        // The kskyband generalisation at k = 0 agrees with CR.
        let ksky = engine
            .explain_as(ExplainStrategy::CrKskyband { k: 0 }, &q, 0.5, ObjectId(0))
            .unwrap();
        assert_eq!(cr, ksky);
    }

    #[test]
    fn pdf_workload_supports_cp_only() {
        use crp_geom::HyperRect;
        use crp_uncertain::PdfObject;
        let ds = PdfDataset::from_objects(vec![
            PdfObject::uniform(ObjectId(0), HyperRect::new(pt(9.5, 9.5), pt(10.5, 10.5))),
            PdfObject::uniform(ObjectId(1), HyperRect::new(pt(6.9, 6.9), pt(7.1, 7.1))),
        ])
        .unwrap();
        let engine = ExplainEngine::for_pdf(ds, 3, EngineConfig::with_alpha(0.5));
        let q = pt(5.0, 5.0);
        let out = engine.explain(&q, ObjectId(0)).unwrap();
        assert!(out.cause(ObjectId(1)).is_some());
        assert!(matches!(
            engine.explain_as(ExplainStrategy::Cr, &q, 0.5, ObjectId(0)),
            Err(CrpError::UnsupportedStrategy { .. })
        ));
        // An empty pdf session errors like the discrete path instead of
        // panicking in the index build.
        let empty = ExplainEngine::for_pdf(PdfDataset::new(), 3, EngineConfig::default());
        assert_eq!(
            empty.explain(&q, ObjectId(0)).unwrap_err(),
            CrpError::EmptyDataset
        );
    }
}
