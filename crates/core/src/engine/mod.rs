//! The **ExplainEngine**: a per-dataset session that answers "why is
//! this object not in the (probabilistic) reverse skyline?" through one
//! explicit three-stage pipeline — `filter → refine → fmcs` — with
//! pluggable stage implementations.
//!
//! The seed implementation exposed the paper's algorithms as free
//! functions (`cp`, `cp_unindexed`, `cr`, `naive_i`, `naive_ii`,
//! `oracle_*`) that each required the caller to build and thread the
//! right R-tree. The engine owns that state instead:
//!
//! * the dataset (discrete-sample or continuous-pdf workload),
//! * lazily built R-trees (object MBRs for CP, points for CR), shared
//!   by every explain call,
//! * an [`AtomicQueryStats`] accumulator so total node accesses can be
//!   reported across a rayon-parallel batch.
//!
//! Every algorithm of the paper is a [`ExplainStrategy`] selection over
//! the same pipeline:
//!
//! | strategy | stage 1 (filter) | stage 2 (refine) | stage 3 (search) |
//! |---|---|---|---|
//! | [`Cp`](ExplainStrategy::Cp) | Lemma 2 R-tree windows | Lemmas 4–5 | FMCS + Lemma 6 |
//! | [`CpUnindexed`](ExplainStrategy::CpUnindexed) | Lemma 2 full scan | Lemmas 4–5 | FMCS + Lemma 6 |
//! | [`NaiveI`](ExplainStrategy::NaiveI) | Lemma 2 R-tree windows | (disabled) | exhaustive FMCS |
//! | [`Cr`](ExplainStrategy::Cr) | dominance window | — | Lemma 7 closed form |
//! | [`CrKskyband`](ExplainStrategy::CrKskyband) | dominance window | — | k-skyband closed form |
//! | [`NaiveII`](ExplainStrategy::NaiveII) | dominance window | — | subset verification |
//! | [`OracleCp`](ExplainStrategy::OracleCp)/[`OracleCr`](ExplainStrategy::OracleCr) | whole dataset | — | Definitions 1–2 brute force |
//!
//! [`ExplainEngine::explain_batch`] answers many non-answers in one
//! call, data-parallel over the batch with `rayon` (order-preserving,
//! so results are **bit-identical** to the serial path — a property the
//! test suite pins). Within one non-answer, candidate-level FMCS
//! parallelism is available through [`CpConfig::parallel_fmcs`]
//! whenever the lemma configuration keeps candidates independent.
//!
//! Every stage-1 implementation is **partition-generic**: the same
//! pipelines drive this single-tree session and the
//! [`ShardedExplainEngine`], which splits
//! the dataset across per-shard R-trees (see [`shard`]) and merges
//! per-shard candidate sets (see [`merge`]) into bit-identical
//! outcomes.
//!
//! ```
//! use crp_core::{EngineConfig, ExplainEngine};
//! use crp_geom::Point;
//! use crp_uncertain::{ObjectId, UncertainDataset};
//!
//! let ds = UncertainDataset::from_points(vec![
//!     Point::from([10.0, 10.0]),
//!     Point::from([7.0, 7.0]),
//! ])
//! .unwrap();
//! let engine = ExplainEngine::new(ds, EngineConfig::default()).unwrap();
//! let out = engine
//!     .explain(&Point::from([5.0, 5.0]), ObjectId(0))
//!     .unwrap();
//! assert!(out.causes[0].counterfactual);
//! ```

pub mod budget;
pub(crate) mod cache;
pub mod certain;
pub mod filter;
pub(crate) mod fmcs;
pub mod merge;
pub mod mvcc;
pub(crate) mod pipeline;
pub mod plan;
pub(crate) mod refine;
pub mod session;
pub mod shard;
pub mod window;

pub use budget::{PartialProgress, PlanLimits, StopReason};
pub use plan::{ExplainRequest, PlanCounters, PlanReport};
pub use session::ExplainSession;
pub use shard::{ShardPolicy, ShardedExplainEngine};
pub use window::{
    admission, derive_limits, execute_window, fan_out, Admission, ClientClass, WindowReport,
};

use crate::config::CpConfig;
use crate::error::CrpError;
use crate::oracle::{oracle_cp, oracle_cr, OracleCause};
use crate::types::{Cause, CrpOutcome, RunStats};
use cache::{ExplanationCache, ServeTrace};
use certain::{run_certain, Lemma7ClosedForm, PointTreeDominators, SubsetVerify};
use crp_geom::{HyperRect, Point};
use crp_rtree::{AtomicQueryStats, QueryStats, RTree, RTreeParams, WindowQuery};
use crp_skyline::{build_object_rtree, build_point_rtree};
use crp_uncertain::{
    Epoch, ObjectId, PdfDataset, PdfObject, UncertainDataset, UncertainError, UncertainObject,
    Update,
};
use filter::{FilterStage, SampleWindowFilter, ScanFilter};
use std::sync::OnceLock;

/// Algorithm selection over the shared pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExplainStrategy {
    /// CR for certain data, CP otherwise — what a client that just
    /// wants an explanation should use.
    Auto,
    /// Algorithm 1 (*CP*): R-tree filter + lemma refinement + FMCS.
    Cp,
    /// CP with the filter ablated to a full scan (no index I/O).
    CpUnindexed,
    /// The Naive-I baseline: CP's filter, exhaustive refinement.
    NaiveI {
        /// Subset-examination budget (`None` = unlimited).
        max_subsets: Option<u64>,
    },
    /// The certain-data algorithm *CR* (Lemma 7, verification-free).
    Cr,
    /// CRP for reverse k-skyband non-answers (closed form; `k = 0` is
    /// [`Cr`](ExplainStrategy::Cr)).
    CrKskyband { k: usize },
    /// The Naive-II baseline: CR's filter, subset verification.
    NaiveII {
        /// Subset-examination budget (`None` = unlimited).
        max_subsets: Option<u64>,
    },
    /// Definition-level brute force for probabilistic queries (ground
    /// truth; exponential in the dataset size).
    OracleCp,
    /// Definition-level brute force for certain data.
    OracleCr,
}

impl ExplainStrategy {
    fn name(self) -> &'static str {
        match self {
            ExplainStrategy::Auto => "auto",
            ExplainStrategy::Cp => "cp",
            ExplainStrategy::CpUnindexed => "cp-unindexed",
            ExplainStrategy::NaiveI { .. } => "naive-i",
            ExplainStrategy::Cr => "cr",
            ExplainStrategy::CrKskyband { .. } => "cr-kskyband",
            ExplainStrategy::NaiveII { .. } => "naive-ii",
            ExplainStrategy::OracleCp => "oracle-cp",
            ExplainStrategy::OracleCr => "oracle-cr",
        }
    }
}

/// Session configuration of an [`ExplainEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Probability threshold `α` of the query (ignored by the
    /// certain-data strategies).
    pub alpha: f64,
    /// Strategy used by [`ExplainEngine::explain`] /
    /// [`ExplainEngine::explain_batch`].
    pub strategy: ExplainStrategy,
    /// Lemma switches and budgets for the refinement stages.
    pub cp: CpConfig,
    /// R-tree shape; `None` uses the paper's 4 KiB-page default for the
    /// dataset's dimensionality.
    pub rtree: Option<RTreeParams>,
    /// Run [`ExplainEngine::explain_batch`] data-parallel with rayon.
    pub parallel: bool,
    /// Route stage-1 window filtering through the packed SoA projection
    /// of the R*-tree ([`crp_rtree::PackedRTree`], frozen lazily and
    /// invalidated by [`ExplainEngine::apply`]) instead of the pointer
    /// traversal. Bit-identical candidates and node-access counters
    /// either way; the pointer path is retained as the reference for
    /// before/after sweeps.
    pub use_packed_filter: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            strategy: ExplainStrategy::Auto,
            cp: CpConfig::default(),
            rtree: None,
            parallel: true,
            use_packed_filter: true,
        }
    }
}

impl EngineConfig {
    /// Default configuration at a given `α`.
    pub fn with_alpha(alpha: f64) -> Self {
        Self {
            alpha,
            ..Self::default()
        }
    }

    /// Validates the configuration — every engine constructor calls
    /// this, so misconfigured sessions fail with a typed
    /// [`CrpError::InvalidConfig`] at construction instead of
    /// panicking (degenerate R-tree shapes) or producing garbage
    /// (α outside `(0, 1]`, a zero subset budget) at query time.
    pub fn validate(&self) -> Result<(), CrpError> {
        if !(self.alpha.is_finite() && self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(CrpError::InvalidConfig {
                field: "alpha",
                reason: format!("must be in (0, 1], got {}", self.alpha),
            });
        }
        if let Some(params) = self.rtree {
            if params.min_entries < 1 {
                return Err(CrpError::InvalidConfig {
                    field: "rtree.min_entries",
                    reason: format!("must be ≥ 1, got {}", params.min_entries),
                });
            }
            if params.max_entries < 2 * params.min_entries {
                return Err(CrpError::InvalidConfig {
                    field: "rtree.max_entries",
                    reason: format!(
                        "must be ≥ 2 × min_entries ({} < {})",
                        params.max_entries,
                        2 * params.min_entries
                    ),
                });
            }
        }
        if self.cp.max_subsets == Some(0) {
            return Err(CrpError::InvalidConfig {
                field: "cp.max_subsets",
                reason: "a zero subset budget can never complete a search".into(),
            });
        }
        Ok(())
    }
}

/// Checks the pdf session's discretisation resolution (`resolution^D`
/// integration cells; zero would integrate over nothing).
fn validate_resolution(resolution: usize) -> Result<(), CrpError> {
    if resolution == 0 {
        return Err(CrpError::InvalidConfig {
            field: "resolution",
            reason: "must be ≥ 1".into(),
        });
    }
    Ok(())
}

/// Maps a dataset-mutation failure into the engine's typed error.
fn update_error(e: UncertainError) -> CrpError {
    CrpError::InvalidUpdate {
        reason: e.to_string(),
    }
}

/// The data a session explains over — shared with the sharded engine,
/// which keeps a global `Workload` for validation and matrix building
/// while all index I/O happens in the shards.
#[derive(Clone)]
pub(crate) enum Workload {
    Discrete(UncertainDataset),
    Pdf { ds: PdfDataset, resolution: usize },
}

/// Clones a lazily initialised slot: a built value is cloned into the
/// fork, an unbuilt one stays unbuilt (the fork pays the same lazy
/// build a fresh engine would).
pub(crate) fn clone_slot<T: Clone>(slot: &OnceLock<T>) -> OnceLock<T> {
    let out = OnceLock::new();
    if let Some(value) = slot.get() {
        let _ = out.set(value.clone());
    }
    out
}

/// A per-dataset explain session: owns the dataset, the R-trees and the
/// cross-call accounting. See the [module docs](self) for the pipeline
/// it dispatches.
pub struct ExplainEngine {
    data: Workload,
    config: EngineConfig,
    /// Object-MBR tree (CP filtering) — for pdf workloads, the region
    /// tree. Incrementally patched by [`ExplainEngine::apply`].
    object_tree: OnceLock<RTree<ObjectId>>,
    /// Point tree (CR filtering; certain data only).
    point_tree: OnceLock<RTree<ObjectId>>,
    /// Node accesses, update-path work and cache events accumulated
    /// across every explain/apply call (including parallel batches).
    io: AtomicQueryStats,
    /// Memoised stage-1 rows and outcomes, invalidated geometrically by
    /// [`ExplainEngine::apply`]. See [`cache`].
    cache: ExplanationCache,
}

impl ExplainEngine {
    /// Creates a session over a discrete-sample (or certain) dataset.
    /// Fails with [`CrpError::InvalidConfig`] on an invalid
    /// configuration (see [`EngineConfig::validate`]).
    pub fn new(ds: UncertainDataset, config: EngineConfig) -> Result<Self, CrpError> {
        config.validate()?;
        Ok(Self {
            data: Workload::Discrete(ds),
            config,
            object_tree: OnceLock::new(),
            point_tree: OnceLock::new(),
            io: AtomicQueryStats::new(),
            cache: ExplanationCache::new(),
        })
    }

    /// Creates a session over a continuous-pdf dataset (Section 3.2).
    /// `resolution` controls the midpoint-rule discretisation of
    /// non-answer regions (`resolution^D` cells) and must be ≥ 1.
    pub fn for_pdf(
        ds: PdfDataset,
        resolution: usize,
        config: EngineConfig,
    ) -> Result<Self, CrpError> {
        config.validate()?;
        validate_resolution(resolution)?;
        Ok(Self {
            data: Workload::Pdf { ds, resolution },
            config,
            object_tree: OnceLock::new(),
            point_tree: OnceLock::new(),
            io: AtomicQueryStats::new(),
            cache: ExplanationCache::new(),
        })
    }

    /// The session configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Forks an immutable snapshot of this session: the dataset and any
    /// built trees are cloned (an already-frozen packed image is shared
    /// zero-copy through its `Arc`), while the I/O accumulator and the
    /// explanation cache start fresh — each epoch gets its own cache
    /// generation, so invalidation never reaches across snapshots.
    /// Explains against the fork are bit-identical to explains against
    /// the source at the moment of forking; this is the read-side half
    /// of the MVCC session ([`mvcc::MvccEngine`]).
    pub fn fork(&self) -> Self {
        Self {
            data: self.data.clone(),
            config: self.config,
            object_tree: clone_slot(&self.object_tree),
            point_tree: clone_slot(&self.point_tree),
            io: AtomicQueryStats::new(),
            cache: ExplanationCache::new(),
        }
    }

    /// The discrete dataset of this session.
    ///
    /// # Panics
    ///
    /// Panics when the session was built with [`ExplainEngine::for_pdf`].
    pub fn dataset(&self) -> &UncertainDataset {
        match &self.data {
            Workload::Discrete(ds) => ds,
            Workload::Pdf { .. } => panic!("pdf engine has no discrete dataset"),
        }
    }

    /// The pdf dataset and resolution, when this is a pdf session.
    pub fn pdf_dataset(&self) -> Option<(&PdfDataset, usize)> {
        match &self.data {
            Workload::Discrete(_) => None,
            Workload::Pdf { ds, resolution } => Some((ds, *resolution)),
        }
    }

    fn rtree_params(&self, dim: usize) -> RTreeParams {
        self.config
            .rtree
            .unwrap_or_else(|| RTreeParams::paper_default(dim))
    }

    /// The object-MBR R-tree (regions, for pdf sessions), built on
    /// first use and shared by all subsequent calls.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset (nothing to index).
    pub fn object_tree(&self) -> &RTree<ObjectId> {
        self.object_tree.get_or_init(|| match &self.data {
            Workload::Discrete(ds) => {
                let dim = ds.dim().expect("cannot index an empty dataset");
                build_object_rtree(ds, self.rtree_params(dim))
            }
            Workload::Pdf { ds, .. } => {
                let dim = ds.dim().expect("cannot index an empty dataset");
                crate::pdf::build_pdf_rtree(ds, self.rtree_params(dim))
            }
        })
    }

    /// The point R-tree used by the certain-data strategies, built on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics on an empty, pdf, or genuinely uncertain dataset.
    pub fn point_tree(&self) -> &RTree<ObjectId> {
        self.point_tree.get_or_init(|| {
            let ds = self.dataset();
            assert!(ds.is_certain(), "point tree requires certain data");
            let dim = ds.dim().expect("cannot index an empty dataset");
            build_point_rtree(ds, self.rtree_params(dim))
        })
    }

    /// Total node accesses, update-path work and cache events across
    /// every explain/apply call so far (including parallel batches),
    /// thread-safe.
    pub fn accumulated_io(&self) -> QueryStats {
        let mut stats = self.io.snapshot();
        stats.absorb(self.cache.stats());
        stats
    }

    /// Resets the I/O accumulator, returning the totals so far.
    pub fn reset_io(&self) -> QueryStats {
        let mut stats = self.io.take();
        stats.absorb(self.cache.take_stats());
        stats
    }

    /// The dataset version this session currently serves: advanced by
    /// every applied update.
    pub fn epoch(&self) -> Epoch {
        match &self.data {
            Workload::Discrete(ds) => ds.epoch(),
            Workload::Pdf { ds, .. } => ds.epoch(),
        }
    }

    /// Live (row, outcome) entry counts of the explanation cache.
    pub fn cache_len(&self) -> (usize, usize) {
        self.cache.len()
    }

    /// Applies one update to a discrete-sample session: mutates the
    /// dataset, **incrementally patches** both R-trees (condense +
    /// reinsert; never a bulk rebuild), and evicts exactly the cached
    /// explanations the change could affect (entries whose candidate
    /// region intersects the object's old/new MBR, entries for the
    /// object itself, and — when the dataset's certainty may have
    /// changed — every certain-strategy outcome).
    ///
    /// Returns the new dataset [`Epoch`]. After any sequence of
    /// updates, `explain`/`explain_batch` results are identical to a
    /// fresh engine built on the final dataset (pinned by the
    /// engine-agreement property tests).
    pub fn apply(&mut self, update: Update<UncertainObject>) -> Result<Epoch, CrpError> {
        let Workload::Discrete(_) = &self.data else {
            return Err(CrpError::InvalidUpdate {
                reason: "discrete update applied to a pdf session".into(),
            });
        };
        let was_certain = self.discrete().is_certain();
        let touched = update.id();
        let mut regions: Vec<HyperRect> = Vec::with_capacity(2);
        match update {
            Update::Insert(obj) => {
                let mbr = obj.mbr();
                let certain_point = obj.is_certain().then(|| obj.certain_point().clone());
                self.discrete_mut().push(obj).map_err(update_error)?;
                self.patch_object_tree(None, Some((mbr.clone(), touched)));
                self.patch_point_tree(None, certain_point.map(|p| (p, touched)));
                self.io.absorb(QueryStats {
                    inserts: 1,
                    ..Default::default()
                });
                regions.push(mbr);
            }
            Update::Delete(id) => {
                let old = self
                    .discrete_mut()
                    .remove(id)
                    .ok_or(CrpError::UnknownObject(id))?;
                let old_mbr = old.mbr();
                let old_point = old.is_certain().then(|| old.certain_point().clone());
                self.patch_object_tree(Some((old_mbr.clone(), id)), None);
                self.patch_point_tree(old_point.map(|p| (p, id)), None);
                self.io.absorb(QueryStats {
                    removes: 1,
                    ..Default::default()
                });
                regions.push(old_mbr);
            }
            Update::Replace(obj) => {
                let new_mbr = obj.mbr();
                let new_point = obj.is_certain().then(|| obj.certain_point().clone());
                let old = self.discrete_mut().replace(obj).map_err(update_error)?;
                let old_mbr = old.mbr();
                let old_point = old.is_certain().then(|| old.certain_point().clone());
                self.patch_object_tree(
                    Some((old_mbr.clone(), touched)),
                    Some((new_mbr.clone(), touched)),
                );
                self.patch_point_tree(
                    old_point.map(|p| (p, touched)),
                    new_point.map(|p| (p, touched)),
                );
                self.io.absorb(QueryStats {
                    inserts: 1,
                    removes: 1,
                    ..Default::default()
                });
                regions.push(old_mbr);
                regions.push(new_mbr);
            }
        }
        let flush_certain = !(was_certain && self.discrete().is_certain());
        self.cache.invalidate(touched, &regions, flush_certain);
        self.refreeze_trees();
        Ok(self.discrete().epoch())
    }

    /// [`ExplainEngine::apply`] for continuous-pdf sessions.
    pub fn apply_pdf(&mut self, update: Update<PdfObject>) -> Result<Epoch, CrpError> {
        let Workload::Pdf { .. } = &self.data else {
            return Err(CrpError::InvalidUpdate {
                reason: "pdf update applied to a discrete session".into(),
            });
        };
        let touched = update.id();
        let mut regions: Vec<HyperRect> = Vec::with_capacity(2);
        match update {
            Update::Insert(obj) => {
                let region = obj.region().clone();
                self.pdf_mut().push(obj).map_err(update_error)?;
                self.patch_object_tree(None, Some((region.clone(), touched)));
                self.io.absorb(QueryStats {
                    inserts: 1,
                    ..Default::default()
                });
                regions.push(region);
            }
            Update::Delete(id) => {
                let old = self
                    .pdf_mut()
                    .remove(id)
                    .ok_or(CrpError::UnknownObject(id))?;
                let old_region = old.region().clone();
                self.patch_object_tree(Some((old_region.clone(), id)), None);
                self.io.absorb(QueryStats {
                    removes: 1,
                    ..Default::default()
                });
                regions.push(old_region);
            }
            Update::Replace(obj) => {
                let new_region = obj.region().clone();
                let old = self.pdf_mut().replace(obj).map_err(update_error)?;
                let old_region = old.region().clone();
                self.patch_object_tree(
                    Some((old_region.clone(), touched)),
                    Some((new_region.clone(), touched)),
                );
                self.io.absorb(QueryStats {
                    inserts: 1,
                    removes: 1,
                    ..Default::default()
                });
                regions.push(old_region);
                regions.push(new_region);
            }
        }
        self.cache.invalidate(touched, &regions, false);
        self.refreeze_trees();
        Ok(self.pdf().epoch())
    }

    /// Re-freezes the packed images of whichever trees are built, so
    /// the first post-update explain finds a warm snapshot instead of
    /// paying the rebuild inside its latency budget. Counted in
    /// [`QueryStats::refreezes`]; skipped entirely when the packed
    /// filter is disabled (the pointer traversal never freezes).
    fn refreeze_trees(&mut self) {
        if !self.config.use_packed_filter {
            return;
        }
        for slot in [&mut self.object_tree, &mut self.point_tree] {
            if let Some(tree) = slot.get_mut() {
                tree.refreeze();
                self.io.absorb(tree.take_upkeep());
            }
        }
    }

    fn discrete(&self) -> &UncertainDataset {
        match &self.data {
            Workload::Discrete(ds) => ds,
            Workload::Pdf { .. } => unreachable!("guarded by apply"),
        }
    }

    fn discrete_mut(&mut self) -> &mut UncertainDataset {
        match &mut self.data {
            Workload::Discrete(ds) => ds,
            Workload::Pdf { .. } => unreachable!("guarded by apply"),
        }
    }

    fn pdf(&self) -> &PdfDataset {
        match &self.data {
            Workload::Pdf { ds, .. } => ds,
            Workload::Discrete(_) => unreachable!("guarded by apply_pdf"),
        }
    }

    fn pdf_mut(&mut self) -> &mut PdfDataset {
        match &mut self.data {
            Workload::Pdf { ds, .. } => ds,
            Workload::Discrete(_) => unreachable!("guarded by apply_pdf"),
        }
    }

    fn patch_object_tree(
        &mut self,
        remove: Option<(HyperRect, ObjectId)>,
        insert: Option<(HyperRect, ObjectId)>,
    ) {
        patch_rect_tree(&mut self.object_tree, remove, insert, &self.io);
    }

    fn patch_point_tree(
        &mut self,
        remove: Option<(Point, ObjectId)>,
        insert: Option<(Point, ObjectId)>,
    ) {
        let still_certain = match &self.data {
            // The update already landed in the dataset: a now-uncertain
            // dataset invalidates the point tree outright.
            Workload::Discrete(ds) => ds.is_certain(),
            Workload::Pdf { .. } => false,
        };
        patch_point_tree_slot(
            &mut self.point_tree,
            still_certain,
            remove,
            insert,
            &self.io,
        );
    }

    /// Explains one non-answer with the configured strategy and `α` —
    /// a thin shim over the planner: equivalent to running
    /// [`ExplainRequest::explain`] through [`ExplainSession::run`].
    pub fn explain(&self, q: &Point, an: ObjectId) -> Result<CrpOutcome, CrpError> {
        plan::one(self, ExplainRequest::explain(q, an))
    }

    /// Explains one non-answer with an explicit strategy and `α`.
    #[deprecated(
        since = "0.2.0",
        note = "build an `ExplainRequest` (`.with_strategy(..).with_alpha(..)`) and run it \
                through `ExplainSession::run`, which also plans whole workloads"
    )]
    pub fn explain_as(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
    ) -> Result<CrpOutcome, CrpError> {
        plan::one(
            self,
            ExplainRequest::explain(q, an)
                .with_strategy(strategy)
                .with_alpha(alpha),
        )
    }

    /// Explain with a per-call [`CpConfig`] override — the ablation
    /// experiments sweep lemma switches over one session this way, so
    /// the index is built once per dataset instead of once per
    /// variant. Equivalent to an [`ExplainRequest`] with
    /// `.with_cp(*cp)`.
    pub fn explain_configured(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
        cp: &CpConfig,
    ) -> Result<CrpOutcome, CrpError> {
        plan::one(
            self,
            ExplainRequest::explain(q, an)
                .with_strategy(strategy)
                .with_alpha(alpha)
                .with_cp(*cp),
        )
    }

    /// The pre-planner per-call dispatch, kept as a benchmarking seam:
    /// `plan_sweep` measures the planner's overhead against this
    /// baseline. Not part of the public API surface.
    #[doc(hidden)]
    pub fn explain_direct(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
        cp: &CpConfig,
    ) -> Result<CrpOutcome, CrpError> {
        // The pipelines fold their node accesses into `self.io`
        // themselves (passed as the `io` sink below), so error outcomes
        // — which already paid their tree traversal — are counted too.
        self.dispatch(strategy, q, alpha, an, cp)
    }

    /// Explains a batch of non-answers with the configured strategy,
    /// data-parallel over the batch when the session's `parallel` flag
    /// is set. Result order matches `ans`, and each element is
    /// bit-identical to what [`ExplainEngine::explain`] returns. A
    /// thin shim over [`ExplainRequest::batch`].
    pub fn explain_batch(&self, q: &Point, ans: &[ObjectId]) -> Vec<Result<CrpOutcome, CrpError>> {
        plan::execute(self, &[ExplainRequest::batch(q, ans)]).results
    }

    /// [`ExplainEngine::explain_batch`] with an explicit strategy and
    /// `α`.
    #[deprecated(
        since = "0.2.0",
        note = "build an `ExplainRequest::batch(..).with_strategy(..).with_alpha(..)` and run \
                it through `ExplainSession::run`, which also plans whole workloads"
    )]
    pub fn explain_batch_as(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        ans: &[ObjectId],
    ) -> Vec<Result<CrpOutcome, CrpError>> {
        plan::execute(
            self,
            &[ExplainRequest::batch(q, ans)
                .with_strategy(strategy)
                .with_alpha(alpha)],
        )
        .results
    }

    /// The serial batch path (regardless of the `parallel` flag) — the
    /// reference the parallel path is tested against.
    #[deprecated(
        since = "0.2.0",
        note = "build an `ExplainRequest::batch(..).serial()` and run it through \
                `ExplainSession::run`"
    )]
    pub fn explain_batch_serial_as(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        ans: &[ObjectId],
    ) -> Vec<Result<CrpOutcome, CrpError>> {
        plan::execute(
            self,
            &[ExplainRequest::batch(q, ans)
                .with_strategy(strategy)
                .with_alpha(alpha)
                .serial()],
        )
        .results
    }

    /// The stage-1 output for one non-answer: every candidate cause id
    /// (ascending) — the set the refinement stage consumes, before any
    /// matrix or FMCS work. For pdf sessions these are the region hits
    /// of the per-quadrant windows.
    ///
    /// A [`ShardedExplainEngine`] over the same dataset merges its
    /// per-shard stage-1 outputs to exactly this list (the sharding
    /// contract); the shard-sweep bench pins that and measures the
    /// fan-out's speedup.
    pub fn candidate_ids(&self, q: &Point, an: ObjectId) -> Result<Vec<ObjectId>, CrpError> {
        match &self.data {
            Workload::Discrete(ds) => {
                if ds.is_empty() {
                    return Err(CrpError::EmptyDataset);
                }
                let an_pos = ds.index_of(an).ok_or(CrpError::UnknownObject(an))?;
                let mut stats = RunStats::default();
                let filter = SampleWindowFilter::new(self.filter_view(self.object_tree()));
                let positions = filter.candidates(ds, q, an_pos, &mut stats);
                self.io.absorb(stats.query);
                let mut ids: Vec<ObjectId> = positions
                    .into_iter()
                    .map(|pos| ds.object_at(pos).id())
                    .collect();
                ids.sort_unstable();
                Ok(ids)
            }
            Workload::Pdf { ds, .. } => {
                let tree = self.pdf_source(self.guarded_pdf_tree(ds)?);
                let an_obj = ds.get(an).ok_or(CrpError::UnknownObject(an))?;
                let windows = crate::pdf::pdf_windows(q, an_obj.region());
                let mut stats = RunStats::default();
                let hits = tree.region_hits(&windows, an, &mut stats);
                self.io.absorb(stats.query);
                Ok(hits)
            }
        }
    }

    /// Builds the index a strategy needs *before* a parallel batch, so
    /// tree construction happens once up front instead of inside the
    /// first worker that wins the `OnceLock` race.
    fn prepare(&self, strategy: ExplainStrategy) {
        let strategy = self.resolve(strategy);
        match strategy {
            ExplainStrategy::Cp | ExplainStrategy::NaiveI { .. } if !self.is_empty_data() => {
                self.object_tree();
            }
            ExplainStrategy::Cr
            | ExplainStrategy::CrKskyband { .. }
            | ExplainStrategy::NaiveII { .. } => {
                if let Workload::Discrete(ds) = &self.data {
                    if !ds.is_empty() && ds.is_certain() {
                        self.point_tree();
                    }
                }
            }
            _ => {}
        }
    }

    fn is_empty_data(&self) -> bool {
        match &self.data {
            Workload::Discrete(ds) => ds.is_empty(),
            Workload::Pdf { ds, .. } => ds.is_empty(),
        }
    }

    /// Resolves [`ExplainStrategy::Auto`] against the workload.
    fn resolve(&self, strategy: ExplainStrategy) -> ExplainStrategy {
        match (strategy, &self.data) {
            (ExplainStrategy::Auto, Workload::Discrete(ds))
                if ds.is_certain() && !ds.is_empty() =>
            {
                ExplainStrategy::Cr
            }
            (ExplainStrategy::Auto, _) => ExplainStrategy::Cp,
            (s, _) => s,
        }
    }

    fn dispatch(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
        cp: &CpConfig,
    ) -> Result<CrpOutcome, CrpError> {
        let strategy = self.resolve(strategy);
        match &self.data {
            Workload::Discrete(ds) => match strategy {
                ExplainStrategy::Cp => self.cached_cp_discrete(ds, q, an, alpha, cp),
                ExplainStrategy::CpUnindexed => {
                    pipeline::run_probabilistic(ds, q, an, alpha, cp, &ScanFilter, Some(&self.io))
                }
                ExplainStrategy::NaiveI { max_subsets } => {
                    let config = CpConfig {
                        max_subsets,
                        ..CpConfig::naive()
                    };
                    pipeline::run_probabilistic(
                        ds,
                        q,
                        an,
                        alpha,
                        &config,
                        &SampleWindowFilter::new(self.filter_view(self.guarded_object_tree(ds)?)),
                        Some(&self.io),
                    )
                }
                ExplainStrategy::Cr => {
                    self.cached_certain(ds, strategy, q, alpha, an, cp, &Lemma7ClosedForm { k: 0 })
                }
                ExplainStrategy::CrKskyband { k } => {
                    self.cached_certain(ds, strategy, q, alpha, an, cp, &Lemma7ClosedForm { k })
                }
                ExplainStrategy::NaiveII { max_subsets } => self.cached_certain(
                    ds,
                    strategy,
                    q,
                    alpha,
                    an,
                    cp,
                    &SubsetVerify { max_subsets },
                ),
                ExplainStrategy::OracleCp => {
                    oracle_cp(ds, q, an, alpha).map(|causes| oracle_outcome(ds, causes))
                }
                ExplainStrategy::OracleCr => {
                    oracle_cr(ds, q, an).map(|causes| oracle_outcome(ds, causes))
                }
                ExplainStrategy::Auto => unreachable!("resolved above"),
            },
            Workload::Pdf { ds, resolution } => match strategy {
                ExplainStrategy::Cp => self.cached_cp_pdf(ds, q, an, alpha, *resolution, cp),
                ExplainStrategy::NaiveI { max_subsets } => {
                    let config = CpConfig {
                        max_subsets,
                        ..CpConfig::naive()
                    };
                    pipeline::run_pdf(
                        ds,
                        self.pdf_source(self.guarded_pdf_tree(ds)?),
                        q,
                        an,
                        alpha,
                        *resolution,
                        &config,
                        Some(&self.io),
                    )
                }
                other => Err(CrpError::UnsupportedStrategy {
                    strategy: other.name(),
                    workload: "pdf",
                }),
            },
        }
    }

    /// The indexed CP path with the explanation cache in front of it:
    /// outcome hit → return; row hit → re-run only the α-dependent
    /// refinement over the memoised matrix; miss → full pipeline, then
    /// populate both layers. Served results are identical to a fresh
    /// computation (the cached rows carry their original traversal
    /// stats, and refinement is deterministic). The protocol body is
    /// [`cache::serve_cp_discrete`] — the single seam shared with the
    /// sharded engine and the plan executor.
    fn cached_cp_discrete(
        &self,
        ds: &UncertainDataset,
        q: &Point,
        an: ObjectId,
        alpha: f64,
        cp: &CpConfig,
    ) -> Result<CrpOutcome, CrpError> {
        crate::matrix::with_scratch(|scratch| {
            cache::serve_cp_discrete(
                &self.cache,
                Some(&self.io),
                ds,
                q,
                an,
                alpha,
                cp,
                &mut ServeTrace::default(),
                scratch,
                |an_pos, stats| {
                    let tree = self.guarded_object_tree(ds)?;
                    Ok(pipeline::stage1_probabilistic(
                        ds,
                        q,
                        an_pos,
                        &SampleWindowFilter::new(self.filter_view(tree)),
                        stats,
                    ))
                },
            )
        })
    }

    /// The pdf CP path with the same two-layer cache as
    /// [`ExplainEngine::cached_cp_discrete`].
    fn cached_cp_pdf(
        &self,
        ds: &PdfDataset,
        q: &Point,
        an: ObjectId,
        alpha: f64,
        resolution: usize,
        cp: &CpConfig,
    ) -> Result<CrpOutcome, CrpError> {
        crate::matrix::with_scratch(|scratch| {
            cache::serve_cp_pdf(
                &self.cache,
                Some(&self.io),
                ds,
                q,
                an,
                alpha,
                cp,
                &mut ServeTrace::default(),
                scratch,
                |_windows, stats| {
                    let tree = self.pdf_source(self.guarded_pdf_tree(ds)?);
                    Ok(pipeline::stage1_pdf(ds, tree, q, an, resolution, stats))
                },
            )
        })
    }

    /// The certain-data strategies behind the outcome cache. Entries
    /// are flagged `certain` so updates that may change the dataset's
    /// global certainty flush them; within a certain dataset the
    /// dominance window of `(an, q)` is the full dependence region.
    #[allow(clippy::too_many_arguments)]
    fn cached_certain(
        &self,
        ds: &UncertainDataset,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
        cp: &CpConfig,
        search: &dyn certain::CertainSearch,
    ) -> Result<CrpOutcome, CrpError> {
        // Preconditions first: failing calls stay uncached (and must
        // not consult the cache, whose entries assume they hold).
        if ds.is_empty() || !ds.is_certain() || ds.index_of(an).is_none() {
            return run_certain(
                ds,
                &PointTreeDominators {
                    tree: self.guarded_point_tree(ds)?,
                },
                q,
                an,
                search,
                Some(&self.io),
            );
        }
        if let Some(hit) = self.cache.lookup_outcome(an, q, alpha, strategy, cp) {
            return hit;
        }
        let an_point = ds.get(an).expect("checked above").certain_point();
        let region = crp_geom::dominance_rect(an_point, q);
        let result = run_certain(
            ds,
            &PointTreeDominators {
                tree: self.guarded_point_tree(ds)?,
            },
            q,
            an,
            search,
            Some(&self.io),
        );
        self.cache
            .store_outcome(an, q, alpha, strategy, cp, region, true, &result);
        result
    }

    /// The stage-1 window-filter view of a tree: the packed frozen
    /// image when [`EngineConfig::use_packed_filter`] is on (built
    /// lazily, cached inside the tree, and invalidated by the
    /// generation bump every [`ExplainEngine::apply`] mutation makes),
    /// else the pointer tree itself. Both views satisfy the same
    /// [`WindowQuery`] contract, so candidates and counters are
    /// bit-identical either way.
    fn filter_view<'t>(&self, tree: &'t RTree<ObjectId>) -> &'t (dyn WindowQuery<ObjectId> + Sync) {
        if self.config.use_packed_filter {
            tree.frozen()
        } else {
            tree
        }
    }

    /// [`ExplainEngine::filter_view`] for the pdf pipeline's
    /// [`pipeline::RegionHitSource`] seam.
    fn pdf_source<'t>(&self, tree: &'t RTree<ObjectId>) -> &'t dyn pipeline::RegionHitSource {
        if self.config.use_packed_filter {
            tree.frozen()
        } else {
            tree
        }
    }

    /// The pdf region tree, with empty datasets surfaced as the
    /// pipeline's `EmptyDataset` error instead of an index-build panic.
    fn guarded_pdf_tree(&self, ds: &PdfDataset) -> Result<&RTree<ObjectId>, CrpError> {
        if ds.is_empty() {
            return Err(CrpError::EmptyDataset);
        }
        Ok(self.object_tree())
    }

    /// The object tree, with empty datasets surfaced as the pipeline's
    /// `EmptyDataset` error instead of an index-build panic.
    fn guarded_object_tree(&self, ds: &UncertainDataset) -> Result<&RTree<ObjectId>, CrpError> {
        if ds.is_empty() {
            return Err(CrpError::EmptyDataset);
        }
        Ok(self.object_tree())
    }

    /// The point tree, with the certain-data preconditions surfaced as
    /// pipeline errors instead of index-build panics.
    fn guarded_point_tree(&self, ds: &UncertainDataset) -> Result<&RTree<ObjectId>, CrpError> {
        if ds.is_empty() {
            return Err(CrpError::EmptyDataset);
        }
        if !ds.is_certain() {
            return Err(CrpError::NotCertainData);
        }
        Ok(self.point_tree())
    }
}

/// The engine-side seams of the plan executor: the unsharded session
/// serves stage 1 from its single object tree and accounts traversal
/// in its own accumulator.
impl plan::PlanHost for ExplainEngine {
    fn host_config(&self) -> &EngineConfig {
        &self.config
    }

    fn host_workload(&self) -> &Workload {
        &self.data
    }

    fn host_cache(&self) -> &ExplanationCache {
        &self.cache
    }

    fn host_io(&self) -> Option<&AtomicQueryStats> {
        Some(&self.io)
    }

    fn resolve_strategy(&self, strategy: ExplainStrategy) -> ExplainStrategy {
        self.resolve(strategy)
    }

    fn prepare_strategy(&self, strategy: ExplainStrategy) {
        self.prepare(strategy);
    }

    fn cp_pre_guard(&self) -> Result<(), CrpError> {
        // The unsharded session lets pipeline validation produce the
        // empty-dataset error (after the outcome-cache lookup), exactly
        // like the pre-planner entry points.
        Ok(())
    }

    fn per_call(
        &self,
        strategy: ExplainStrategy,
        q: &Point,
        alpha: f64,
        an: ObjectId,
        cp: &CpConfig,
        _fan_parallel: bool,
    ) -> Result<CrpOutcome, CrpError> {
        self.dispatch(strategy, q, alpha, an, cp)
    }

    fn fresh_stage1_discrete(
        &self,
        q: &Point,
        an_pos: usize,
        _fan_parallel: bool,
        stats: &mut RunStats,
    ) -> Result<pipeline::StageOne, CrpError> {
        let ds = self.discrete();
        let tree = self.guarded_object_tree(ds)?;
        Ok(pipeline::stage1_probabilistic(
            ds,
            q,
            an_pos,
            &SampleWindowFilter::new(self.filter_view(tree)),
            stats,
        ))
    }

    fn fresh_stage1_pdf(
        &self,
        q: &Point,
        an: ObjectId,
        resolution: usize,
        _fan_parallel: bool,
        stats: &mut RunStats,
    ) -> Result<pipeline::StageOne, CrpError> {
        let ds = self.pdf();
        let tree = self.pdf_source(self.guarded_pdf_tree(ds)?);
        Ok(pipeline::stage1_pdf(ds, tree, q, an, resolution, stats))
    }

    fn coverage_ids(
        &self,
        region: &HyperRect,
        exclude: ObjectId,
        _fan_parallel: bool,
        stats: &mut RunStats,
    ) -> Result<Vec<ObjectId>, CrpError> {
        let tree = match &self.data {
            Workload::Discrete(ds) => self.guarded_object_tree(ds)?,
            Workload::Pdf { ds, .. } => self.guarded_pdf_tree(ds)?,
        };
        Ok(pipeline::tree_region_hits(
            self.filter_view(tree),
            std::slice::from_ref(region),
            exclude,
            &mut stats.query,
        ))
    }

    /// The unsharded engine fuses a plan's traversing units into one
    /// grouped descent of the packed image. Per-group hit lists and
    /// counters are exactly what each unit's solo descent produces
    /// (the packed traversal threads group liveness down the tree), so
    /// planned outcomes — including their per-explain `QueryStats` —
    /// stay bit-identical to unfused execution; only the *physical*
    /// node reads shrink, which the `filter_sweep` bench measures.
    fn fused_unit_hits(
        &self,
        groups: &[plan::FusedGroup],
    ) -> Option<Vec<(Vec<ObjectId>, QueryStats)>> {
        if !self.config.use_packed_filter || self.is_empty_data() {
            return None;
        }
        let packed = self.object_tree().frozen();
        let window_refs: Vec<&[HyperRect]> = groups.iter().map(|g| g.windows.as_slice()).collect();
        let mut shared = QueryStats::default();
        let mut per_group = vec![QueryStats::default(); groups.len()];
        let mut hits: Vec<Vec<ObjectId>> = vec![Vec::new(); groups.len()];
        packed.visit_grouped_stats(
            &window_refs,
            &mut shared,
            Some(&mut per_group),
            &mut |g, &id| {
                if id != groups[g].exclude {
                    hits[g].push(id);
                }
                true
            },
        );
        // The shared physical cost stays out of the session I/O
        // accumulator on purpose: the session metric is the sum of
        // logical per-query costs (the paper's node-access measure),
        // which the per-group counters preserve exactly.
        Some(
            hits.into_iter()
                .zip(per_group)
                .map(|(mut h, qs)| {
                    h.sort_unstable();
                    h.dedup();
                    (h, qs)
                })
                .collect(),
        )
    }
}

/// Incrementally patches a lazily built object/region tree for one
/// update — `remove` then `insert`, folding the maintenance counters
/// (reinserts; the logical insert/remove is counted by the caller's
/// `apply`) into `io`. An unbuilt tree needs no patch: it will be
/// built lazily from the current dataset. The rare dimension-switch
/// case (the dataset was emptied and restarted with different
/// dimensionality) drops the tree for a lazy rebuild instead.
///
/// The single implementation behind both the unsharded engine and
/// every shard — one body, so the incremental-maintenance invariants
/// cannot drift between them.
pub(crate) fn patch_rect_tree(
    slot: &mut OnceLock<RTree<ObjectId>>,
    remove: Option<(HyperRect, ObjectId)>,
    insert: Option<(HyperRect, ObjectId)>,
    io: &AtomicQueryStats,
) {
    let dim = insert.as_ref().or(remove.as_ref()).map(|(r, _)| r.dim());
    match (slot.get().map(|t| t.dim()), dim) {
        (Some(td), Some(d)) if td != d => {
            *slot = OnceLock::new();
            return;
        }
        (None, _) => return,
        _ => {}
    }
    let tree = slot.get_mut().expect("checked above");
    if let Some((rect, id)) = remove {
        let removed = tree.remove(&rect, &id);
        debug_assert!(removed, "indexed object {id} missing from the tree");
    }
    if let Some((rect, id)) = insert {
        tree.insert(rect, id);
    }
    let mut upkeep = tree.take_upkeep();
    upkeep.inserts = 0;
    upkeep.removes = 0;
    io.absorb(upkeep);
}

/// [`patch_rect_tree`] for the certain-data point tree. Non-certain
/// objects cannot be indexed as points: when the dataset (or shard) is
/// no longer certain, or the touched object had no indexable point on
/// either side, the tree is dropped and rebuilt lazily if/when the
/// data is certain again.
pub(crate) fn patch_point_tree_slot(
    slot: &mut OnceLock<RTree<ObjectId>>,
    still_certain: bool,
    remove: Option<(Point, ObjectId)>,
    insert: Option<(Point, ObjectId)>,
    io: &AtomicQueryStats,
) {
    if slot.get().is_none() {
        return;
    }
    if !still_certain || (remove.is_none() && insert.is_none()) {
        // `remove`/`insert` are both `None` exactly when the update
        // touched a non-certain object, whose point was never indexed —
        // but an earlier certain version of it may be. Dropping the
        // tree is the conservative correct move.
        *slot = OnceLock::new();
        return;
    }
    let (remove, insert) = (
        remove.map(|(p, id)| (HyperRect::from_point(&p), id)),
        insert.map(|(p, id)| (HyperRect::from_point(&p), id)),
    );
    patch_rect_tree(slot, remove, insert, io);
}

/// Converts the oracle's position-level causes into the engine's
/// id-level [`CrpOutcome`] — shared with the sharded engine's oracle
/// dispatch.
pub(crate) fn oracle_outcome(
    ds: &UncertainDataset,
    causes: Vec<(ObjectId, OracleCause)>,
) -> CrpOutcome {
    let causes = causes
        .into_iter()
        .map(|(id, c)| Cause {
            id,
            responsibility: c.responsibility(),
            counterfactual: c.min_gamma.is_empty(),
            min_contingency: c
                .min_gamma
                .into_iter()
                .map(|pos| ds.object_at(pos).id())
                .collect(),
        })
        .collect();
    CrpOutcome {
        causes,
        stats: Default::default(),
    }
}

#[cfg(test)]
// The deprecated `explain_*_as` entry points are exercised on purpose:
// these tests pin that the thin shims stay bit-identical to the
// planner path they forward into.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crp_uncertain::UncertainObject;

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    fn uncertain_fixture() -> UncertainDataset {
        UncertainDataset::from_objects(vec![
            UncertainObject::certain(ObjectId(0), pt(10.0, 10.0)),
            UncertainObject::certain(ObjectId(1), pt(7.0, 7.0)),
            UncertainObject::with_equal_probs(ObjectId(2), vec![pt(8.0, 9.0), pt(30.0, 30.0)])
                .unwrap(),
            UncertainObject::certain(ObjectId(3), pt(40.0, 40.0)),
        ])
        .unwrap()
    }

    #[test]
    #[allow(deprecated)]
    fn engine_matches_free_cp() {
        let ds = uncertain_fixture();
        let engine = ExplainEngine::new(ds.clone(), EngineConfig::with_alpha(0.75))
            .expect("valid engine config");
        let tree = build_object_rtree(&ds, RTreeParams::paper_default(2));
        let q = pt(5.0, 5.0);
        let a = engine.explain(&q, ObjectId(0)).unwrap();
        let b = crate::cp(&ds, &tree, &q, ObjectId(0), 0.75, &CpConfig::default()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            engine.accumulated_io().node_accesses,
            a.stats.query.node_accesses
        );
    }

    #[test]
    fn auto_resolves_by_workload() {
        let certain = UncertainDataset::from_points(vec![pt(10.0, 10.0), pt(7.0, 7.0)]).unwrap();
        let engine =
            ExplainEngine::new(certain, EngineConfig::default()).expect("valid engine config");
        // Auto on certain data runs CR: no α involved, single
        // counterfactual cause.
        let out = engine.explain(&pt(5.0, 5.0), ObjectId(0)).unwrap();
        assert!(out.causes[0].counterfactual);

        let uncertain = uncertain_fixture();
        let engine = ExplainEngine::new(uncertain, EngineConfig::with_alpha(0.75))
            .expect("valid engine config");
        let out = engine.explain(&pt(5.0, 5.0), ObjectId(0)).unwrap();
        assert_eq!(out.causes.len(), 2, "CP path found both causes");
    }

    #[test]
    fn batch_parallel_matches_serial_exactly() {
        let ds = uncertain_fixture();
        let engine =
            ExplainEngine::new(ds, EngineConfig::with_alpha(0.75)).expect("valid engine config");
        let q = pt(5.0, 5.0);
        let ids: Vec<ObjectId> = (0..4).map(ObjectId).collect();
        let par = engine.explain_batch(&q, &ids);
        let ser = engine.explain_batch_serial_as(ExplainStrategy::Auto, &q, 0.75, &ids);
        assert_eq!(par, ser);
    }

    #[test]
    fn strategies_share_the_session() {
        let ds = UncertainDataset::from_points(vec![
            pt(10.0, 10.0),
            pt(7.0, 7.0),
            pt(6.0, 8.0),
            pt(8.0, 6.0),
        ])
        .unwrap();
        let engine = ExplainEngine::new(ds, EngineConfig::default()).expect("valid engine config");
        let q = pt(5.0, 5.0);
        let cr = engine
            .explain_as(ExplainStrategy::Cr, &q, 0.5, ObjectId(0))
            .unwrap();
        let naive = engine
            .explain_as(
                ExplainStrategy::NaiveII { max_subsets: None },
                &q,
                0.5,
                ObjectId(0),
            )
            .unwrap();
        let oracle = engine
            .explain_as(ExplainStrategy::OracleCr, &q, 0.5, ObjectId(0))
            .unwrap();
        assert_eq!(cr.causes.len(), naive.causes.len());
        assert_eq!(cr.causes.len(), oracle.causes.len());
        for ((a, b), c) in cr.causes.iter().zip(&naive.causes).zip(&oracle.causes) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.id, c.id);
            assert_eq!(a.min_contingency.len(), b.min_contingency.len());
            assert_eq!(a.min_contingency.len(), c.min_contingency.len());
        }
        // The kskyband generalisation at k = 0 agrees with CR.
        let ksky = engine
            .explain_as(ExplainStrategy::CrKskyband { k: 0 }, &q, 0.5, ObjectId(0))
            .unwrap();
        assert_eq!(cr, ksky);
    }

    #[test]
    fn invalid_configs_are_rejected_at_construction() {
        let ds = uncertain_fixture();
        for alpha in [0.0, -0.25, 1.5, f64::NAN, f64::INFINITY] {
            let err = ExplainEngine::new(ds.clone(), EngineConfig::with_alpha(alpha))
                .err()
                .expect("construction must fail");
            assert!(
                matches!(err, CrpError::InvalidConfig { field: "alpha", .. }),
                "alpha = {alpha}: {err:?}"
            );
        }
        let bad_tree = EngineConfig {
            rtree: Some(RTreeParams {
                min_entries: 0,
                ..RTreeParams::with_fanout(8)
            }),
            ..EngineConfig::default()
        };
        assert!(matches!(
            ExplainEngine::new(ds.clone(), bad_tree)
                .err()
                .expect("construction must fail"),
            CrpError::InvalidConfig {
                field: "rtree.min_entries",
                ..
            }
        ));
        let lopsided = EngineConfig {
            rtree: Some(RTreeParams {
                min_entries: 5,
                max_entries: 8,
                ..RTreeParams::with_fanout(8)
            }),
            ..EngineConfig::default()
        };
        assert!(matches!(
            ExplainEngine::new(ds.clone(), lopsided)
                .err()
                .expect("construction must fail"),
            CrpError::InvalidConfig {
                field: "rtree.max_entries",
                ..
            }
        ));
        let zero_budget = EngineConfig {
            cp: CpConfig {
                max_subsets: Some(0),
                ..CpConfig::default()
            },
            ..EngineConfig::default()
        };
        assert!(matches!(
            ExplainEngine::new(ds.clone(), zero_budget)
                .err()
                .expect("construction must fail"),
            CrpError::InvalidConfig {
                field: "cp.max_subsets",
                ..
            }
        ));
        // The pdf constructor additionally validates the resolution.
        assert!(matches!(
            ExplainEngine::for_pdf(PdfDataset::new(), 0, EngineConfig::default())
                .err()
                .expect("construction must fail"),
            CrpError::InvalidConfig {
                field: "resolution",
                ..
            }
        ));
        // The sharded constructors run the same validation.
        assert!(matches!(
            ShardedExplainEngine::new(ds, EngineConfig::with_alpha(7.0), 2, ShardPolicy::Spatial)
                .err()
                .expect("construction must fail"),
            CrpError::InvalidConfig { field: "alpha", .. }
        ));
        assert!(matches!(
            ShardedExplainEngine::for_pdf(
                PdfDataset::new(),
                0,
                EngineConfig::default(),
                2,
                ShardPolicy::RoundRobin
            )
            .err()
            .expect("construction must fail"),
            CrpError::InvalidConfig {
                field: "resolution",
                ..
            }
        ));
    }

    #[test]
    fn apply_patches_trees_and_advances_epochs() {
        use crp_uncertain::Epoch;
        let mut engine = ExplainEngine::new(uncertain_fixture(), EngineConfig::with_alpha(0.75))
            .expect("valid engine config");
        let q = pt(5.0, 5.0);
        // Build the tree and a baseline explanation.
        let before = engine.explain(&q, ObjectId(0)).unwrap();
        assert!(!before.causes.is_empty());
        let epoch0 = engine.epoch();
        assert_eq!(epoch0, Epoch(4), "construction pushed four objects");

        // Insert a new dominator between the non-answer and the query.
        let e1 = engine
            .apply(Update::Insert(UncertainObject::certain(
                ObjectId(9),
                pt(6.5, 6.5),
            )))
            .unwrap();
        assert_eq!(e1, epoch0.next());
        let after_insert = engine.explain(&q, ObjectId(0)).unwrap();
        assert!(
            after_insert.cause(ObjectId(9)).is_some(),
            "inserted object must become a cause"
        );

        // Delete it again: back to the original causes.
        let e2 = engine.apply(Update::Delete(ObjectId(9))).unwrap();
        assert!(e2 > e1);
        let after_delete = engine.explain(&q, ObjectId(0)).unwrap();
        assert_eq!(after_delete.causes, before.causes);

        // Replace moves an object out of the window: cause disappears.
        engine
            .apply(Update::Replace(UncertainObject::certain(
                ObjectId(1),
                pt(90.0, 90.0),
            )))
            .unwrap();
        let after_replace = engine.explain(&q, ObjectId(0)).unwrap();
        assert!(after_replace.cause(ObjectId(1)).is_none());

        // The update-path counters surfaced in the session totals.
        let io = engine.accumulated_io();
        assert_eq!(io.inserts, 2, "insert + replace");
        assert_eq!(io.removes, 2, "delete + replace");
        assert!(io.cache_evictions > 0, "updates evicted cached entries");
        // Each update re-froze the packed image eagerly (the object
        // tree was warm before the first apply; the point tree is never
        // built for this uncertain fixture), so the first post-update
        // explain found a warm snapshot.
        assert_eq!(io.refreezes, 3, "one eager refreeze per applied update");

        // Error paths: unknown delete, duplicate insert, wrong workload.
        assert_eq!(
            engine.apply(Update::Delete(ObjectId(42))).unwrap_err(),
            CrpError::UnknownObject(ObjectId(42))
        );
        assert!(matches!(
            engine
                .apply(Update::Insert(UncertainObject::certain(
                    ObjectId(0),
                    pt(1.0, 1.0)
                )))
                .unwrap_err(),
            CrpError::InvalidUpdate { .. }
        ));
        assert!(matches!(
            engine.apply_pdf(Update::Delete(ObjectId(0))).unwrap_err(),
            CrpError::InvalidUpdate { .. }
        ));
    }

    #[test]
    fn alpha_sweep_hits_the_row_cache() {
        let engine = ExplainEngine::new(uncertain_fixture(), EngineConfig::with_alpha(0.75))
            .expect("valid engine config");
        let q = pt(5.0, 5.0);
        let first = engine
            .explain_as(ExplainStrategy::Cp, &q, 0.75, ObjectId(0))
            .unwrap();
        let paid = engine.accumulated_io().node_accesses;
        assert!(paid > 0);
        // Different α over the same non-answer: stage 1 is served from
        // the row cache — no further node accesses — and the outcome
        // stats still replay the original traversal cost.
        let swept = engine
            .explain_as(ExplainStrategy::Cp, &q, 0.25, ObjectId(0))
            .unwrap();
        assert_eq!(engine.accumulated_io().node_accesses, paid);
        assert_eq!(
            swept.stats.query.node_accesses,
            first.stats.query.node_accesses
        );
        assert_eq!(
            swept.stats.query.leaf_accesses,
            first.stats.query.leaf_accesses
        );
        // The refinement re-ran at the new α: its evaluator taps are
        // per-call counters, not replayed traversal.
        assert!(swept.stats.query.eval_fast + swept.stats.query.eval_slow > 0);
        // Identical request: outcome cache, bit-identical result.
        let repeat = engine
            .explain_as(ExplainStrategy::Cp, &q, 0.75, ObjectId(0))
            .unwrap();
        assert_eq!(repeat, first);
        let io = engine.accumulated_io();
        assert!(io.cache_hits >= 2, "row hit + outcome hit, got {io:?}");
        let (rows, outcomes) = engine.cache_len();
        assert_eq!(rows, 1);
        assert_eq!(outcomes, 2);
    }

    #[test]
    fn invalidated_explains_coalesce_on_one_computation() {
        // The first-reader stampede: after an update invalidates the
        // cache, many concurrent explains for the same (an, q, α) must
        // coalesce on a single pipeline computation (one traversal, one
        // eval burst) instead of all recomputing.
        let q = pt(5.0, 5.0);
        let make = || {
            let mut engine =
                ExplainEngine::new(uncertain_fixture(), EngineConfig::with_alpha(0.75))
                    .expect("valid engine config");
            let _ = engine.explain(&q, ObjectId(0)).unwrap(); // warm the cache
            engine
                .apply(Update::Insert(UncertainObject::certain(
                    ObjectId(9),
                    pt(6.5, 6.5),
                )))
                .unwrap();
            engine.reset_io();
            engine
        };

        // Reference: what exactly one fresh post-invalidation explain
        // pays (traversal + the single eval_fast/eval_slow burst).
        let solo = make();
        let baseline = solo.explain(&q, ObjectId(0)).unwrap();
        let one_burst = solo.accumulated_io();
        assert!(
            one_burst.node_accesses > 0,
            "fresh explain pays a traversal"
        );
        assert!(
            baseline.stats.query.eval_fast + baseline.stats.query.eval_slow > 0,
            "refinement ran"
        );

        // Eight concurrent explains against one invalidated session.
        let shared = make();
        let outcomes: Vec<CrpOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| shared.explain(&q, ObjectId(0)).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every thread sees the leader's outcome, bit-identical down to
        // the replayed traversal cost and evaluator taps.
        for out in &outcomes {
            assert_eq!(*out, baseline);
        }
        let io = shared.accumulated_io();
        // Exactly one burst was paid: the session totals show a single
        // fresh traversal, not eight.
        assert_eq!(io.node_accesses, one_burst.node_accesses);
        // The other seven explains were served from the outcome layer
        // (waiting out the leader, or hitting the cache outright).
        assert_eq!(io.cache_hits, 7, "got {io:?}");
    }

    #[test]
    fn pdf_workload_supports_cp_only() {
        use crp_geom::HyperRect;
        use crp_uncertain::PdfObject;
        let ds = PdfDataset::from_objects(vec![
            PdfObject::uniform(ObjectId(0), HyperRect::new(pt(9.5, 9.5), pt(10.5, 10.5))),
            PdfObject::uniform(ObjectId(1), HyperRect::new(pt(6.9, 6.9), pt(7.1, 7.1))),
        ])
        .unwrap();
        let engine = ExplainEngine::for_pdf(ds, 3, EngineConfig::with_alpha(0.5))
            .expect("valid engine config");
        let q = pt(5.0, 5.0);
        let out = engine.explain(&q, ObjectId(0)).unwrap();
        assert!(out.cause(ObjectId(1)).is_some());
        assert!(matches!(
            engine.explain_as(ExplainStrategy::Cr, &q, 0.5, ObjectId(0)),
            Err(CrpError::UnsupportedStrategy { .. })
        ));
        // An empty pdf session errors like the discrete path instead of
        // panicking in the index build.
        let empty = ExplainEngine::for_pdf(PdfDataset::new(), 3, EngineConfig::default())
            .expect("valid engine config");
        assert_eq!(
            empty.explain(&q, ObjectId(0)).unwrap_err(),
            CrpError::EmptyDataset
        );
    }
}
