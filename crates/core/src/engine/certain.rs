//! The certain-data pipeline behind CR, Naive-II and the reverse
//! k-skyband extension.
//!
//! All three share stage 1 — one dominance-window query collecting the
//! dominators of `q` w.r.t. `an` — and differ only in the verification
//! stage:
//!
//! * [`Lemma7ClosedForm`] — verification-free: every dominator is an
//!   actual cause with contingency set `Cc − {c}` (Eq. 4), generalised
//!   to the k-skyband closed form `r = 1/(|D| − k)`,
//! * [`SubsetVerify`] — Naive-II's per-candidate ascending-cardinality
//!   subset enumeration, kept as the baseline the figures compare
//!   against.

use crate::combinations::for_each_combination;
use crate::error::CrpError;
use crate::types::{Cause, CrpOutcome, RunStats};
use crp_geom::{dominance_rect, dominates, Point};
use crp_rtree::{AtomicQueryStats, RTree};
use crp_uncertain::{ObjectId, UncertainDataset};

/// Stage 1 of the certain pipeline, abstracted over the partition
/// layout: produces the ids of every object dominating `q` w.r.t. the
/// non-answer (sorted, deduplicated, excluding the non-answer itself).
///
/// Implementations: [`PointTreeDominators`] (the single global point
/// tree of an unsharded session) and the shard fan-out of
/// [`super::shard::ShardedExplainEngine`], which queries one point tree
/// per shard and merges. Both produce the identical dominator list, so
/// everything downstream of stage 1 is partition-agnostic.
pub(crate) trait DominatorSource: Sync {
    fn dominators(
        &self,
        q: &Point,
        an: &Point,
        an_id: ObjectId,
        stats: &mut RunStats,
    ) -> Vec<ObjectId>;
}

/// The unsharded stage 1: one window query against the global point
/// tree.
pub(crate) struct PointTreeDominators<'t> {
    pub tree: &'t RTree<ObjectId>,
}

impl DominatorSource for PointTreeDominators<'_> {
    fn dominators(
        &self,
        q: &Point,
        an: &Point,
        an_id: ObjectId,
        stats: &mut RunStats,
    ) -> Vec<ObjectId> {
        let mut dominators = collect_dominators(self.tree, q, an, an_id, &mut stats.query);
        dominators.sort_unstable();
        dominators.dedup();
        dominators
    }
}

/// One dominance-window traversal of a point tree: everything inside
/// the dominance rectangle of `(an, q)`, refined by the exact
/// strictness check. Unsorted; shared by the single-tree source and the
/// per-shard fan-out.
pub(crate) fn collect_dominators(
    tree: &RTree<ObjectId>,
    q: &Point,
    an: &Point,
    an_id: ObjectId,
    query: &mut crp_rtree::QueryStats,
) -> Vec<ObjectId> {
    let window = dominance_rect(an, q);
    let mut dominators: Vec<ObjectId> = Vec::new();
    tree.range_intersect(&window, query, |rect, &id| {
        if id != an_id && dominates(rect.lo(), an, q) {
            dominators.push(id);
        }
    });
    dominators
}

/// Stage 2+3 of the certain pipeline: turns the dominator list into
/// causes (or rejects the object as an answer).
pub trait CertainSearch: Sync {
    fn causes(&self, dominators: &[ObjectId], stats: &mut RunStats)
        -> Result<Vec<Cause>, CrpError>;
}

/// Lemma 7 (and its k-skyband generalisation): every dominator is an
/// actual cause; no verification is performed. `k = 0` is exactly CR.
pub struct Lemma7ClosedForm {
    pub k: usize,
}

impl CertainSearch for Lemma7ClosedForm {
    fn causes(
        &self,
        dominators: &[ObjectId],
        stats: &mut RunStats,
    ) -> Result<Vec<Cause>, CrpError> {
        if dominators.len() <= self.k {
            // an is inside the k-skyband: an answer.
            return Err(CrpError::NotANonAnswer { prob: 1.0 });
        }
        let gamma_size = dominators.len() - self.k - 1;
        let responsibility = 1.0 / (dominators.len() - self.k) as f64;
        let causes = dominators
            .iter()
            .map(|&id| Cause {
                id,
                responsibility,
                // Witness minimal set: the first |D|−k−1 other dominators.
                min_contingency: dominators
                    .iter()
                    .copied()
                    .filter(|&o| o != id)
                    .take(gamma_size)
                    .collect(),
                counterfactual: gamma_size == 0,
            })
            .collect();
        if gamma_size == 0 {
            stats.counterfactuals = dominators.len();
        }
        Ok(causes)
    }
}

/// Naive-II: verifies each candidate by enumerating subsets of the
/// other candidates in ascending cardinality and testing both
/// contingency conditions — the insight-free baseline whose cost IS the
/// motivation for Lemma 7.
pub struct SubsetVerify {
    pub max_subsets: Option<u64>,
}

impl CertainSearch for SubsetVerify {
    fn causes(
        &self,
        dominators: &[ObjectId],
        stats: &mut RunStats,
    ) -> Result<Vec<Cause>, CrpError> {
        if dominators.is_empty() {
            return Err(CrpError::NotANonAnswer { prob: 1.0 });
        }
        // For certain data, `an` is an answer on P − X exactly when X
        // covers all candidates. The naive algorithm does not exploit
        // this (that insight IS Lemma 7); it enumerates subsets in
        // ascending cardinality and tests both contingency conditions
        // per subset, which is what makes it slow.
        let k_total = dominators.len();
        let mut budget_hit = None;
        let mut causes: Vec<Cause> = Vec::new();
        let cancel = super::budget::active();
        let mut cancel_err: Option<CrpError> = None;
        let mut uncharged: u64 = 0;
        for cc in 0..k_total {
            // Plan-budget boundary: settle the previous candidate's
            // subset charge and poll before starting the next one.
            if let Some(c) = &cancel {
                c.charge_subsets(uncharged);
                uncharged = 0;
                c.check()?;
            }
            let others: Vec<ObjectId> = dominators
                .iter()
                .copied()
                .filter(|&id| id != dominators[cc])
                .collect();
            let mut found: Option<Vec<ObjectId>> = None;
            'sizes: for k in 0..=others.len() {
                let stop = for_each_combination(others.len(), k, |combo| {
                    stats.subsets_examined += 1;
                    if let Some(max) = self.max_subsets {
                        if stats.subsets_examined > max {
                            budget_hit = Some(stats.subsets_examined);
                            return true;
                        }
                    }
                    uncharged += 1;
                    if uncharged >= super::budget::CHECK_INTERVAL {
                        if let Some(c) = &cancel {
                            c.charge_subsets(uncharged);
                            if let Err(e) = c.check() {
                                cancel_err = Some(e);
                                return true;
                            }
                        }
                        uncharged = 0;
                    }
                    stats.prsq_evaluations += 2;
                    // Condition (i): a dominator survives in P − Γ (cc
                    // does, always). Condition (ii): no dominator in
                    // P − Γ − {cc}, i.e. the combination covers every
                    // other candidate.
                    let covers_all = combo.len() == others.len();
                    if covers_all {
                        found = Some(combo.iter().map(|&i| others[i]).collect());
                        return true;
                    }
                    false
                });
                if budget_hit.is_some() {
                    return Err(CrpError::BudgetExhausted {
                        examined: stats.subsets_examined,
                    });
                }
                if let Some(e) = cancel_err.take() {
                    return Err(e);
                }
                if stop && found.is_some() {
                    break 'sizes;
                }
            }
            let gamma = found.expect("the full candidate set always verifies");
            causes.push(Cause {
                id: dominators[cc],
                responsibility: 1.0 / (1.0 + gamma.len() as f64),
                counterfactual: gamma.is_empty(),
                min_contingency: gamma,
            });
        }
        if let Some(c) = &cancel {
            c.charge_subsets(uncharged);
        }
        if k_total == 1 {
            stats.counterfactuals = 1;
        }
        Ok(causes)
    }
}

/// The certain-data pipeline: validate, run the shared window filter
/// (stage 1, partition-generic through [`DominatorSource`]), then the
/// selected verification stage. `io`, when given, receives the call's
/// node accesses whether it succeeds or errors (sharded sessions
/// account per shard inside the source instead).
pub(crate) fn run_certain(
    ds: &UncertainDataset,
    source: &dyn DominatorSource,
    q: &Point,
    an_id: ObjectId,
    search: &dyn CertainSearch,
    io: Option<&AtomicQueryStats>,
) -> Result<CrpOutcome, CrpError> {
    let mut stats = RunStats::default();
    let result = run_certain_inner(ds, source, q, an_id, search, &mut stats);
    if let Some(io) = io {
        io.absorb(stats.query);
    }
    result.map(|causes| CrpOutcome { causes, stats })
}

fn run_certain_inner(
    ds: &UncertainDataset,
    source: &dyn DominatorSource,
    q: &Point,
    an_id: ObjectId,
    search: &dyn CertainSearch,
    stats: &mut RunStats,
) -> Result<Vec<crate::types::Cause>, CrpError> {
    if ds.is_empty() {
        return Err(CrpError::EmptyDataset);
    }
    if !ds.is_certain() {
        return Err(CrpError::NotCertainData);
    }
    let an_pos = ds.index_of(an_id).ok_or(CrpError::UnknownObject(an_id))?;
    let an = ds.object_at(an_pos).certain_point();

    // Stage 1: the dominator window query, fanned out across however
    // many partitions the source spans.
    let dominators = source.dominators(q, an, an_id, stats);
    stats.candidates = dominators.len();

    if dominators.is_empty() {
        // Nothing dominates q w.r.t. an: an is a reverse skyline object.
        return Err(CrpError::NotANonAnswer { prob: 1.0 });
    }

    search.causes(&dominators, stats)
}
