//! Pipeline stage 1 — **filter**: candidate-cause discovery.
//!
//! Per Lemma 1 only objects that dominate `q` w.r.t. some sample of the
//! non-answer with positive probability can be causes, so stage 1's job
//! is to find exactly those objects. Implementations:
//!
//! * [`SampleWindowFilter`] — Lemma 2: one multi-window R-tree
//!   traversal over the dominance rectangles of `an`'s samples (the
//!   `RecList` of Algorithm 1), then exact dominance refinement. The
//!   filter of CP and Naive-I.
//! * [`ScanFilter`] — the same candidate set by a full scan (every
//!   object tested against Lemma 2 exactly); the filter-ablation
//!   baseline behind `cp_unindexed`.
//!
//! The certain-data window filter of CR / Naive-II / the k-skyband
//! extension lives in [`super::certain`], where its output (dominator
//! *ids*) feeds a verification-free closed form rather than a matrix.

use crate::types::RunStats;
use crp_geom::{dominance_rect, HyperRect, Point};
use crp_rtree::{QueryStats, RTree, WindowQuery};
use crp_skyline::dominance_probability;
use crp_uncertain::{ObjectId, UncertainDataset, UncertainObject};

/// Stage 1 of the probabilistic pipeline: produces the dataset
/// positions of every candidate cause of `an` (sorted, deduplicated,
/// excluding `an` itself).
pub trait FilterStage: Sync {
    fn candidates(
        &self,
        ds: &UncertainDataset,
        q: &Point,
        an_pos: usize,
        stats: &mut RunStats,
    ) -> Vec<usize>;
}

/// Lemma 2 via the R-tree (the CP filter). Generic over the tree
/// representation — the pointer [`RTree`] (the default, kept as the
/// reference path) or the packed read-only projection
/// ([`crp_rtree::PackedRTree`]) — through [`WindowQuery`]; both
/// produce bit-identical candidates and counters.
pub struct SampleWindowFilter<'t, Q: ?Sized = RTree<ObjectId>> {
    tree: &'t Q,
}

impl<'t, Q: ?Sized> SampleWindowFilter<'t, Q> {
    pub fn new(tree: &'t Q) -> Self {
        Self { tree }
    }
}

impl<Q: WindowQuery<ObjectId> + Sync + ?Sized> FilterStage for SampleWindowFilter<'_, Q> {
    fn candidates(
        &self,
        ds: &UncertainDataset,
        q: &Point,
        an_pos: usize,
        stats: &mut RunStats,
    ) -> Vec<usize> {
        let an = ds.object_at(an_pos);
        let windows: Vec<HyperRect> = an
            .samples()
            .iter()
            .map(|s| dominance_rect(s.point(), q))
            .collect();
        window_candidate_positions(self.tree, ds, an, q, &windows, &mut stats.query)
    }
}

/// The Lemma 2 window filter over one tree/dataset pair: multi-window
/// traversal, then exact dominance refinement (rectangles are a
/// superset of the dominance relation — boundary ties do not dominate).
/// Returns sorted, deduplicated positions in `ds`, excluding `an`.
///
/// The single implementation behind both [`SampleWindowFilter`] (the
/// global tree) and each shard of the sharded engine (`ds` and `tree`
/// then describe one partition, while `an` may live elsewhere) — one
/// body, so the sharded/unsharded bit-identity contract cannot drift.
pub(crate) fn window_candidate_positions<Q: WindowQuery<ObjectId> + ?Sized>(
    tree: &Q,
    ds: &UncertainDataset,
    an: &UncertainObject,
    q: &Point,
    windows: &[HyperRect],
    query: &mut QueryStats,
) -> Vec<usize> {
    let mut hits: Vec<usize> = Vec::new();
    tree.visit_windows(windows, query, &mut |&id| {
        if id != an.id() {
            if let Some(pos) = ds.index_of(id) {
                hits.push(pos);
            }
        }
        true
    });
    hits.sort_unstable();
    hits.dedup();
    retain_causal(ds, an, q, &mut hits);
    hits
}

/// The exact Lemma 2 test over a position superset: keeps exactly the
/// objects with positive dominance probability w.r.t. some sample of
/// `an` — the refinement tail of [`window_candidate_positions`], shared
/// with the plan executor's coverage-derived stage 1 (which draws its
/// superset from a containing window's coverage list instead of a tree
/// traversal). One body, so both entries produce the identical
/// candidate set.
pub(crate) fn retain_causal(
    ds: &UncertainDataset,
    an: &UncertainObject,
    q: &Point,
    positions: &mut Vec<usize>,
) {
    positions.retain(|&pos| {
        let obj = ds.object_at(pos);
        an.samples()
            .iter()
            .any(|s| dominance_probability(obj, s.point(), q) > 0.0)
    });
}

/// The bounding box of the stage-1 filter windows of one non-answer —
/// the **candidate region** the explanation cache keys its geometric
/// invalidation on: an object whose MBR misses this box has zero
/// dominance probability w.r.t. every sample of `an` (the windows are a
/// superset of the dominance relation), so it cannot enter the
/// candidate set, the dominance matrix, or the outcome. Updates outside
/// the region therefore leave cached entries for `(an, q)` valid.
pub(crate) fn candidate_region(an: &UncertainObject, q: &Point) -> HyperRect {
    an.samples()
        .iter()
        .map(|s| dominance_rect(s.point(), q))
        .reduce(|acc, r| acc.union(&r))
        .expect("uncertain objects always have at least one sample")
}

/// The candidate region of a window list that was already computed
/// (the pdf pipeline's per-quadrant windows, or the certain pipeline's
/// single dominance window).
pub(crate) fn windows_region(windows: &[HyperRect]) -> Option<HyperRect> {
    windows.iter().cloned().reduce(|acc, r| acc.union(&r))
}

/// Lemma 2 by full scan (no index, no node accesses) — the filter
/// ablation and test cross-check; produces identical candidates.
pub struct ScanFilter;

impl FilterStage for ScanFilter {
    fn candidates(
        &self,
        ds: &UncertainDataset,
        q: &Point,
        an_pos: usize,
        _stats: &mut RunStats,
    ) -> Vec<usize> {
        let an = ds.object_at(an_pos);
        (0..ds.len())
            .filter(|&pos| {
                pos != an_pos
                    && an
                        .samples()
                        .iter()
                        .any(|s| dominance_probability(ds.object_at(pos), s.point(), q) > 0.0)
            })
            .collect()
    }
}
