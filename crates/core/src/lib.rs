//! Causality and responsibility for (probabilistic) reverse skyline query
//! non-answers — the primary contribution of Gao, Liu, Chen, Zhou & Zheng
//! (TKDE 2016).
//!
//! Given a non-answer `an` to a query over dataset `P`:
//!
//! * an object `p` is an **actual cause** when some *contingency set*
//!   `Γ ⊆ P` exists with `(P−Γ) ⊭ Q(an)` and `(P−Γ−{p}) ⊨ Q(an)`
//!   (Definition 1); `Γ = ∅` makes `p` a *counterfactual* cause,
//! * its **responsibility** is `r(p, an) = 1 / (1 + min_Γ |Γ|)`
//!   (Definition 2).
//!
//! Entry point: the [`ExplainEngine`] — a per-dataset session that owns
//! the R-trees and dispatches every algorithm of the paper through one
//! `filter → refine → fmcs` pipeline (see [`engine`]):
//!
//! * [`ExplainStrategy::Cp`] — Algorithm 1 (*CP*) for probabilistic
//!   reverse skyline queries under the discrete-sample model: an R-tree
//!   filter over the dominance windows of `an`'s samples (Lemma 2),
//!   then refinement via Lemmas 3–6 with the ascending-cardinality
//!   minimal-contingency search *FMCS* (Algorithm 2),
//! * [`ExplainEngine::for_pdf`] — the continuous-pdf variant
//!   (Section 3.2),
//! * [`ExplainStrategy::Cr`] — the certain-data algorithm *CR* for
//!   plain reverse skyline queries, which needs no verification at all
//!   (Lemma 7),
//! * [`ExplainStrategy::NaiveI`] / [`ExplainStrategy::NaiveII`] — the
//!   baselines of Figures 6 and 11,
//! * [`ExplainStrategy::OracleCp`] / [`ExplainStrategy::OracleCr`] —
//!   definition-level brute force used by the test suites as ground
//!   truth (also callable directly as [`oracle_cp`] / [`oracle_cr`]),
//! * [`CpConfig`] — lemma on/off switches, work budgets and FMCS
//!   parallelism for the ablation experiments,
//! * [`ExplainEngine::explain_batch`] — many non-answers in one call,
//!   data-parallel with rayon and bit-identical to the serial path,
//! * [`ShardedExplainEngine`] — the same sessions over a dataset split
//!   into per-shard R-trees by a [`ShardPolicy`]; candidate generation
//!   fans out across shards and the merged results are bit-identical
//!   to the unsharded engine (see [`engine::shard`]).
//!
//! The pre-engine free functions ([`cp`], [`cr`], [`naive_i`],
//! [`naive_ii`], [`cp_pdf`], [`cr_kskyband`]) remain as deprecated thin
//! wrappers over the same pipeline.

mod answers;
mod combinations;
mod config;
mod cp;
mod cr;
pub mod engine;
mod error;
#[doc(hidden)]
pub mod hotpath;
mod kernel;
mod kskyband;
mod matrix;
mod naive;
mod oracle;
mod pdf;
mod refine;
mod types;

pub use answers::answer_causes;
pub use combinations::{
    binomial, for_each_combination, for_each_combination_delta, DeltaEvent, DeltaOp,
};
pub use config::CpConfig;
pub use cp::collect_candidates;
pub use engine::merge::merge_candidate_ids;
pub use engine::mvcc::{EpochSnapshot, MvccCounters, MvccEngine, SnapshotEngine};
pub use engine::window::{
    admission, derive_limits, execute_window, fan_out, Admission, ClientClass, WindowReport,
};
pub use engine::{
    EngineConfig, ExplainEngine, ExplainRequest, ExplainSession, ExplainStrategy, PartialProgress,
    PlanCounters, PlanLimits, PlanReport, ShardPolicy, ShardedExplainEngine, StopReason,
};
pub use error::CrpError;
pub use kernel::{active_kernel, set_kernel, simd_supported, KernelKind};
pub use matrix::{DominanceMatrix, PrEvaluator};
// The live-session vocabulary: updates are applied through
// `ExplainEngine::apply` / `ShardedExplainEngine::apply`, which return
// the dataset epoch the session now serves.
pub use crp_uncertain::{Epoch, Update};
// `ExplainSession::accumulated_io` speaks this type; re-exported so
// session consumers (and `SnapshotEngine` adapters in downstream
// tests/binaries) need no direct crp-rtree dependency.
pub use crp_rtree::QueryStats;
pub use oracle::{oracle_cp, oracle_cr, oracle_crp, OracleCause};
pub use pdf::build_pdf_rtree;
pub use types::{Cause, CrpOutcome, RunStats};

// Deprecated free-function wrappers, kept for callers that manage
// their own R-trees; each routes through the same pipeline the engine
// dispatches.
#[allow(deprecated)]
pub use cp::{cp, cp_unindexed};
#[allow(deprecated)]
pub use cr::cr;
#[allow(deprecated)]
pub use kskyband::cr_kskyband;
#[allow(deprecated)]
pub use naive::{naive_i, naive_ii};
#[allow(deprecated)]
pub use pdf::cp_pdf;
