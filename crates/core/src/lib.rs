//! Causality and responsibility for (probabilistic) reverse skyline query
//! non-answers — the primary contribution of Gao, Liu, Chen, Zhou & Zheng
//! (TKDE 2016).
//!
//! Given a non-answer `an` to a query over dataset `P`:
//!
//! * an object `p` is an **actual cause** when some *contingency set*
//!   `Γ ⊆ P` exists with `(P−Γ) ⊭ Q(an)` and `(P−Γ−{p}) ⊨ Q(an)`
//!   (Definition 1); `Γ = ∅` makes `p` a *counterfactual* cause,
//! * its **responsibility** is `r(p, an) = 1 / (1 + min_Γ |Γ|)`
//!   (Definition 2).
//!
//! Entry points:
//!
//! * [`cp`] — Algorithm 1 (*CP*) for probabilistic reverse skyline
//!   queries under the discrete-sample model: an R-tree filter over the
//!   dominance windows of `an`'s samples (Lemma 2), then refinement via
//!   Lemmas 3–6 with the ascending-cardinality minimal-contingency search
//!   *FMCS* (Algorithm 2),
//! * [`cp_pdf`] — the continuous-pdf variant (Section 3.2),
//! * [`cr`] — the certain-data algorithm *CR* for plain reverse skyline
//!   queries, which needs no verification at all (Lemma 7),
//! * [`naive_i`] / [`naive_ii`] — the baselines of Figures 6 and 11,
//! * [`oracle_cp`] / [`oracle_cr`] — definition-level brute force used by
//!   the test suites as ground truth,
//! * [`CpConfig`] — lemma on/off switches and work budgets for the
//!   ablation experiments.

mod answers;
mod combinations;
mod config;
mod cp;
mod cr;
mod error;
mod kskyband;
mod matrix;
mod naive;
mod oracle;
mod pdf;
mod refine;
mod types;

pub use answers::answer_causes;
pub use combinations::{binomial, for_each_combination};
pub use config::CpConfig;
pub use cp::{collect_candidates, cp, cp_unindexed};
pub use cr::cr;
pub use error::CrpError;
pub use kskyband::cr_kskyband;
pub use matrix::{DominanceMatrix, PrEvaluator};
pub use naive::{naive_i, naive_ii};
pub use oracle::{oracle_cp, oracle_cr, oracle_crp, OracleCause};
pub use pdf::{build_pdf_rtree, cp_pdf};
pub use types::{Cause, CrpOutcome, RunStats};
