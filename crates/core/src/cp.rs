//! Algorithm 1 (*CP*): causality & responsibility for a non-answer to a
//! probabilistic reverse skyline query, discrete-sample model.
//!
//! Since the `ExplainEngine` refactor these free functions are thin
//! wrappers over the shared `filter → refine → fmcs` pipeline in
//! [`crate::engine`] — the identical single-partition code path the
//! engine (and, per shard, the [`crate::ShardedExplainEngine`])
//! dispatches; candidate impact ordering lives in the engine's merge
//! stage (`engine::merge`), so there is exactly one implementation of
//! every stage. Prefer [`crate::ExplainEngine`], which owns the R-tree
//! and amortises it across calls.

use crate::config::CpConfig;
use crate::engine::filter::{FilterStage, SampleWindowFilter, ScanFilter};
use crate::engine::pipeline;
use crate::error::CrpError;
use crate::types::{CrpOutcome, RunStats};
use crp_geom::Point;
use crp_rtree::RTree;
use crp_uncertain::{ObjectId, UncertainDataset};

/// Filtering step of CP (Lemma 2): the dataset positions of all objects
/// that dominate `q` w.r.t. some sample of the object at `an_pos` with
/// positive probability, found by one multi-window R-tree traversal over
/// the `RecList` of `an`'s samples followed by exact dominance checks.
///
/// The result is sorted and deduplicated; `an` itself is excluded.
///
/// This is pipeline stage 1
/// ([`SampleWindowFilter`](crate::engine::filter::SampleWindowFilter))
/// exposed as a free function for the experiment harness.
pub fn collect_candidates(
    ds: &UncertainDataset,
    tree: &RTree<ObjectId>,
    q: &Point,
    an_pos: usize,
    stats: &mut RunStats,
) -> Vec<usize> {
    SampleWindowFilter::new(tree).candidates(ds, q, an_pos, stats)
}

/// The *CP* algorithm: all actual causes, with responsibilities and
/// minimal contingency sets, for the non-answer `an_id` to the
/// probabilistic reverse skyline query `(q, α)` over `ds`.
///
/// `tree` must index the objects' MBRs (see
/// [`crp_skyline::build_object_rtree`]).
///
/// Prefer [`crate::ExplainEngine`] with
/// [`crate::ExplainStrategy::Cp`], which owns `tree` and shares it
/// across calls; this wrapper remains for callers that manage their own
/// index.
///
/// # Errors
///
/// * [`CrpError::InvalidAlpha`] unless `0 < α ≤ 1`,
/// * [`CrpError::EmptyDataset`] / [`CrpError::UnknownObject`],
/// * [`CrpError::NotANonAnswer`] when `Pr(an) ≥ α`,
/// * [`CrpError::BudgetExhausted`] when `config.max_subsets` trips.
#[deprecated(
    since = "0.2.0",
    note = "construct an ExplainEngine and use ExplainStrategy::Cp; the engine owns and reuses the R-tree"
)]
pub fn cp(
    ds: &UncertainDataset,
    tree: &RTree<ObjectId>,
    q: &Point,
    an_id: ObjectId,
    alpha: f64,
    config: &CpConfig,
) -> Result<CrpOutcome, CrpError> {
    pipeline::run_probabilistic(
        ds,
        q,
        an_id,
        alpha,
        config,
        &SampleWindowFilter::new(tree),
        None,
    )
}

/// CP without the R-tree filter: candidates are found by a full scan
/// (every object is tested against Lemma 2 exactly). Used by the filter
/// ablation and as a test cross-check; produces identical causes.
#[deprecated(
    since = "0.2.0",
    note = "use ExplainEngine with ExplainStrategy::CpUnindexed"
)]
pub fn cp_unindexed(
    ds: &UncertainDataset,
    q: &Point,
    an_id: ObjectId,
    alpha: f64,
    config: &CpConfig,
) -> Result<CrpOutcome, CrpError> {
    pipeline::run_probabilistic(ds, q, an_id, alpha, config, &ScanFilter, None)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crp_rtree::RTreeParams;
    use crp_skyline::build_object_rtree;
    use crp_uncertain::UncertainObject;

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    /// an = object 0 at (10,10); q = (5,5); candidates with varied
    /// dominance probabilities.
    fn fixture() -> (UncertainDataset, Point) {
        let ds = UncertainDataset::from_objects(vec![
            UncertainObject::certain(ObjectId(0), pt(10.0, 10.0)),
            UncertainObject::certain(ObjectId(1), pt(7.0, 7.0)), // dp = 1
            UncertainObject::with_equal_probs(ObjectId(2), vec![pt(8.0, 9.0), pt(30.0, 30.0)])
                .unwrap(), // dp = 0.5
            UncertainObject::certain(ObjectId(3), pt(40.0, 40.0)), // dp = 0
            UncertainObject::certain(ObjectId(4), pt(2.0, 2.0)), // an answer: nothing blocks it
        ])
        .unwrap();
        (ds, pt(5.0, 5.0))
    }

    #[test]
    fn filter_excludes_non_dominators_and_self() {
        let (ds, q) = fixture();
        let tree = build_object_rtree(&ds, RTreeParams::with_fanout(4));
        let mut stats = RunStats::default();
        let cands = collect_candidates(&ds, &tree, &q, 0, &mut stats);
        assert_eq!(cands, vec![1, 2]);
        assert!(stats.query.node_accesses > 0);
    }

    #[test]
    fn cp_end_to_end() {
        let (ds, q) = fixture();
        let tree = build_object_rtree(&ds, RTreeParams::with_fanout(4));
        // α = 0.5: Pr(an) = 0 (object 1 dominates with certainty).
        let out = cp(&ds, &tree, &q, ObjectId(0), 0.5, &CpConfig::default()).unwrap();
        // Object 1: removing it leaves Pr = 0.5 ≥ α -> counterfactual.
        let c1 = out.cause(ObjectId(1)).expect("object 1 is a cause");
        assert!(c1.counterfactual);
        assert_eq!(c1.responsibility, 1.0);
        // Object 2: Γ = {1} -> Pr(P−Γ) = 0.5... that is ≥ α, so {1} is
        // NOT valid; no Γ works (removing 1 already answers) -> not a
        // cause.
        assert!(out.cause(ObjectId(2)).is_none());
        assert!(out.cause(ObjectId(3)).is_none());
    }

    #[test]
    fn cp_lower_alpha_two_causes() {
        let (ds, q) = fixture();
        let tree = build_object_rtree(&ds, RTreeParams::with_fanout(4));
        // α = 0.75: removing object 1 leaves Pr = 0.5 < α -> NOT
        // counterfactual; Γ(1) = {2}, Γ(2) = {1}.
        let out = cp(&ds, &tree, &q, ObjectId(0), 0.75, &CpConfig::default()).unwrap();
        let c1 = out.cause(ObjectId(1)).expect("cause 1");
        let c2 = out.cause(ObjectId(2)).expect("cause 2");
        assert_eq!(c1.min_contingency, vec![ObjectId(2)]);
        assert_eq!(c2.min_contingency, vec![ObjectId(1)]);
        assert!((c1.responsibility - 0.5).abs() < 1e-12);
        assert!((c2.responsibility - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cp_rejects_answers() {
        let (ds, q) = fixture();
        let tree = build_object_rtree(&ds, RTreeParams::with_fanout(4));
        // Object 4 at (2,2): its dominance window [−1,5]² holds no other
        // object, so it IS an answer at any α.
        let err = cp(&ds, &tree, &q, ObjectId(4), 0.5, &CpConfig::default()).unwrap_err();
        assert!(matches!(err, CrpError::NotANonAnswer { prob } if (prob - 1.0).abs() < 1e-12));
    }

    #[test]
    fn cp_validates_inputs() {
        let (ds, q) = fixture();
        let tree = build_object_rtree(&ds, RTreeParams::with_fanout(4));
        assert!(matches!(
            cp(&ds, &tree, &q, ObjectId(0), 0.0, &CpConfig::default()),
            Err(CrpError::InvalidAlpha(_))
        ));
        assert!(matches!(
            cp(&ds, &tree, &q, ObjectId(0), 1.5, &CpConfig::default()),
            Err(CrpError::InvalidAlpha(_))
        ));
        assert!(matches!(
            cp(&ds, &tree, &q, ObjectId(99), 0.5, &CpConfig::default()),
            Err(CrpError::UnknownObject(_))
        ));
        let empty = UncertainDataset::new();
        let err = cp_unindexed(&empty, &q, ObjectId(0), 0.5, &CpConfig::default()).unwrap_err();
        assert_eq!(err, CrpError::EmptyDataset);
    }

    #[test]
    fn indexed_and_unindexed_agree() {
        let (ds, q) = fixture();
        let tree = build_object_rtree(&ds, RTreeParams::with_fanout(4));
        for alpha in [0.25, 0.5, 0.75, 1.0] {
            let a = cp(&ds, &tree, &q, ObjectId(0), alpha, &CpConfig::default());
            let b = cp_unindexed(&ds, &q, ObjectId(0), alpha, &CpConfig::default());
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x.causes, y.causes, "alpha {alpha}"),
                (Err(x), Err(y)) => assert_eq!(x, y, "alpha {alpha}"),
                (x, y) => panic!("divergence at alpha {alpha}: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn alpha_one_every_candidate_is_a_cause() {
        let (ds, q) = fixture();
        let tree = build_object_rtree(&ds, RTreeParams::with_fanout(4));
        let out = cp(&ds, &tree, &q, ObjectId(0), 1.0, &CpConfig::default()).unwrap();
        assert_eq!(out.causes.len(), 2); // objects 1 and 2
        for c in &out.causes {
            assert!((c.responsibility - 0.5).abs() < 1e-12, "r = 1/|Cc|");
        }
    }
}
