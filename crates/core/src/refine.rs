//! The refinement phase shared by CP (discrete), CP (pdf) and Naive-I —
//! pipeline stages 2 (`refine`) and 3 (`fmcs`) of [`crate::engine`] run
//! back to back. The stage implementations live under
//! `engine/{refine,fmcs}.rs`; this module keeps the single-call entry
//! point and the behavioural test suite pinning it.
//!
//! Input: the dominance matrix of a non-answer against its candidate
//! causes. Output: every actual cause with a *minimal* contingency set.
//!
//! The search follows Algorithms 1–2 of the paper:
//!
//! 1. `α = 1` fast path — every candidate is a cause with
//!    responsibility `1/|Cc|` (lines 9–11),
//! 2. Lemma 4 — candidates dominating with probability 1 w.r.t. every
//!    sample (`Ca`) are forced into every contingency set,
//! 3. Lemma 5 — counterfactual causes (`Cb`) are reported immediately
//!    and excluded from the other candidates' search spaces,
//! 4. FMCS — for each remaining candidate, enumerate candidate
//!    contingency sets in ascending cardinality (so the first valid set
//!    is minimal); a set `Γ` is valid when `Pr(an | P−Γ) < α` (still a
//!    non-answer) and `Pr(an | P−Γ−{cc}) ≥ α` (becomes an answer),
//! 5. Lemma 6 — a found minimal set `Γ` of cause `cc` yields, for each
//!    unprocessed `o ∈ Γ` (when `Pr(an | P−(Γ−{o})−{cc}) < α`), the
//!    witness contingency set `(Γ−{o}) ∪ {cc}` of the same size; the
//!    later FMCS run for `o` then only searches *strictly smaller*
//!    cardinalities and falls back to the witness (Algorithm 1,
//!    lines 23–24).
//!
//! One deliberate deviation from the printed pseudo-code: Algorithm 2
//! starts the subset loop at cardinality 1 above the forced set `G1`,
//! which misses the case where `G1` itself is already a valid contingency
//! set. We start at cardinality 0 (i.e. `Γ = G1`), which matches
//! Definitions 1–2 and the brute-force oracle (pinned by a unit test).

use crate::config::CpConfig;
use crate::engine::{fmcs, refine as classify_stage};
use crate::error::CrpError;
use crate::matrix::{DominanceMatrix, Scratch};
use crate::types::RunStats;

pub(crate) use crate::engine::fmcs::CauseRec;

/// Runs the refinement — pipeline stages 2 and 3
/// ([`crate::engine`]'s `refine` classification followed by the FMCS
/// search) over one dominance matrix. `matrix` must contain only
/// genuine candidates (positive dominance mass; Lemma 1 filtering is
/// the caller's job). `scratch` is the reusable hot-path workspace —
/// [`crate::engine::pipeline::finish`] lends the per-thread one, so a
/// steady-state explain allocates nothing per candidate.
pub(crate) fn refine(
    matrix: &DominanceMatrix,
    alpha: f64,
    config: &CpConfig,
    stats: &mut RunStats,
    scratch: &mut Scratch,
) -> Result<Vec<CauseRec>, CrpError> {
    let plan = classify_stage::classify(matrix, alpha, config, stats, scratch);
    fmcs::search(matrix, alpha, config, plan, stats, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RunStats;

    /// Matrix helper: `dp[c][i]` rows, equal sample weights.
    fn matrix(rows: &[&[f64]]) -> DominanceMatrix {
        let samples = rows[0].len();
        let weights = vec![1.0 / samples as f64; samples];
        let dp: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        DominanceMatrix::from_parts(dp, weights, rows.len())
    }

    fn run(m: &DominanceMatrix, alpha: f64, config: &CpConfig) -> Vec<CauseRec> {
        let mut stats = RunStats::default();
        crate::matrix::with_scratch(|scratch| refine(m, alpha, config, &mut stats, scratch))
            .expect("no budget configured")
    }

    #[test]
    fn empty_candidate_set() {
        let m = DominanceMatrix::from_parts(Vec::new(), vec![1.0], 0);
        assert!(run(&m, 0.5, &CpConfig::default()).is_empty());
    }

    #[test]
    fn parallel_fmcs_matches_serial_above_incremental_threshold() {
        // ≥ 64 candidates puts the Checker in incremental-evaluator
        // mode, so this exercises the parallel driver's *shared*
        // evaluator (one O(|Cc|·L) build for all workers) against the
        // serial driver's owned one. Results and counters must match
        // exactly.
        //
        // The fixture is constructed to stay tractable with Lemma 6
        // off: 72 identical candidates at dp = 0.01 and α between
        // 0.99^71 and 0.99^70, so every candidate's minimal Γ has size
        // exactly 1 and FMCS finds it at the first cardinality-1
        // combination (a symmetric-candidate search never enumerates a
        // large subset space).
        let n = 72;
        let m = DominanceMatrix::from_parts(vec![0.01; n], vec![1.0], n);
        let alpha = 0.492; // 0.99^71 ≈ 0.4899 < α ≤ 0.99^70 ≈ 0.4948
        assert!(m.pr_full() < alpha, "fixture must be a non-answer");
        let serial_cfg = CpConfig {
            use_lemma6: false,
            ..CpConfig::default()
        };
        let parallel_cfg = CpConfig {
            parallel_fmcs: true,
            ..serial_cfg
        };
        let mut serial_stats = RunStats::default();
        let serial =
            crate::matrix::with_scratch(|s| refine(&m, alpha, &serial_cfg, &mut serial_stats, s))
                .unwrap();
        let mut parallel_stats = RunStats::default();
        let parallel = crate::matrix::with_scratch(|s| {
            refine(&m, alpha, &parallel_cfg, &mut parallel_stats, s)
        })
        .unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial_stats, parallel_stats);
        assert_eq!(serial.len(), n, "every symmetric candidate is a cause");
        assert!(serial.iter().all(|r| r.gamma.len() == 1));
    }

    #[test]
    fn single_counterfactual_cause() {
        // One candidate dominating with prob 0.6: Pr(an) = 0.4 < 0.5;
        // removing it gives 1.0 -> counterfactual.
        let m = matrix(&[&[0.6]]);
        let causes = run(&m, 0.5, &CpConfig::default());
        assert_eq!(causes.len(), 1);
        assert!(causes[0].counterfactual);
        assert!(causes[0].gamma.is_empty());
    }

    #[test]
    fn alpha_one_fast_path_marks_all() {
        let m = matrix(&[&[0.1], &[0.2], &[0.3]]);
        let causes = run(&m, 1.0, &CpConfig::default());
        assert_eq!(causes.len(), 3);
        for c in &causes {
            assert_eq!(c.gamma.len(), 2, "Γ = the other two candidates");
        }
    }

    #[test]
    fn alpha_one_without_fast_path_same_answer() {
        let m = matrix(&[&[0.1], &[0.2], &[0.3]]);
        let cfg = CpConfig {
            alpha_one_fast_path: false,
            ..CpConfig::default()
        };
        let fast = run(&m, 1.0, &CpConfig::default());
        let slow = run(&m, 1.0, &cfg);
        assert_eq!(fast, slow);
    }

    #[test]
    fn forced_member_in_every_gamma() {
        // c0 dominates with prob 1 (forced); c1 with 0.6; α = 0.5.
        // Pr(an) = 0. For c1: Γ must contain c0; Γ = {c0} gives
        // Pr = 0.4 < α (still non-answer) and removing c1 -> 1.0 ≥ α.
        let m = matrix(&[&[1.0], &[0.6]]);
        let causes = run(&m, 0.5, &CpConfig::default());
        let c1 = causes.iter().find(|c| c.cand == 1).expect("c1 is a cause");
        assert_eq!(c1.gamma, vec![0]);
        // c0 itself: Γ = ∅? removing c0 alone gives 0.4 < α -> not
        // counterfactual; Γ = {c1}: still 0 < α, removing c0 -> 1.0 ≥ α.
        let c0 = causes.iter().find(|c| c.cand == 0).expect("c0 is a cause");
        assert_eq!(c0.gamma, vec![1]);
    }

    #[test]
    fn gamma_equal_to_forced_set_found() {
        // Pins the FMCS i=0 fix: the forced set alone is the minimal
        // contingency set. c0 forced (dp 1); c1 and c2 with dp 0.5 each;
        // α = 0.45. Pr = 0. Γ = {c0} leaves 0.25 < α; removing c1 gives
        // 0.5 ≥ α -> Γ_min(c1) = {c0} = G1 exactly.
        let m = matrix(&[&[1.0], &[0.5], &[0.5]]);
        let causes = run(&m, 0.45, &CpConfig::default());
        let c1 = causes.iter().find(|c| c.cand == 1).expect("c1 is a cause");
        assert_eq!(c1.gamma, vec![0]);
        assert_eq!(c1.gamma.len(), 1);
    }

    #[test]
    fn non_cause_candidate_detected() {
        // c0 dominates 0.9; c1 dominates 0.05. α = 0.5.
        // Pr(an) = 0.1·0.95 = 0.095 < α.
        // Removing c1 alone: 0.1 -> still non-answer, not counterfactual.
        // For c1: Γ = {c0}? Then P−Γ has Pr = 0.95 ≥ α -> violates (i).
        // No Γ works for c1 -> c1 is NOT a cause even though it is a
        // candidate. c0: Γ = ∅, removing c0 -> 0.95 ≥ α: counterfactual.
        let m = matrix(&[&[0.9], &[0.05]]);
        let causes = run(&m, 0.5, &CpConfig::default());
        assert_eq!(causes.len(), 1);
        assert_eq!(causes[0].cand, 0);
        assert!(causes[0].counterfactual);
    }

    #[test]
    fn all_configs_agree_on_random_matrices() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        let configs = [
            CpConfig::default(),
            CpConfig::naive(),
            CpConfig {
                use_lemma4: false,
                ..CpConfig::default()
            },
            CpConfig {
                use_lemma5: false,
                ..CpConfig::default()
            },
            CpConfig {
                use_lemma6: false,
                ..CpConfig::default()
            },
            CpConfig {
                use_probability_bound: true,
                ..CpConfig::default()
            },
            CpConfig {
                use_columnar_kernel: false,
                ..CpConfig::default()
            },
            // Sequential condition-(ii) probes, with both kernels (the
            // batched/sequential split must be outcome-invariant).
            CpConfig {
                use_batched_probes: false,
                ..CpConfig::default()
            },
            CpConfig {
                use_batched_probes: false,
                use_columnar_kernel: false,
                ..CpConfig::default()
            },
            CpConfig {
                use_batched_probes: false,
                use_probability_bound: true,
                ..CpConfig::default()
            },
            // Candidate-parallel + shared bound table + columnar off/on.
            CpConfig {
                parallel_fmcs: true,
                use_probability_bound: true,
                use_lemma6: false,
                ..CpConfig::default()
            },
            CpConfig {
                parallel_fmcs: true,
                use_probability_bound: true,
                use_lemma6: false,
                use_columnar_kernel: false,
                ..CpConfig::default()
            },
        ];
        for round in 0..60 {
            let n = rng.random_range(1..=6);
            let samples = rng.random_range(1..=3);
            let weights = vec![1.0 / samples as f64; samples];
            let dp: Vec<f64> = (0..n * samples)
                .map(|_| {
                    // Mix exact 0/1 values with fractions to exercise the
                    // forced/counterfactual paths.
                    match rng.random_range(0..4) {
                        0 => 0.0,
                        1 => 1.0,
                        _ => (rng.random_range(1..=9) as f64) / 10.0,
                    }
                })
                .collect();
            let m = DominanceMatrix::from_parts(dp, weights, n);
            // Ensure an is a genuine non-answer for a valid comparison.
            let alpha = 0.5;
            if m.pr_full() >= alpha {
                continue;
            }
            let baseline: Vec<(usize, usize)> = run(&m, alpha, &configs[0])
                .into_iter()
                .map(|c| (c.cand, c.gamma.len()))
                .collect();
            for (ci, cfg) in configs.iter().enumerate().skip(1) {
                let got: Vec<(usize, usize)> = run(&m, alpha, cfg)
                    .into_iter()
                    .map(|c| (c.cand, c.gamma.len()))
                    .collect();
                assert_eq!(baseline, got, "round {round}, config {ci}");
            }
        }
    }

    #[test]
    fn batched_probes_preserve_full_run_stats_in_evaluator_mode() {
        // Above INCREMENTAL_THRESHOLD candidates the checker runs on the
        // incremental evaluator, where batching swaps in the log-domain
        // screens and the singleton sweep. Classifications, the search
        // counters AND the evaluator taps (`eval_fast`/`eval_slow`) are
        // all provably invariant: the screen fires only strictly outside
        // the guard band, where the sequential settle takes the fast
        // path too. Pin the whole RunStats, not just the causes.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = crate::engine::fmcs::INCREMENTAL_THRESHOLD + 16;
        let samples = 5;
        let weights = vec![1.0 / samples as f64; samples];
        let dp: Vec<f64> = (0..n * samples)
            .map(|_| match rng.random_range(0..5) {
                0 => 0.0,
                1 => 1.0, // annihilator structure: exercises the `ones` path
                _ => rng.random_range(1..=99) as f64 / 100.0,
            })
            .collect();
        let m = DominanceMatrix::from_parts(dp, weights, n);
        // A subset budget keeps candidates with no small contingency set
        // from enumerating C(80, k); budget exhaustion must be identical
        // on both sides too (the counters are compared either way).
        let batched_cfg = CpConfig::with_budget(50_000);
        let sequential_cfg = CpConfig {
            use_batched_probes: false,
            ..batched_cfg
        };
        for alpha in [0.3, 0.6, 0.9] {
            let mut batched_stats = RunStats::default();
            let batched = crate::matrix::with_scratch(|s| {
                refine(&m, alpha, &batched_cfg, &mut batched_stats, s)
            });
            let mut sequential_stats = RunStats::default();
            let sequential = crate::matrix::with_scratch(|s| {
                refine(&m, alpha, &sequential_cfg, &mut sequential_stats, s)
            });
            match (batched, sequential) {
                (Ok(a), Ok(b)) => {
                    let a: Vec<_> = a.iter().map(|c| (c.cand, c.gamma.clone())).collect();
                    let b: Vec<_> = b.iter().map(|c| (c.cand, c.gamma.clone())).collect();
                    assert_eq!(a, b, "α = {alpha}");
                }
                (a, b) => assert_eq!(a.is_err(), b.is_err(), "α = {alpha}"),
            }
            assert_eq!(batched_stats, sequential_stats, "α = {alpha}");
            assert!(
                batched_stats.prsq_evaluations > 0,
                "α = {alpha}: the comparison must exercise the hot path"
            );
        }
    }

    #[test]
    fn budget_exhaustion_errors() {
        let m = matrix(&[&[0.3], &[0.3], &[0.3], &[0.3], &[0.3]]);
        let cfg = CpConfig::with_budget(3);
        let mut stats = RunStats::default();
        let err =
            crate::matrix::with_scratch(|s| refine(&m, 0.9, &cfg, &mut stats, s)).unwrap_err();
        assert!(matches!(err, CrpError::BudgetExhausted { .. }));
    }

    #[test]
    fn stats_are_populated() {
        let m = matrix(&[&[1.0], &[0.6], &[0.05]]);
        let mut stats = RunStats::default();
        let _ =
            crate::matrix::with_scratch(|s| refine(&m, 0.5, &CpConfig::default(), &mut stats, s))
                .unwrap();
        assert_eq!(stats.candidates, 3);
        assert_eq!(stats.forced, 1);
        assert!(stats.subsets_examined > 0);
        assert!(stats.prsq_evaluations > 0);
    }

    #[test]
    fn lemma6_witness_is_used_and_minimal() {
        // Three symmetric candidates each dominating 0.5, α = 0.6:
        // Pr(an) = 0.125. Removing one: 0.25; two: 0.5; all: 1.0.
        // Only Γ of size 2 reaches α when the cause is removed -> every
        // candidate is a cause with |Γ| = 2 (the other two).
        let m = matrix(&[&[0.5], &[0.5], &[0.5]]);
        let causes = run(&m, 0.6, &CpConfig::default());
        assert_eq!(causes.len(), 3);
        for c in &causes {
            assert_eq!(c.gamma.len(), 2, "cand {}", c.cand);
            assert!((1.0 / (1.0 + c.gamma.len() as f64) - 1.0 / 3.0).abs() < 1e-12);
        }
    }
}
