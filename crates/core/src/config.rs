//! Tuning switches for the CP algorithm.

/// Configuration of the CP refinement phase.
///
/// The defaults enable every pruning rule from the paper; the switches
/// exist for the ablation benchmarks (`ablation_lemmas`) that quantify
/// what each lemma contributes, and `max_subsets` protects experiment
/// sweeps from adversarial non-answers whose exact minimal-contingency
/// search would be astronomically large (the search is NP-hard in
/// general; the paper's Theorem 1 gives `O(|Cc|·2^|Cc−Ca∪Cb|)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CpConfig {
    /// Lemma 4: objects dominating `q` w.r.t. *every* sample of `an` with
    /// probability 1 are forced into every contingency set.
    pub use_lemma4: bool,
    /// Lemma 5: counterfactual causes are excluded from the contingency
    /// search space of the remaining candidates.
    pub use_lemma5: bool,
    /// Lemma 6: a found minimal contingency set seeds upper bounds (and
    /// witness sets) for the candidates it contains.
    pub use_lemma6: bool,
    /// The `α = 1` fast path of Algorithm 1 (lines 9–11): every candidate
    /// is a cause with responsibility `1/|Cc|`, skipping refinement.
    pub alpha_one_fast_path: bool,
    /// Probability-based branch-and-bound pruning (the paper's "future
    /// work" extension): skip subset cardinalities that provably cannot
    /// lift `Pr(an)` to `α` even when removing the most damaging
    /// candidates.
    pub use_probability_bound: bool,
    /// Abort with [`crate::CrpError::BudgetExhausted`] after examining
    /// this many candidate contingency sets (`None` = unlimited).
    pub max_subsets: Option<u64>,
    /// Candidate-level FMCS parallelism (rayon). Only takes effect when
    /// candidates are independent — Lemma 6 off (witnesses couple
    /// candidates) and no `max_subsets` budget (the counter is global);
    /// the search silently stays serial otherwise. Results are
    /// bit-identical to the serial search either way.
    pub parallel_fmcs: bool,
    /// The columnar hot path: delta-driven subset enumeration over the
    /// sample-major complement layout, with guard-banded fast
    /// classifications. `false` runs the pre-rewrite reference kernel
    /// (per-subset removal lists over the candidate-major layout) —
    /// kept for the before/after throughput sweep and the
    /// kernel-agreement tests. Explanations and search counters are
    /// identical either way.
    pub use_columnar_kernel: bool,
    /// Candidate-batched probe evaluation on the columnar kernel: the
    /// Lemma 5 singleton sweep computes all `|Cc|` single-candidate
    /// probabilities in one prefix/suffix streaming pass, FMCS
    /// condition-(i)/(ii) pairs share one pass over the complement
    /// matrix in direct mode, and the incremental evaluator screens
    /// provably-below-α subsets in log space without calling `exp`.
    /// `false` reproduces the sequential single-probe protocol (the
    /// before/after baseline of `hotpath_sweep`). Explanations and the
    /// `subsets_examined`/`prsq_evaluations` counters are identical
    /// either way.
    pub use_batched_probes: bool,
}

impl Default for CpConfig {
    fn default() -> Self {
        Self {
            use_lemma4: true,
            use_lemma5: true,
            use_lemma6: true,
            alpha_one_fast_path: true,
            use_probability_bound: false,
            max_subsets: None,
            parallel_fmcs: false,
            use_columnar_kernel: true,
            use_batched_probes: true,
        }
    }
}

impl CpConfig {
    /// All pruning disabled — the refinement degenerates to Naive-I.
    pub fn naive() -> Self {
        Self {
            use_lemma4: false,
            use_lemma5: false,
            use_lemma6: false,
            alpha_one_fast_path: false,
            use_probability_bound: false,
            max_subsets: None,
            parallel_fmcs: false,
            use_columnar_kernel: true,
            use_batched_probes: true,
        }
    }

    /// Default configuration with a subset budget.
    pub fn with_budget(max_subsets: u64) -> Self {
        Self {
            max_subsets: Some(max_subsets),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all_lemmas() {
        let c = CpConfig::default();
        assert!(c.use_lemma4 && c.use_lemma5 && c.use_lemma6 && c.alpha_one_fast_path);
        assert!(!c.use_probability_bound);
        assert_eq!(c.max_subsets, None);
    }

    #[test]
    fn naive_disables_all() {
        let c = CpConfig::naive();
        assert!(!c.use_lemma4 && !c.use_lemma5 && !c.use_lemma6 && !c.alpha_one_fast_path);
    }

    #[test]
    fn budget_constructor() {
        assert_eq!(CpConfig::with_budget(5).max_subsets, Some(5));
    }
}
