//! The *CR* algorithm: causality & responsibility for non-answers to
//! plain reverse skyline queries over certain data (Section 4).
//!
//! Lemma 7 makes the certain case verification-free: the candidate causes
//! (every object dominating `q` w.r.t. `an`) are *all* actual causes, each
//! with minimal contingency set `Cc − {c}` and responsibility `1/|Cc|`
//! (Eq. 4). CR therefore issues a single window query and returns.
//!
//! Since the `ExplainEngine` refactor this is a thin wrapper over the
//! certain-data pipeline ([`crate::engine::certain`]) with the
//! [`Lemma7ClosedForm`](crate::engine::certain::Lemma7ClosedForm)
//! verification stage; prefer [`crate::ExplainEngine`] with
//! [`crate::ExplainStrategy::Cr`].

use crate::engine::certain::{run_certain, Lemma7ClosedForm, PointTreeDominators};
use crate::error::CrpError;
use crate::types::CrpOutcome;
use crp_geom::Point;
use crp_rtree::RTree;
use crp_uncertain::{ObjectId, UncertainDataset};

/// Computes the CRP for the non-answer `an_id` to the reverse skyline
/// query of `q` over the certain dataset `ds`.
///
/// `tree` must index the points of `ds` (see
/// [`crp_skyline::build_point_rtree`]).
///
/// # Errors
///
/// * [`CrpError::NotCertainData`] if any object has multiple samples,
/// * [`CrpError::EmptyDataset`] / [`CrpError::UnknownObject`],
/// * [`CrpError::NotANonAnswer`] when `an` *is* a reverse skyline object
///   (no candidate dominates `q` w.r.t. it).
#[deprecated(
    since = "0.2.0",
    note = "construct an ExplainEngine and use ExplainStrategy::Cr; the engine owns and reuses the R-tree"
)]
pub fn cr(
    ds: &UncertainDataset,
    tree: &RTree<ObjectId>,
    q: &Point,
    an_id: ObjectId,
) -> Result<CrpOutcome, CrpError> {
    run_certain(
        ds,
        &PointTreeDominators { tree },
        q,
        an_id,
        &Lemma7ClosedForm { k: 0 },
        None,
    )
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crp_rtree::RTreeParams;
    use crp_skyline::build_point_rtree;
    use crp_uncertain::UncertainObject;

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    /// an = (10,10), q = (5,5); dominators at (7,7), (6,8), (8,6);
    /// non-dominators elsewhere.
    fn fixture() -> (UncertainDataset, Point) {
        let ds = UncertainDataset::from_points(vec![
            pt(10.0, 10.0), // 0: an
            pt(7.0, 7.0),   // 1: dominates
            pt(6.0, 8.0),   // 2: dominates
            pt(8.0, 6.0),   // 3: dominates
            pt(2.0, 2.0),   // 4: outside window
            pt(15.0, 15.0), // 5: mirror tie -> inside window, no strict dim
        ])
        .unwrap();
        (ds, pt(5.0, 5.0))
    }

    #[test]
    fn cr_finds_all_causes_with_equal_responsibility() {
        let (ds, q) = fixture();
        let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
        let out = cr(&ds, &tree, &q, ObjectId(0)).unwrap();
        let ids: Vec<u32> = out.causes.iter().map(|c| c.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        for c in &out.causes {
            assert!((c.responsibility - 1.0 / 3.0).abs() < 1e-12);
            assert_eq!(c.min_contingency.len(), 2);
            assert!(!c.counterfactual);
            assert!(!c.min_contingency.contains(&c.id));
        }
        assert!(out.stats.query.node_accesses > 0);
        assert_eq!(out.stats.candidates, 3);
    }

    #[test]
    fn boundary_tie_is_not_a_cause() {
        let (ds, q) = fixture();
        let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
        let out = cr(&ds, &tree, &q, ObjectId(0)).unwrap();
        assert!(
            out.cause(ObjectId(5)).is_none(),
            "mirror point ties, no strict dim"
        );
    }

    #[test]
    fn single_cause_is_counterfactual() {
        let ds = UncertainDataset::from_points(vec![pt(10.0, 10.0), pt(7.0, 7.0)]).unwrap();
        let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
        let out = cr(&ds, &tree, &pt(5.0, 5.0), ObjectId(0)).unwrap();
        assert_eq!(out.causes.len(), 1);
        assert!(out.causes[0].counterfactual);
        assert_eq!(out.causes[0].responsibility, 1.0);
        assert!(out.causes[0].min_contingency.is_empty());
    }

    #[test]
    fn answer_object_rejected() {
        let (ds, q) = fixture();
        let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
        // Object 4 at (2,2): dominance window around it w.r.t. q holds no
        // dominator.
        let err = cr(&ds, &tree, &q, ObjectId(4)).unwrap_err();
        assert!(matches!(err, CrpError::NotANonAnswer { .. }));
    }

    #[test]
    fn uncertain_data_rejected() {
        let ds = UncertainDataset::from_objects(vec![UncertainObject::with_equal_probs(
            ObjectId(0),
            vec![pt(0.0, 0.0), pt(1.0, 1.0)],
        )
        .unwrap()])
        .unwrap();
        let tree = crp_skyline::build_object_rtree(&ds, RTreeParams::with_fanout(4));
        assert_eq!(
            cr(&ds, &tree, &pt(5.0, 5.0), ObjectId(0)).unwrap_err(),
            CrpError::NotCertainData
        );
    }

    #[test]
    fn unknown_and_empty_inputs() {
        let (ds, q) = fixture();
        let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
        assert!(matches!(
            cr(&ds, &tree, &q, ObjectId(42)),
            Err(CrpError::UnknownObject(_))
        ));
        let empty = UncertainDataset::new();
        assert_eq!(
            cr(&empty, &tree, &q, ObjectId(0)).unwrap_err(),
            CrpError::EmptyDataset
        );
    }

    #[test]
    fn duplicate_of_an_blocks_it() {
        // A second object at an's own location dominates q w.r.t. an
        // (all-zero distances, strict somewhere because q != an).
        let ds = UncertainDataset::from_points(vec![pt(10.0, 10.0), pt(10.0, 10.0)]).unwrap();
        let tree = build_point_rtree(&ds, RTreeParams::with_fanout(4));
        let out = cr(&ds, &tree, &pt(5.0, 5.0), ObjectId(0)).unwrap();
        assert_eq!(out.causes.len(), 1);
        assert_eq!(out.causes[0].id, ObjectId(1));
    }
}
