//! Streaming k-combination enumeration.
//!
//! FMCS examines candidate contingency sets "in the order of their
//! cardinalities" so that the first valid set found is minimal. This
//! module provides the inner loop: lexicographic enumeration of all
//! `k`-subsets of `0..n` with early exit and no per-subset allocation.

/// Calls `f` with each `k`-combination of `0..n` in lexicographic order.
/// `f` returns `true` to stop the enumeration; the function then returns
/// `true`. Returns `false` when the enumeration ran to completion.
///
/// `k == 0` yields exactly one (empty) combination; `k > n` yields none.
pub fn for_each_combination(n: usize, k: usize, mut f: impl FnMut(&[usize]) -> bool) -> bool {
    if k > n {
        return false;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        if f(&idx) {
            return true;
        }
        // Advance to the next lexicographic combination.
        let mut i = k;
        loop {
            if i == 0 {
                return false;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return false;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// One move of the delta enumeration: the element entering or leaving
/// the current combination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// `x` joins the combination.
    Add(usize),
    /// `x` leaves the combination.
    Remove(usize),
}

/// One event of the delta enumeration: a state move, or the signal
/// that the maintained set now equals the next combination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaEvent<'a> {
    /// Fold this move into the maintained state. The callback's return
    /// value is ignored for moves.
    Move(DeltaOp),
    /// The maintained state is a complete combination (also passed as
    /// the index list, for consumers that want it). Return `true` to
    /// stop the enumeration.
    Subset(&'a [usize]),
}

/// [`for_each_combination`] with each successive subset reported as
/// **add/remove-one moves** instead of a fresh index list — the
/// delta-driven FMCS enumeration: a consumer maintaining incremental
/// state (e.g. `Pr(an | P − Γ)`) pays `O(moves)` per subset instead of
/// re-reading the whole combination.
///
/// Protocol: a run of [`DeltaEvent::Move`]s transforms the previous
/// subset into the current one (for the first subset: `k` adds), then
/// one [`DeltaEvent::Subset`] asks for the verdict. Moves are minimal —
/// an element shared by consecutive subsets is never removed and
/// re-added. The enumeration order, early-exit semantics and return
/// value match [`for_each_combination`] exactly. Moves are **not**
/// rolled back after completion or early exit; the consumer resets its
/// state per enumeration. A single callback (rather than one per event
/// kind) lets the consumer thread one `&mut` workspace through both.
///
/// A consumer that re-bases its state at each enumeration start may
/// also *ignore* every move of an enumeration it can answer wholesale —
/// FMCS does this when a cardinality-level bound certifies all size-`k`
/// subsets inert: the `Subset` events still drive the accounting, but
/// no state is folded.
pub fn for_each_combination_delta(
    n: usize,
    k: usize,
    mut f: impl FnMut(DeltaEvent<'_>) -> bool,
) -> bool {
    if k > n {
        return false;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    for &x in &idx {
        f(DeltaEvent::Move(DeltaOp::Add(x)));
    }
    loop {
        if f(DeltaEvent::Subset(&idx)) {
            return true;
        }
        // Find the rightmost index that can advance (as in
        // `for_each_combination`).
        let mut i = k;
        loop {
            if i == 0 {
                return false;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return false;
            }
        }
        // Positions i..k change: the old values are `idx[i]` followed by
        // the maxed-out tail `j + n - k`, the new values the consecutive
        // run starting at `idx[i] + 1`. Both runs ascend, so a merge
        // walk emits exactly the symmetric difference as moves.
        let pivot = idx[i];
        let mut old = i;
        let mut new = i;
        let old_val = |j: usize| if j == i { pivot } else { j + n - k };
        let new_val = |j: usize| pivot + 1 + (j - i);
        while old < k && new < k {
            let (o, w) = (old_val(old), new_val(new));
            match o.cmp(&w) {
                std::cmp::Ordering::Equal => {
                    old += 1;
                    new += 1;
                }
                std::cmp::Ordering::Less => {
                    f(DeltaEvent::Move(DeltaOp::Remove(o)));
                    old += 1;
                }
                std::cmp::Ordering::Greater => {
                    f(DeltaEvent::Move(DeltaOp::Add(w)));
                    new += 1;
                }
            }
        }
        while old < k {
            f(DeltaEvent::Move(DeltaOp::Remove(old_val(old))));
            old += 1;
        }
        while new < k {
            f(DeltaEvent::Move(DeltaOp::Add(new_val(new))));
            new += 1;
        }
        idx[i] = pivot + 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Number of `k`-combinations of `n` items, saturating at `u128::MAX`.
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = match acc.checked_mul((n - i) as u128) {
            Some(v) => v / (i as u128 + 1),
            None => return u128::MAX,
        };
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(n: usize, k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for_each_combination(n, k, |c| {
            out.push(c.to_vec());
            false
        });
        out
    }

    #[test]
    fn empty_combination() {
        assert_eq!(collect(5, 0), vec![Vec::<usize>::new()]);
        assert_eq!(collect(0, 0), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn k_greater_than_n_yields_nothing() {
        assert!(collect(2, 3).is_empty());
    }

    #[test]
    fn four_choose_two_lexicographic() {
        assert_eq!(
            collect(4, 2),
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn full_combination() {
        assert_eq!(collect(3, 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn counts_match_binomial() {
        for n in 0..=10 {
            for k in 0..=n {
                assert_eq!(collect(n, k).len() as u128, binomial(n, k), "C({n}, {k})");
            }
        }
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let mut seen = 0;
        let stopped = for_each_combination(6, 2, |_| {
            seen += 1;
            seen == 3
        });
        assert!(stopped);
        assert_eq!(seen, 3);
    }

    #[test]
    fn combinations_are_sorted_and_unique() {
        for c in collect(7, 3) {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        let all = collect(7, 3);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
    }

    /// Replays the delta protocol against the reference enumeration:
    /// the maintained set must equal each visited combination, and
    /// moves must be minimal (no remove-and-re-add of a kept element).
    fn check_delta(n: usize, k: usize) {
        use std::collections::BTreeSet;
        let reference = collect(n, k);
        let mut current: BTreeSet<usize> = BTreeSet::new();
        let mut visited: Vec<Vec<usize>> = Vec::new();
        let mut added: Vec<usize> = Vec::new();
        let mut removed: Vec<usize> = Vec::new();
        let stopped = for_each_combination_delta(n, k, |event| match event {
            DeltaEvent::Move(DeltaOp::Add(x)) => {
                assert!(current.insert(x), "double add of {x}");
                added.push(x);
                false
            }
            DeltaEvent::Move(DeltaOp::Remove(x)) => {
                assert!(current.remove(&x), "remove of absent {x}");
                removed.push(x);
                false
            }
            DeltaEvent::Subset(idx) => {
                let as_set: Vec<usize> = current.iter().copied().collect();
                assert_eq!(as_set, idx, "maintained set diverged");
                // Minimality: an element present before and after the
                // transition must not appear in the moves at all.
                assert!(added.iter().all(|x| !removed.contains(x)), "churned move");
                added.clear();
                removed.clear();
                visited.push(idx.to_vec());
                false
            }
        });
        assert!(!stopped);
        assert_eq!(visited, reference, "C({n}, {k})");
    }

    #[test]
    fn delta_enumeration_matches_reference() {
        for n in 0..=9 {
            for k in 0..=n + 1 {
                check_delta(n, k);
            }
        }
    }

    #[test]
    fn delta_early_exit_and_empty_cases() {
        // k > n: no calls at all.
        let mut touched = false;
        assert!(!for_each_combination_delta(2, 3, |_| {
            touched = true;
            false
        }));
        assert!(!touched);
        // k = 0: one empty visit, no moves.
        let mut visits = 0;
        assert!(!for_each_combination_delta(5, 0, |event| match event {
            DeltaEvent::Move(_) => panic!("no moves for k = 0"),
            DeltaEvent::Subset(idx) => {
                assert!(idx.is_empty());
                visits += 1;
                false
            }
        }));
        assert_eq!(visits, 1);
        // Early exit stops mid-stream, like the reference.
        let mut seen = 0;
        let stopped = for_each_combination_delta(6, 2, |event| match event {
            DeltaEvent::Move(_) => false,
            DeltaEvent::Subset(_) => {
                seen += 1;
                seen == 3
            }
        });
        assert!(stopped);
        assert_eq!(seen, 3);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(3, 7), 0);
        assert_eq!(binomial(200, 100), u128::MAX); // saturates
    }
}
