//! Streaming k-combination enumeration.
//!
//! FMCS examines candidate contingency sets "in the order of their
//! cardinalities" so that the first valid set found is minimal. This
//! module provides the inner loop: lexicographic enumeration of all
//! `k`-subsets of `0..n` with early exit and no per-subset allocation.

/// Calls `f` with each `k`-combination of `0..n` in lexicographic order.
/// `f` returns `true` to stop the enumeration; the function then returns
/// `true`. Returns `false` when the enumeration ran to completion.
///
/// `k == 0` yields exactly one (empty) combination; `k > n` yields none.
pub fn for_each_combination(n: usize, k: usize, mut f: impl FnMut(&[usize]) -> bool) -> bool {
    if k > n {
        return false;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        if f(&idx) {
            return true;
        }
        // Advance to the next lexicographic combination.
        let mut i = k;
        loop {
            if i == 0 {
                return false;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return false;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Number of `k`-combinations of `n` items, saturating at `u128::MAX`.
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = match acc.checked_mul((n - i) as u128) {
            Some(v) => v / (i as u128 + 1),
            None => return u128::MAX,
        };
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(n: usize, k: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for_each_combination(n, k, |c| {
            out.push(c.to_vec());
            false
        });
        out
    }

    #[test]
    fn empty_combination() {
        assert_eq!(collect(5, 0), vec![Vec::<usize>::new()]);
        assert_eq!(collect(0, 0), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn k_greater_than_n_yields_nothing() {
        assert!(collect(2, 3).is_empty());
    }

    #[test]
    fn four_choose_two_lexicographic() {
        assert_eq!(
            collect(4, 2),
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn full_combination() {
        assert_eq!(collect(3, 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn counts_match_binomial() {
        for n in 0..=10 {
            for k in 0..=n {
                assert_eq!(collect(n, k).len() as u128, binomial(n, k), "C({n}, {k})");
            }
        }
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let mut seen = 0;
        let stopped = for_each_combination(6, 2, |_| {
            seen += 1;
            seen == 3
        });
        assert!(stopped);
        assert_eq!(seen, 3);
    }

    #[test]
    fn combinations_are_sorted_and_unique() {
        for c in collect(7, 3) {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        let all = collect(7, 3);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(3, 7), 0);
        assert_eq!(binomial(200, 100), u128::MAX); // saturates
    }
}
