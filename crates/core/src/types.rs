//! Result types of the CRP computations.

use crp_rtree::QueryStats;
use crp_uncertain::ObjectId;
use std::fmt;

/// One actual cause for a non-answer, with its responsibility and a
/// witness minimal contingency set.
#[derive(Clone, Debug, PartialEq)]
pub struct Cause {
    /// The causing object.
    pub id: ObjectId,
    /// `r(id, an) = 1 / (1 + |Γ_min|)`.
    pub responsibility: f64,
    /// One minimal contingency set (there may be several of the same
    /// size; this is the first found in ascending-cardinality order).
    pub min_contingency: Vec<ObjectId>,
    /// True when the cause is counterfactual (`Γ_min = ∅`,
    /// responsibility 1).
    pub counterfactual: bool,
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (r = 1/{}{})",
            self.id,
            self.min_contingency.len() + 1,
            if self.counterfactual {
                ", counterfactual"
            } else {
                ""
            }
        )
    }
}

/// Execution counters for one CRP computation — the metrics the paper's
/// evaluation reports (node accesses as I/O, plus refinement work).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunStats {
    /// R-tree node accesses (the paper's I/O metric).
    pub query: QueryStats,
    /// Number of candidate causes after filtering (`|Cc|`).
    pub candidates: usize,
    /// Objects forced into every contingency set by Lemma 4 (`|Ca|`).
    pub forced: usize,
    /// Counterfactual causes found (`|Cb|`).
    pub counterfactuals: usize,
    /// Candidate contingency sets examined during refinement.
    pub subsets_examined: u64,
    /// Threshold evaluations of `Pr(an)` (each subset check needs up to
    /// two).
    pub prsq_evaluations: u64,
}

impl RunStats {
    /// Merges counters from another run (used when averaging experiments
    /// is done externally; this is a plain sum).
    pub fn absorb(&mut self, other: &RunStats) {
        self.query.absorb(other.query);
        self.candidates += other.candidates;
        self.forced += other.forced;
        self.counterfactuals += other.counterfactuals;
        self.subsets_examined += other.subsets_examined;
        self.prsq_evaluations += other.prsq_evaluations;
    }
}

/// Full output of a CRP computation: every actual cause with its
/// responsibility, plus execution counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CrpOutcome {
    /// Actual causes, sorted by object id.
    pub causes: Vec<Cause>,
    /// Execution counters.
    pub stats: RunStats,
}

impl CrpOutcome {
    /// Looks up a cause by object id.
    pub fn cause(&self, id: ObjectId) -> Option<&Cause> {
        self.causes.iter().find(|c| c.id == id)
    }

    /// The causes ordered by descending responsibility (ties by id), the
    /// presentation order of the paper's Table 3.
    pub fn by_responsibility(&self) -> Vec<&Cause> {
        let mut v: Vec<&Cause> = self.causes.iter().collect();
        v.sort_by(|a, b| {
            b.responsibility
                .partial_cmp(&a.responsibility)
                .expect("responsibilities are finite")
                .then(a.id.cmp(&b.id))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cause(id: u32, gamma: usize) -> Cause {
        Cause {
            id: ObjectId(id),
            responsibility: 1.0 / (1.0 + gamma as f64),
            min_contingency: (0..gamma).map(|i| ObjectId(100 + i as u32)).collect(),
            counterfactual: gamma == 0,
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(cause(3, 2).to_string(), "#3 (r = 1/3)");
        assert_eq!(cause(1, 0).to_string(), "#1 (r = 1/1, counterfactual)");
    }

    #[test]
    fn outcome_lookup_and_ordering() {
        let out = CrpOutcome {
            causes: vec![cause(1, 3), cause(2, 0), cause(3, 3)],
            stats: RunStats::default(),
        };
        assert!(out.cause(ObjectId(2)).unwrap().counterfactual);
        assert!(out.cause(ObjectId(9)).is_none());
        let order: Vec<u32> = out.by_responsibility().iter().map(|c| c.id.0).collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn stats_absorb_sums() {
        let mut a = RunStats {
            candidates: 2,
            subsets_examined: 10,
            ..RunStats::default()
        };
        let b = RunStats {
            candidates: 3,
            prsq_evaluations: 7,
            ..RunStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.candidates, 5);
        assert_eq!(a.subsets_examined, 10);
        assert_eq!(a.prsq_evaluations, 7);
    }
}
