//! Steady-state traversals allocate nothing.
//!
//! The traversal scratch (DFS stack, packed mask/liveness words) is
//! thread-local and reused across calls, and `collect_intersecting_into`
//! writes into a caller-owned buffer — so after one warm-up pass, both
//! the pointer and the packed read paths must run without touching the
//! allocator. This test pins that with a counting global allocator.
//!
//! It must stay the only `#[test]` in this binary: the harness runs
//! tests in the same process concurrently, and any neighbour's
//! allocations would race the counter.

use crp_geom::{HyperRect, Point};
use crp_rtree::{QueryStats, RTree, RTreeParams, WindowQuery};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_traversals_do_not_allocate() {
    // Everything that legitimately allocates happens up front: the
    // tree, its frozen image, the query windows (points heap-allocate
    // their coordinate vectors), and the output buffer.
    let mut tree: RTree<usize> = RTree::new(2, RTreeParams::with_fanout(8));
    for i in 0..2_000usize {
        let x = (i % 50) as f64;
        let y = (i / 50) as f64;
        tree.insert(
            HyperRect::new(Point::from([x, y]), Point::from([x + 0.8, y + 0.8])),
            i,
        );
    }
    let packed = tree.freeze();
    let windows = [
        HyperRect::new(Point::from([3.0, 3.0]), Point::from([11.0, 11.0])),
        HyperRect::new(Point::from([20.0, 17.0]), Point::from([29.0, 26.0])),
    ];
    let groups: [&[HyperRect]; 2] = [&windows[..1], &windows[1..]];
    let mut out: Vec<usize> = Vec::new();
    let mut stats = QueryStats::default();
    let mut per_group = [QueryStats::default(); 2];

    // Warm-up: grows the thread-local scratch (stack, masks, liveness
    // arena) and the output buffer to their steady-state sizes.
    tree.collect_intersecting_into(&windows[0], &mut stats, &mut out);
    tree.visit_windows(&windows, &mut stats, &mut |_| true);
    packed.visit_windows(&windows, &mut stats, &mut |_| true);
    packed.visit_grouped_stats(&groups, &mut stats, Some(&mut per_group), &mut |_, _| true);

    let before = allocations();
    for _ in 0..64 {
        // Pointer path: single-window collect into the reused buffer,
        // then a multi-window visit.
        tree.collect_intersecting_into(&windows[0], &mut stats, &mut out);
        assert!(!out.is_empty());
        tree.visit_windows(&windows, &mut stats, &mut |_| true);

        // Packed path: plain and fused-grouped with per-group stats.
        packed.visit_windows(&windows, &mut stats, &mut |_| true);
        packed.visit_grouped_stats(&groups, &mut stats, Some(&mut per_group), &mut |_, _| true);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state traversals must not allocate"
    );
}
