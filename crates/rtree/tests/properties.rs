//! Property tests: the R*-tree must behave exactly like a brute-force
//! list of `(rect, payload)` pairs under arbitrary operation sequences,
//! while keeping its structural invariants.

use crp_geom::{HyperRect, Point};
use crp_rtree::{QueryStats, RTree, RTreeParams};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert { x: f64, y: f64, id: u32 },
    Remove { index: usize },
    Query { cx: f64, cy: f64, hw: f64, hh: f64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0..100.0f64, 0.0..100.0f64, any::<u32>())
            .prop_map(|(x, y, id)| Op::Insert { x: x.round(), y: y.round(), id }),
        1 => any::<prop::sample::Index>().prop_map(|i| Op::Remove { index: i.index(1_000) }),
        2 => (0.0..100.0f64, 0.0..100.0f64, 0.0..40.0f64, 0.0..40.0f64)
            .prop_map(|(cx, cy, hw, hh)| Op::Query { cx, cy, hw, hh }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_mirrors_bruteforce_under_op_sequences(
        ops in prop::collection::vec(op_strategy(), 1..120),
        fanout in 4usize..12,
    ) {
        let mut tree: RTree<u32> = RTree::new(2, RTreeParams::with_fanout(fanout));
        let mut mirror: Vec<(Point, u32)> = Vec::new();
        for op in ops {
            match op {
                Op::Insert { x, y, id } => {
                    let p = Point::from([x, y]);
                    tree.insert_point(p.clone(), id);
                    mirror.push((p, id));
                }
                Op::Remove { index } => {
                    if mirror.is_empty() {
                        continue;
                    }
                    let (p, id) = mirror.swap_remove(index % mirror.len());
                    prop_assert!(tree.remove(&HyperRect::from_point(&p), &id));
                }
                Op::Query { cx, cy, hw, hh } => {
                    let window = HyperRect::centered(&Point::from([cx, cy]), &[hw, hh]);
                    let mut stats = QueryStats::default();
                    let mut got = tree.collect_intersecting(&window, &mut stats);
                    got.sort_unstable();
                    let mut want: Vec<u32> = mirror
                        .iter()
                        .filter(|(p, _)| window.contains_point(p))
                        .map(|(_, id)| *id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), mirror.len());
        }
        tree.check_invariants();
    }

    /// The incremental-maintenance contract behind the mutable engine
    /// session: any interleaved insert/remove sequence leaves the tree
    /// query-equivalent to a fresh `bulk_load` of the surviving items,
    /// with the structural invariants (balance, min/max fill, consistent
    /// MBRs) intact and the update-path counters accounted.
    #[test]
    fn interleaved_updates_equal_bulk_load_of_survivors(
        initial in prop::collection::vec((0.0..500.0f64, 0.0..500.0f64), 0..80),
        ops in prop::collection::vec(op_strategy(), 1..150),
        fanout in 4usize..10,
    ) {
        let mut tree: RTree<u32> = RTree::new(2, RTreeParams::with_fanout(fanout));
        let mut live: Vec<(Point, u32)> = Vec::new();
        for (i, (x, y)) in initial.iter().enumerate() {
            let p = Point::from([*x, *y]);
            let id = 1_000_000u32 + i as u32;
            tree.insert_point(p.clone(), id);
            live.push((p, id));
        }
        let (mut inserts, mut removes) = (initial.len() as u64, 0u64);
        for op in ops {
            match op {
                Op::Insert { x, y, id } => {
                    let p = Point::from([x, y]);
                    tree.insert_point(p.clone(), id);
                    live.push((p, id));
                    inserts += 1;
                }
                Op::Remove { index } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (p, id) = live.swap_remove(index % live.len());
                    prop_assert!(tree.remove(&HyperRect::from_point(&p), &id));
                    removes += 1;
                }
                Op::Query { .. } => {}
            }
        }
        tree.check_invariants();
        let upkeep = tree.upkeep();
        prop_assert_eq!(upkeep.inserts, inserts);
        prop_assert_eq!(upkeep.removes, removes);

        // Query-equivalent to a bulk load of the survivors, over the
        // full extent and a grid of local windows.
        let packed: RTree<u32> =
            RTree::bulk_load_points(2, RTreeParams::with_fanout(fanout), live.clone());
        prop_assert_eq!(tree.len(), packed.len());
        let mut windows = vec![HyperRect::centered(
            &Point::from([250.0, 250.0]),
            &[300.0, 300.0],
        )];
        for gx in 0..3 {
            for gy in 0..3 {
                windows.push(HyperRect::centered(
                    &Point::from([100.0 + 150.0 * gx as f64, 100.0 + 150.0 * gy as f64]),
                    &[80.0, 80.0],
                ));
            }
        }
        for window in &windows {
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            let mut a = tree.collect_intersecting(window, &mut s1);
            let mut b = packed.collect_intersecting(window, &mut s2);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn bulk_load_equals_incremental_results(
        pts in prop::collection::vec((0.0..1_000.0f64, 0.0..1_000.0f64), 1..300),
        fanout in 4usize..16,
    ) {
        let items: Vec<(Point, u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, (x, y))| (Point::from([*x, *y]), i as u32))
            .collect();
        let bulk: RTree<u32> =
            RTree::bulk_load_points(2, RTreeParams::with_fanout(fanout), items.clone());
        let mut incr: RTree<u32> = RTree::new(2, RTreeParams::with_fanout(fanout));
        for (p, id) in &items {
            incr.insert_point(p.clone(), *id);
        }
        bulk.assert_packed_invariants();
        incr.check_invariants();
        // Same answers to the same queries.
        for window in [
            HyperRect::centered(&Point::from([250.0, 250.0]), &[250.0, 250.0]),
            HyperRect::centered(&Point::from([900.0, 100.0]), &[150.0, 400.0]),
        ] {
            let mut s1 = QueryStats::default();
            let mut s2 = QueryStats::default();
            let mut a = bulk.collect_intersecting(&window, &mut s1);
            let mut b = incr.collect_intersecting(&window, &mut s2);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn multi_window_equals_union_of_single_windows(
        pts in prop::collection::vec((0.0..200.0f64, 0.0..200.0f64), 1..150),
        windows in prop::collection::vec(
            (0.0..200.0f64, 0.0..200.0f64, 1.0..60.0f64, 1.0..60.0f64),
            1..5
        ),
    ) {
        let items: Vec<(Point, u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, (x, y))| (Point::from([*x, *y]), i as u32))
            .collect();
        let tree: RTree<u32> =
            RTree::bulk_load_points(2, RTreeParams::with_fanout(8), items);
        let rects: Vec<HyperRect> = windows
            .iter()
            .map(|(cx, cy, hw, hh)| HyperRect::centered(&Point::from([*cx, *cy]), &[*hw, *hh]))
            .collect();
        let mut multi_stats = QueryStats::default();
        let mut multi: Vec<u32> = Vec::new();
        tree.range_intersect_any(&rects, &mut multi_stats, |_, &id| multi.push(id));
        multi.sort_unstable();
        multi.dedup();
        let mut union: Vec<u32> = Vec::new();
        for r in &rects {
            let mut s = QueryStats::default();
            tree.range_intersect(r, &mut s, |_, &id| union.push(id));
        }
        union.sort_unstable();
        union.dedup();
        prop_assert_eq!(multi, union);
    }
}
