//! Tree shape parameters.

/// Fanout and overflow-treatment parameters of an R*-tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RTreeParams {
    /// Maximum number of entries per node (`M`).
    pub max_entries: usize,
    /// Minimum number of entries per non-root node (`m`).
    pub min_entries: usize,
    /// Number of entries removed and reinserted on the first overflow of
    /// a level per insertion (the R*-tree `p ≈ 30% · M` heuristic). Zero
    /// disables forced reinsertion.
    pub reinsert_count: usize,
}

impl RTreeParams {
    /// Parameters for a given maximum fanout, with the standard R*-tree
    /// fill factor `m = 40% · M` and reinsertion count `p = 30% · M`.
    ///
    /// # Panics
    ///
    /// Panics if `max_entries < 4` (the split heuristics need room to
    /// distribute entries).
    pub fn with_fanout(max_entries: usize) -> Self {
        assert!(max_entries >= 4, "R*-tree fanout must be at least 4");
        let min_entries = ((max_entries as f64 * 0.4) as usize).max(2);
        let reinsert_count = ((max_entries as f64 * 0.3) as usize).max(1);
        Self {
            max_entries,
            min_entries,
            reinsert_count,
        }
    }

    /// Derives the fanout from a disk page size, mirroring the on-disk
    /// layout the paper assumes (4,096-byte pages).
    ///
    /// Each entry stores a `dim`-dimensional rectangle (two `f64` corners)
    /// plus an 8-byte child pointer / record id; a node additionally
    /// carries a small header. For `page_bytes = 4096, dim = 3` this
    /// yields `M = (4096 − 16) / 56 = 72`.
    pub fn from_page_size(page_bytes: usize, dim: usize) -> Self {
        const HEADER_BYTES: usize = 16;
        const POINTER_BYTES: usize = 8;
        let entry_bytes = 2 * dim * std::mem::size_of::<f64>() + POINTER_BYTES;
        let usable = page_bytes.saturating_sub(HEADER_BYTES);
        let fanout = (usable / entry_bytes).max(4);
        Self::with_fanout(fanout)
    }

    /// The paper's configuration: 4,096-byte pages.
    pub fn paper_default(dim: usize) -> Self {
        Self::from_page_size(4096, dim)
    }
}

impl Default for RTreeParams {
    fn default() -> Self {
        Self::with_fanout(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_derivation() {
        let p = RTreeParams::with_fanout(10);
        assert_eq!(p.max_entries, 10);
        assert_eq!(p.min_entries, 4);
        assert_eq!(p.reinsert_count, 3);
    }

    #[test]
    fn page_size_derivation_matches_layout_math() {
        // dim=2: entry = 4*8 + 8 = 40 bytes; (4096-16)/40 = 102.
        let p2 = RTreeParams::from_page_size(4096, 2);
        assert_eq!(p2.max_entries, 102);
        // dim=3: entry = 6*8 + 8 = 56 bytes; (4096-16)/56 = 72.
        let p3 = RTreeParams::from_page_size(4096, 3);
        assert_eq!(p3.max_entries, 72);
        // dim=5: entry = 10*8 + 8 = 88 bytes; (4096-16)/88 = 46.
        let p5 = RTreeParams::from_page_size(4096, 5);
        assert_eq!(p5.max_entries, 46);
    }

    #[test]
    fn tiny_pages_clamp_to_minimum_fanout() {
        let p = RTreeParams::from_page_size(64, 10);
        assert_eq!(p.max_entries, 4);
        assert!(p.min_entries >= 2);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn fanout_below_four_rejected() {
        let _ = RTreeParams::with_fanout(3);
    }

    #[test]
    fn min_entries_never_exceeds_half() {
        for m in 4..200 {
            let p = RTreeParams::with_fanout(m);
            assert!(p.min_entries * 2 <= p.max_entries + 1, "fanout {m}");
            assert!(p.reinsert_count < p.max_entries, "fanout {m}");
        }
    }
}
