//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! The experiment sweeps index up to 10^6 uncertain objects (Fig. 10 /
//! Fig. 13 of the paper); building those trees by repeated insertion is
//! needlessly slow, so large workloads are packed bottom-up with STR
//! (Leutenegger et al.), which also yields near-100% fill and therefore a
//! node count close to a paged on-disk tree.

use crate::node::{BranchEntry, LeafEntry, Node, NodeEntries, NodeId};
use crate::params::RTreeParams;
use crate::tree::RTree;
use crp_geom::{HyperRect, Point};

impl<T> RTree<T> {
    /// Builds a tree from `(rect, data)` pairs using STR packing.
    ///
    /// # Panics
    ///
    /// Panics if any rectangle's dimensionality differs from `dim`.
    pub fn bulk_load(dim: usize, params: RTreeParams, items: Vec<(HyperRect, T)>) -> Self {
        for (r, _) in &items {
            assert_eq!(r.dim(), dim, "dimension mismatch");
        }
        let mut tree = RTree::new(dim, params);
        if items.is_empty() {
            return tree;
        }
        let len = items.len();

        // Pack the leaf level.
        let leaf_groups = str_partition(
            items
                .into_iter()
                .map(|(rect, data)| LeafEntry { rect, data })
                .collect(),
            |e| &e.rect,
            params.max_entries,
            dim,
        );
        let mut level_nodes: Vec<(HyperRect, NodeId)> = leaf_groups
            .into_iter()
            .map(|group| {
                let node = Node {
                    level: 0,
                    entries: NodeEntries::Leaf(group),
                };
                let mbr = node.mbr().expect("STR group is non-empty");
                let id = tree.alloc(node);
                (mbr, id)
            })
            .collect();

        // Pack upper levels until a single root remains.
        let mut level = 1u32;
        while level_nodes.len() > 1 {
            let groups = str_partition(
                level_nodes
                    .into_iter()
                    .map(|(rect, child)| BranchEntry { rect, child })
                    .collect(),
                |e| &e.rect,
                params.max_entries,
                dim,
            );
            level_nodes = groups
                .into_iter()
                .map(|group| {
                    let node = Node {
                        level,
                        entries: NodeEntries::Branch(group),
                    };
                    let mbr = node.mbr().expect("STR group is non-empty");
                    let id = tree.alloc(node);
                    (mbr, id)
                })
                .collect();
            level += 1;
        }

        tree.root = level_nodes[0].1;
        tree.len = len;
        if tree.root != NodeId(0) {
            // The placeholder root from `RTree::new` is dead; recycle it.
            tree.release(NodeId(0));
        }
        tree
    }

    /// Bulk-loads points (degenerate rectangles).
    pub fn bulk_load_points(dim: usize, params: RTreeParams, items: Vec<(Point, T)>) -> Self {
        Self::bulk_load(
            dim,
            params,
            items
                .into_iter()
                .map(|(p, d)| (HyperRect::from_point(&p), d))
                .collect(),
        )
    }
}

/// Recursively tiles `entries` into groups of at most `capacity`,
/// cycling through the axes: sort by axis centre, carve into
/// `ceil(n / capacity)^(1/remaining_axes)`-ish slabs, recurse.
fn str_partition<E>(
    entries: Vec<E>,
    rect_of: impl Fn(&E) -> &HyperRect + Copy,
    capacity: usize,
    dim: usize,
) -> Vec<Vec<E>> {
    let mut out = Vec::new();
    str_recurse(entries, rect_of, capacity, dim, 0, &mut out);
    out
}

fn str_recurse<E>(
    mut entries: Vec<E>,
    rect_of: impl Fn(&E) -> &HyperRect + Copy,
    capacity: usize,
    dim: usize,
    axis: usize,
    out: &mut Vec<Vec<E>>,
) {
    let n = entries.len();
    if n <= capacity {
        if n > 0 {
            out.push(entries);
        }
        return;
    }
    if axis + 1 == dim {
        // Last axis: emit runs of `capacity`.
        entries.sort_by(|a, b| {
            let ca = rect_of(a).center()[axis];
            let cb = rect_of(b).center()[axis];
            ca.partial_cmp(&cb).expect("finite coordinates")
        });
        while !entries.is_empty() {
            let take = entries.len().min(capacity);
            let rest = entries.split_off(take);
            out.push(entries);
            entries = rest;
        }
        return;
    }
    entries.sort_by(|a, b| {
        let ca = rect_of(a).center()[axis];
        let cb = rect_of(b).center()[axis];
        ca.partial_cmp(&cb).expect("finite coordinates")
    });
    // Number of leaf pages this subtree will need, split across the
    // remaining axes evenly: S = ceil(P^((d-axis-1)/(d-axis))) slabs.
    let pages = n.div_ceil(capacity);
    let remaining = (dim - axis) as f64;
    let slabs = (pages as f64).powf((remaining - 1.0) / remaining).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    while !entries.is_empty() {
        let take = entries.len().min(slab_size);
        let rest = entries.split_off(take);
        str_recurse(entries, rect_of, capacity, dim, axis + 1, out);
        entries = rest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<(Point, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let p = Point::new(
                    (0..dim)
                        .map(|_| rng.random_range(0.0..10_000.0f64))
                        .collect::<Vec<_>>(),
                );
                (p, i)
            })
            .collect()
    }

    #[test]
    fn bulk_load_empty() {
        let tree: RTree<usize> = RTree::bulk_load(2, RTreeParams::with_fanout(8), Vec::new());
        assert!(tree.is_empty());
    }

    #[test]
    fn bulk_load_single() {
        let tree: RTree<usize> = RTree::bulk_load_points(
            2,
            RTreeParams::with_fanout(8),
            vec![(Point::from([1.0, 2.0]), 7)],
        );
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn bulk_load_preserves_all_entries() {
        for n in [5usize, 64, 65, 1000, 4097] {
            let tree: RTree<usize> =
                RTree::bulk_load_points(3, RTreeParams::with_fanout(16), random_points(n, 3, 42));
            assert_eq!(tree.len(), n, "n={n}");
            let mut ids = Vec::new();
            tree.for_each(|_, &i| ids.push(i));
            ids.sort_unstable();
            assert_eq!(ids, (0..n).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn bulk_load_is_balanced_with_consistent_mbrs() {
        let tree: RTree<usize> =
            RTree::bulk_load_points(2, RTreeParams::with_fanout(10), random_points(2000, 2, 1));
        // STR fills nodes to capacity; min-fill of the *last* node per
        // level can dip below `m`, which is acceptable for packed trees.
        // We therefore check MBR consistency and balance only.
        tree.assert_packed_invariants();
    }

    #[test]
    fn bulk_load_dense_fill() {
        let n = 10_000usize;
        let cap = 20usize;
        let tree: RTree<usize> =
            RTree::bulk_load_points(2, RTreeParams::with_fanout(cap), random_points(n, 2, 5));
        // Near-full packing: node count within 2x of the theoretical
        // minimum number of leaves.
        let min_leaves = n.div_ceil(cap);
        assert!(
            tree.node_count() <= 2 * min_leaves + 16,
            "packed tree too sparse: {} nodes for {} min leaves",
            tree.node_count(),
            min_leaves
        );
    }
}
