//! Queries with node-access accounting.

use crate::node::{NodeEntries, NodeId};
use crate::tree::RTree;
use crp_geom::HyperRect;

/// Accumulates the I/O metric the paper reports — the number of tree
/// nodes touched by queries — plus the maintenance and cache counters a
/// long-lived mutable session reports alongside it. Reset (or use a
/// fresh value) per measurement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total nodes read (internal + leaf).
    pub node_accesses: u64,
    /// Leaf nodes read (subset of `node_accesses`).
    pub leaf_accesses: u64,
    /// Data entries inserted through the incremental update path.
    pub inserts: u64,
    /// Data entries removed through the incremental update path.
    pub removes: u64,
    /// Items moved by R*-tree maintenance — data records, or whole
    /// subtrees relocated in one step — via forced reinsertion on
    /// overflow and condense-tree orphan reinsertion on underflow.
    /// Each moved item counts once (a dissolved subtree counts per
    /// record, a block-moved subtree as one).
    pub reinserts: u64,
    /// Explanation-cache hits (row or outcome) of the engine session.
    pub cache_hits: u64,
    /// Explanation-cache misses of the engine session.
    pub cache_misses: u64,
    /// Explanation-cache entries evicted by update invalidation.
    pub cache_evictions: u64,
    /// Contingency-condition classifications answered by the refine
    /// stage's fast evaluator (columnar product or incremental
    /// log-space delta) without an exact re-verification.
    pub eval_fast: u64,
    /// Classifications that fell into the guard band around the
    /// decision threshold and were re-verified by the exact reference
    /// product.
    pub eval_slow: u64,
}

impl QueryStats {
    /// Merges another accumulator into this one.
    pub fn absorb(&mut self, other: QueryStats) {
        self.node_accesses += other.node_accesses;
        self.leaf_accesses += other.leaf_accesses;
        self.inserts += other.inserts;
        self.removes += other.removes;
        self.reinserts += other.reinserts;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.eval_fast += other.eval_fast;
        self.eval_slow += other.eval_slow;
    }
}

impl std::ops::Add for QueryStats {
    type Output = QueryStats;

    fn add(mut self, rhs: QueryStats) -> QueryStats {
        self.absorb(rhs);
        self
    }
}

impl std::ops::AddAssign for QueryStats {
    fn add_assign(&mut self, rhs: QueryStats) {
        self.absorb(rhs);
    }
}

/// Rolls per-shard (or per-query) counters up into one total —
/// `shards.iter().map(|s| s.io.snapshot()).sum()`.
impl std::iter::Sum for QueryStats {
    fn sum<I: Iterator<Item = QueryStats>>(iter: I) -> QueryStats {
        iter.fold(QueryStats::default(), |acc, s| acc + s)
    }
}

impl<T> RTree<T> {
    /// Visits every data entry whose rectangle intersects `window`
    /// (closed-boundary semantics).
    pub fn range_intersect(
        &self,
        window: &HyperRect,
        stats: &mut QueryStats,
        mut visitor: impl FnMut(&HyperRect, &T),
    ) {
        if self.is_empty() {
            return;
        }
        let windows = std::slice::from_ref(window);
        self.visit_multi(self.root_id(), windows, stats, &mut |r, t| {
            visitor(r, t);
            true
        });
    }

    /// Visits every data entry whose rectangle intersects *any* of the
    /// `windows` — the RecList traversal of Algorithm 1 (CP filtering):
    /// one branch-and-bound descent serves the whole rectangle list, so a
    /// node shared by several windows is read once.
    pub fn range_intersect_any(
        &self,
        windows: &[HyperRect],
        stats: &mut QueryStats,
        mut visitor: impl FnMut(&HyperRect, &T),
    ) {
        if self.is_empty() || windows.is_empty() {
            return;
        }
        self.visit_multi(self.root_id(), windows, stats, &mut |r, t| {
            visitor(r, t);
            true
        });
    }

    /// Existence query: returns the first entry intersecting `window` and
    /// satisfying `pred`, pruning the traversal as soon as it is found.
    pub fn find_intersecting<'a>(
        &'a self,
        window: &HyperRect,
        stats: &mut QueryStats,
        mut pred: impl FnMut(&HyperRect, &T) -> bool,
    ) -> Option<&'a T> {
        if self.is_empty() {
            return None;
        }
        let mut found: Option<&'a T> = None;
        self.visit_multi_ref(
            self.root_id(),
            std::slice::from_ref(window),
            stats,
            &mut |r, t| {
                if pred(r, t) {
                    found = Some(t);
                    false // stop traversal
                } else {
                    true
                }
            },
        );
        found
    }

    /// Collects the payloads of all entries intersecting `window`.
    pub fn collect_intersecting(&self, window: &HyperRect, stats: &mut QueryStats) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::new();
        self.range_intersect(window, stats, |_, t| out.push(t.clone()));
        out
    }

    fn root_id(&self) -> NodeId {
        self.root
    }

    /// Depth-first multi-window traversal. The visitor returns `false` to
    /// abort the whole traversal (early termination for existence
    /// queries). Returns `false` when aborted.
    fn visit_multi(
        &self,
        node_id: NodeId,
        windows: &[HyperRect],
        stats: &mut QueryStats,
        visitor: &mut impl FnMut(&HyperRect, &T) -> bool,
    ) -> bool {
        stats.node_accesses += 1;
        let node = self.node(node_id);
        match &node.entries {
            NodeEntries::Leaf(v) => {
                stats.leaf_accesses += 1;
                for e in v {
                    if windows.iter().any(|w| w.intersects(&e.rect)) && !visitor(&e.rect, &e.data) {
                        return false;
                    }
                }
            }
            NodeEntries::Branch(v) => {
                for e in v {
                    if windows.iter().any(|w| w.intersects(&e.rect))
                        && !self.visit_multi(e.child, windows, stats, visitor)
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Same traversal, but the visitor may keep references into the tree.
    fn visit_multi_ref<'a>(
        &'a self,
        node_id: NodeId,
        windows: &[HyperRect],
        stats: &mut QueryStats,
        visitor: &mut impl FnMut(&'a HyperRect, &'a T) -> bool,
    ) -> bool {
        stats.node_accesses += 1;
        let node = self.node(node_id);
        match &node.entries {
            NodeEntries::Leaf(v) => {
                stats.leaf_accesses += 1;
                for e in v {
                    if windows.iter().any(|w| w.intersects(&e.rect)) && !visitor(&e.rect, &e.data) {
                        return false;
                    }
                }
            }
            NodeEntries::Branch(v) => {
                for e in v {
                    if windows.iter().any(|w| w.intersects(&e.rect))
                        && !self.visit_multi_ref(e.child, windows, stats, visitor)
                    {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RTreeParams;
    use crp_geom::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_tree(n: usize) -> RTree<usize> {
        let mut tree = RTree::new(2, RTreeParams::with_fanout(8));
        for i in 0..n {
            tree.insert_point(Point::from([(i % 10) as f64, (i / 10) as f64]), i);
        }
        tree
    }

    fn window(lo: [f64; 2], hi: [f64; 2]) -> HyperRect {
        HyperRect::new(Point::from(lo), Point::from(hi))
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<(Point, usize)> = (0..400)
            .map(|i| {
                (
                    Point::from([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]),
                    i,
                )
            })
            .collect();
        let tree = RTree::bulk_load_points(2, RTreeParams::with_fanout(8), pts.clone());
        for _ in 0..20 {
            let lo = [rng.random_range(0.0..80.0), rng.random_range(0.0..80.0)];
            let w = window(lo, [lo[0] + rng.random_range(0.0..30.0), lo[1] + 20.0]);
            let mut stats = QueryStats::default();
            let mut got = tree.collect_intersecting(&w, &mut stats);
            got.sort_unstable();
            let mut expected: Vec<usize> = pts
                .iter()
                .filter(|(p, _)| w.contains_point(p))
                .map(|(_, i)| *i)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn empty_tree_zero_accesses() {
        let tree: RTree<usize> = RTree::new(2, RTreeParams::with_fanout(8));
        let mut stats = QueryStats::default();
        let got = tree.collect_intersecting(&window([0.0, 0.0], [10.0, 10.0]), &mut stats);
        assert!(got.is_empty());
        assert_eq!(stats.node_accesses, 0);
    }

    #[test]
    fn multi_window_visits_shared_nodes_once() {
        let tree = grid_tree(100);
        let w1 = window([0.0, 0.0], [3.0, 3.0]);
        let w2 = window([1.0, 1.0], [4.0, 4.0]); // heavy overlap with w1
        let mut multi_stats = QueryStats::default();
        let mut ids = Vec::new();
        tree.range_intersect_any(&[w1.clone(), w2.clone()], &mut multi_stats, |_, &i| {
            ids.push(i)
        });
        // Compare against two separate queries with deduplication.
        let mut sep_stats = QueryStats::default();
        let mut sep: Vec<usize> = Vec::new();
        tree.range_intersect(&w1, &mut sep_stats, |_, &i| sep.push(i));
        tree.range_intersect(&w2, &mut sep_stats, |_, &i| sep.push(i));
        sep.sort_unstable();
        sep.dedup();
        // The multi-query may emit a point twice only if it matches two
        // windows in different leaf entries — not possible here (one entry
        // per point), so dedup only the separate runs.
        ids.sort_unstable();
        assert_eq!(ids, sep);
        assert!(multi_stats.node_accesses <= sep_stats.node_accesses);
    }

    #[test]
    fn existence_query_early_terminates() {
        let tree = grid_tree(100);
        let w = window([0.0, 0.0], [9.0, 9.0]); // everything
        let mut stats_all = QueryStats::default();
        let mut n = 0u32;
        tree.range_intersect(&w, &mut stats_all, |_, _| n += 1);
        assert_eq!(n, 100);

        let mut stats_find = QueryStats::default();
        let hit = tree.find_intersecting(&w, &mut stats_find, |_, _| true);
        assert!(hit.is_some());
        assert!(
            stats_find.node_accesses < stats_all.node_accesses,
            "existence query should prune: {} vs {}",
            stats_find.node_accesses,
            stats_all.node_accesses
        );
    }

    #[test]
    fn find_respects_predicate() {
        let tree = grid_tree(100);
        let w = window([0.0, 0.0], [9.0, 9.0]);
        let mut stats = QueryStats::default();
        let hit = tree.find_intersecting(&w, &mut stats, |_, &i| i == 77);
        assert_eq!(hit, Some(&77));
        let miss = tree.find_intersecting(&w, &mut stats, |_, &i| i == 1000);
        assert_eq!(miss, None);
    }

    #[test]
    fn stats_absorb() {
        let mut a = QueryStats {
            node_accesses: 3,
            leaf_accesses: 1,
            ..Default::default()
        };
        a.absorb(QueryStats {
            node_accesses: 4,
            leaf_accesses: 2,
            inserts: 1,
            reinserts: 2,
            cache_hits: 3,
            ..Default::default()
        });
        assert_eq!(a.node_accesses, 7);
        assert_eq!(a.leaf_accesses, 3);
        assert_eq!(a.inserts, 1);
        assert_eq!(a.reinserts, 2);
        assert_eq!(a.cache_hits, 3);
    }

    #[test]
    fn boundary_intersection_is_closed() {
        let mut tree: RTree<u32> = RTree::new(2, RTreeParams::with_fanout(4));
        tree.insert_point(Point::from([5.0, 5.0]), 1);
        let w = window([0.0, 0.0], [5.0, 5.0]); // point on corner
        let mut stats = QueryStats::default();
        let got = tree.collect_intersecting(&w, &mut stats);
        assert_eq!(got, vec![1]);
    }
}
