//! Queries with node-access accounting.
//!
//! Every window query in this crate — single-window, multi-window
//! (Algorithm 1's RecList descent) and the fused multi-*query* descent
//! of the packed projection — is one traversal contract,
//! [`WindowQuery`], implemented exactly once per tree representation:
//! the pointer tree's core is [`RTree::visit_grouped_core`], the packed
//! tree's is `PackedRTree::visit_grouped_stats`. The four public query
//! entry points are thin wrappers, so traversal order, pruning and the
//! node-access counters cannot drift between them.

use crate::node::{NodeEntries, NodeId};
use crate::tree::RTree;
use crp_geom::HyperRect;
use std::cell::RefCell;

/// Accumulates the I/O metric the paper reports — the number of tree
/// nodes touched by queries — plus the maintenance and cache counters a
/// long-lived mutable session reports alongside it. Reset (or use a
/// fresh value) per measurement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Total nodes read (internal + leaf).
    pub node_accesses: u64,
    /// Leaf nodes read (subset of `node_accesses`).
    pub leaf_accesses: u64,
    /// Data entries inserted through the incremental update path.
    pub inserts: u64,
    /// Data entries removed through the incremental update path.
    pub removes: u64,
    /// Items moved by R*-tree maintenance — data records, or whole
    /// subtrees relocated in one step — via forced reinsertion on
    /// overflow and condense-tree orphan reinsertion on underflow.
    /// Each moved item counts once (a dissolved subtree counts per
    /// record, a block-moved subtree as one).
    pub reinserts: u64,
    /// Packed-image rebuilds paid eagerly on the update path
    /// ([`RTree::refreeze`](crate::RTree::refreeze)) so the first
    /// post-update filter descent finds a warm frozen snapshot.
    pub refreezes: u64,
    /// Explanation-cache hits (row or outcome) of the engine session.
    pub cache_hits: u64,
    /// Explanation-cache misses of the engine session.
    pub cache_misses: u64,
    /// Explanation-cache entries evicted by update invalidation.
    pub cache_evictions: u64,
    /// Contingency-condition classifications answered by the refine
    /// stage's fast evaluator (columnar product or incremental
    /// log-space delta) without an exact re-verification.
    pub eval_fast: u64,
    /// Classifications that fell into the guard band around the
    /// decision threshold and were re-verified by the exact reference
    /// product.
    pub eval_slow: u64,
}

impl QueryStats {
    /// Merges another accumulator into this one.
    pub fn absorb(&mut self, other: QueryStats) {
        self.node_accesses += other.node_accesses;
        self.leaf_accesses += other.leaf_accesses;
        self.inserts += other.inserts;
        self.removes += other.removes;
        self.reinserts += other.reinserts;
        self.refreezes += other.refreezes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.eval_fast += other.eval_fast;
        self.eval_slow += other.eval_slow;
    }
}

impl std::ops::Add for QueryStats {
    type Output = QueryStats;

    fn add(mut self, rhs: QueryStats) -> QueryStats {
        self.absorb(rhs);
        self
    }
}

impl std::ops::AddAssign for QueryStats {
    fn add_assign(&mut self, rhs: QueryStats) {
        self.absorb(rhs);
    }
}

/// Rolls per-shard (or per-query) counters up into one total —
/// `shards.iter().map(|s| s.io.snapshot()).sum()`.
impl std::iter::Sum for QueryStats {
    fn sum<I: Iterator<Item = QueryStats>>(iter: I) -> QueryStats {
        iter.fold(QueryStats::default(), |acc, s| acc + s)
    }
}

/// Reusable traversal workspace: the DFS stacks and the packed
/// projection's mask/liveness buffers. One instance lives per thread
/// (see [`with_scratch`]), so steady-state traversals allocate nothing —
/// a property pinned by the crate's counting-allocator test.
#[derive(Default)]
pub(crate) struct TraversalScratch {
    /// Pending pointer-tree nodes (DFS order).
    pub(crate) stack: Vec<NodeId>,
    /// Pending packed nodes with their live-frame offsets.
    pub(crate) packed_stack: Vec<(u32, u32)>,
    /// Per-group entry-match bitmasks of the node being visited.
    pub(crate) masks: Vec<u64>,
    /// Live-group bitset frames, one per pushed packed node.
    pub(crate) live: Vec<u64>,
}

thread_local! {
    static SCRATCH: RefCell<TraversalScratch> = RefCell::new(TraversalScratch::default());
}

/// Runs `f` with this thread's traversal scratch. The workspace is
/// *taken* for the duration (not borrowed), so a visitor that re-enters
/// a traversal gets a fresh — allocating, but correct — workspace
/// instead of a `RefCell` panic; the outer workspace is restored
/// afterwards, keeping its grown buffers for the next call.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut TraversalScratch) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut scratch = cell.take();
        let out = f(&mut scratch);
        cell.replace(scratch);
        out
    })
}

/// The traversal contract shared by the pointer [`RTree`] and its
/// packed read-only projection
/// ([`PackedRTree`](crate::PackedRTree)): one depth-first descent
/// serving one *or many* window queries. Stage-1 filtering in the
/// engine crate is generic over this trait, so the pointer and packed
/// paths run bit-identical filter code.
pub trait WindowQuery<T> {
    /// Fused multi-query traversal: each element of `groups` is one
    /// query's window list, and a single descent serves them all — a
    /// child is entered when *any* group's window intersects its entry
    /// rectangle, and `visitor` receives `(group index, payload)` for
    /// every (group, entry) match, entries in depth-first entry order,
    /// groups in ascending order per entry. Returning `false` aborts
    /// the whole traversal (the return value is `false` iff aborted).
    ///
    /// Per-group hit sequences are identical to running each group
    /// alone: window/rectangle intersection is containment-monotone
    /// (a window missing a node's entry rectangle cannot intersect any
    /// rectangle inside it), so a group never matches an entry below a
    /// branch it would itself have pruned. `stats` counts each
    /// *physical* node visit once — the fused descent's whole point is
    /// that this union cost is below the per-group sum.
    fn visit_grouped<'a>(
        &'a self,
        groups: &[&[HyperRect]],
        stats: &mut QueryStats,
        visitor: &mut dyn FnMut(usize, &'a T) -> bool,
    ) -> bool;

    /// Single-query any-window traversal — group 0 of
    /// [`WindowQuery::visit_grouped`].
    fn visit_windows<'a>(
        &'a self,
        windows: &[HyperRect],
        stats: &mut QueryStats,
        visitor: &mut dyn FnMut(&'a T) -> bool,
    ) -> bool {
        self.visit_grouped(&[windows], stats, &mut |_, t| visitor(t))
    }
}

impl<T> WindowQuery<T> for RTree<T> {
    fn visit_grouped<'a>(
        &'a self,
        groups: &[&[HyperRect]],
        stats: &mut QueryStats,
        visitor: &mut dyn FnMut(usize, &'a T) -> bool,
    ) -> bool {
        self.visit_grouped_core(groups, stats, &mut |g, _, t| visitor(g, t))
    }
}

impl<T> RTree<T> {
    /// Visits every data entry whose rectangle intersects `window`
    /// (closed-boundary semantics).
    pub fn range_intersect(
        &self,
        window: &HyperRect,
        stats: &mut QueryStats,
        mut visitor: impl FnMut(&HyperRect, &T),
    ) {
        self.visit_grouped_core(&[std::slice::from_ref(window)], stats, &mut |_, r, t| {
            visitor(r, t);
            true
        });
    }

    /// Visits every data entry whose rectangle intersects *any* of the
    /// `windows` — the RecList traversal of Algorithm 1 (CP filtering):
    /// one branch-and-bound descent serves the whole rectangle list, so a
    /// node shared by several windows is read once.
    pub fn range_intersect_any(
        &self,
        windows: &[HyperRect],
        stats: &mut QueryStats,
        mut visitor: impl FnMut(&HyperRect, &T),
    ) {
        self.visit_grouped_core(&[windows], stats, &mut |_, r, t| {
            visitor(r, t);
            true
        });
    }

    /// Existence query: returns the first entry intersecting `window` and
    /// satisfying `pred`, pruning the traversal as soon as it is found.
    pub fn find_intersecting<'a>(
        &'a self,
        window: &HyperRect,
        stats: &mut QueryStats,
        mut pred: impl FnMut(&HyperRect, &T) -> bool,
    ) -> Option<&'a T> {
        let mut found: Option<&'a T> = None;
        self.visit_grouped_core(&[std::slice::from_ref(window)], stats, &mut |_, r, t| {
            if pred(r, t) {
                found = Some(t);
                false // stop traversal
            } else {
                true
            }
        });
        found
    }

    /// Collects the payloads of all entries intersecting `window`.
    pub fn collect_intersecting(&self, window: &HyperRect, stats: &mut QueryStats) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::new();
        self.collect_intersecting_into(window, stats, &mut out);
        out
    }

    /// [`RTree::collect_intersecting`] into a caller-owned buffer:
    /// clears `out`, then fills it. With a warm buffer (and this
    /// thread's traversal stack grown once), repeated queries allocate
    /// nothing.
    pub fn collect_intersecting_into(
        &self,
        window: &HyperRect,
        stats: &mut QueryStats,
        out: &mut Vec<T>,
    ) where
        T: Clone,
    {
        out.clear();
        self.range_intersect(window, stats, |_, t| out.push(t.clone()));
    }

    /// The single traversal core behind every pointer-tree window
    /// query: an iterative depth-first descent over a reusable stack,
    /// visiting nodes in exactly the order the classic recursive
    /// formulation does (children are pushed in reverse entry order).
    /// `stats.node_accesses` advances once per visited node,
    /// `stats.leaf_accesses` once per visited leaf; a `false` from the
    /// visitor aborts the whole traversal with the counters reflecting
    /// the nodes actually read.
    fn visit_grouped_core<'a>(
        &'a self,
        groups: &[&[HyperRect]],
        stats: &mut QueryStats,
        visitor: &mut impl FnMut(usize, &'a HyperRect, &'a T) -> bool,
    ) -> bool {
        if self.is_empty() || groups.iter().all(|g| g.is_empty()) {
            return true;
        }
        with_scratch(|scratch| {
            let stack = &mut scratch.stack;
            stack.clear();
            stack.push(self.root);
            while let Some(id) = stack.pop() {
                stats.node_accesses += 1;
                match &self.node(id).entries {
                    NodeEntries::Leaf(v) => {
                        stats.leaf_accesses += 1;
                        for e in v {
                            for (gi, g) in groups.iter().enumerate() {
                                if g.iter().any(|w| w.intersects(&e.rect))
                                    && !visitor(gi, &e.rect, &e.data)
                                {
                                    stack.clear();
                                    return false;
                                }
                            }
                        }
                    }
                    NodeEntries::Branch(v) => {
                        let before = stack.len();
                        for e in v {
                            if groups
                                .iter()
                                .any(|g| g.iter().any(|w| w.intersects(&e.rect)))
                            {
                                stack.push(e.child);
                            }
                        }
                        stack[before..].reverse();
                    }
                }
            }
            true
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RTreeParams;
    use crp_geom::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_tree(n: usize) -> RTree<usize> {
        let mut tree = RTree::new(2, RTreeParams::with_fanout(8));
        for i in 0..n {
            tree.insert_point(Point::from([(i % 10) as f64, (i / 10) as f64]), i);
        }
        tree
    }

    fn window(lo: [f64; 2], hi: [f64; 2]) -> HyperRect {
        HyperRect::new(Point::from(lo), Point::from(hi))
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<(Point, usize)> = (0..400)
            .map(|i| {
                (
                    Point::from([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]),
                    i,
                )
            })
            .collect();
        let tree = RTree::bulk_load_points(2, RTreeParams::with_fanout(8), pts.clone());
        for _ in 0..20 {
            let lo = [rng.random_range(0.0..80.0), rng.random_range(0.0..80.0)];
            let w = window(lo, [lo[0] + rng.random_range(0.0..30.0), lo[1] + 20.0]);
            let mut stats = QueryStats::default();
            let mut got = tree.collect_intersecting(&w, &mut stats);
            got.sort_unstable();
            let mut expected: Vec<usize> = pts
                .iter()
                .filter(|(p, _)| w.contains_point(p))
                .map(|(_, i)| *i)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn empty_tree_zero_accesses() {
        let tree: RTree<usize> = RTree::new(2, RTreeParams::with_fanout(8));
        let mut stats = QueryStats::default();
        let got = tree.collect_intersecting(&window([0.0, 0.0], [10.0, 10.0]), &mut stats);
        assert!(got.is_empty());
        assert_eq!(stats.node_accesses, 0);
    }

    #[test]
    fn multi_window_visits_shared_nodes_once() {
        let tree = grid_tree(100);
        let w1 = window([0.0, 0.0], [3.0, 3.0]);
        let w2 = window([1.0, 1.0], [4.0, 4.0]); // heavy overlap with w1
        let mut multi_stats = QueryStats::default();
        let mut ids = Vec::new();
        tree.range_intersect_any(&[w1.clone(), w2.clone()], &mut multi_stats, |_, &i| {
            ids.push(i)
        });
        // Compare against two separate queries with deduplication.
        let mut sep_stats = QueryStats::default();
        let mut sep: Vec<usize> = Vec::new();
        tree.range_intersect(&w1, &mut sep_stats, |_, &i| sep.push(i));
        tree.range_intersect(&w2, &mut sep_stats, |_, &i| sep.push(i));
        sep.sort_unstable();
        sep.dedup();
        // The multi-query may emit a point twice only if it matches two
        // windows in different leaf entries — not possible here (one entry
        // per point), so dedup only the separate runs.
        ids.sort_unstable();
        assert_eq!(ids, sep);
        assert!(multi_stats.node_accesses <= sep_stats.node_accesses);
    }

    #[test]
    fn existence_query_early_terminates() {
        let tree = grid_tree(100);
        let w = window([0.0, 0.0], [9.0, 9.0]); // everything
        let mut stats_all = QueryStats::default();
        let mut n = 0u32;
        tree.range_intersect(&w, &mut stats_all, |_, _| n += 1);
        assert_eq!(n, 100);

        let mut stats_find = QueryStats::default();
        let hit = tree.find_intersecting(&w, &mut stats_find, |_, _| true);
        assert!(hit.is_some());
        assert!(
            stats_find.node_accesses < stats_all.node_accesses,
            "existence query should prune: {} vs {}",
            stats_find.node_accesses,
            stats_all.node_accesses
        );
    }

    #[test]
    fn find_respects_predicate() {
        let tree = grid_tree(100);
        let w = window([0.0, 0.0], [9.0, 9.0]);
        let mut stats = QueryStats::default();
        let hit = tree.find_intersecting(&w, &mut stats, |_, &i| i == 77);
        assert_eq!(hit, Some(&77));
        let miss = tree.find_intersecting(&w, &mut stats, |_, &i| i == 1000);
        assert_eq!(miss, None);
    }

    #[test]
    fn stats_absorb() {
        let mut a = QueryStats {
            node_accesses: 3,
            leaf_accesses: 1,
            ..Default::default()
        };
        a.absorb(QueryStats {
            node_accesses: 4,
            leaf_accesses: 2,
            inserts: 1,
            reinserts: 2,
            cache_hits: 3,
            ..Default::default()
        });
        assert_eq!(a.node_accesses, 7);
        assert_eq!(a.leaf_accesses, 3);
        assert_eq!(a.inserts, 1);
        assert_eq!(a.reinserts, 2);
        assert_eq!(a.cache_hits, 3);
    }

    #[test]
    fn grouped_traversal_matches_per_query_runs() {
        let tree = grid_tree(100);
        let g0 = vec![
            window([0.0, 0.0], [2.0, 2.0]),
            window([7.0, 7.0], [9.0, 9.0]),
        ];
        let g1 = vec![window([3.0, 0.0], [5.0, 4.0])];
        let g2: Vec<HyperRect> = Vec::new(); // empty group never matches

        let mut fused_stats = QueryStats::default();
        let mut fused: Vec<Vec<usize>> = vec![Vec::new(); 3];
        WindowQuery::visit_grouped(&tree, &[&g0, &g1, &g2], &mut fused_stats, &mut |g, &i| {
            fused[g].push(i);
            true
        });

        let mut solo_sum = QueryStats::default();
        for (g, windows) in [(0usize, &g0), (1, &g1), (2, &g2)] {
            let mut stats = QueryStats::default();
            let mut solo = Vec::new();
            tree.range_intersect_any(windows, &mut stats, |_, &i| solo.push(i));
            // Per-group hit sequence (including order) identical to the
            // group's solo descent.
            assert_eq!(fused[g], solo, "group {g}");
            solo_sum += stats;
        }
        // One physical descent serves all groups: strictly cheaper than
        // the per-query sum (the root alone is shared by both live
        // groups).
        assert!(fused_stats.node_accesses < solo_sum.node_accesses);
        assert!(fused_stats.leaf_accesses <= solo_sum.leaf_accesses);
    }

    #[test]
    fn visit_windows_trait_matches_range_intersect_any() {
        let tree = grid_tree(100);
        let windows = vec![
            window([1.0, 1.0], [4.0, 3.0]),
            window([6.0, 6.0], [8.0, 8.0]),
        ];
        let mut a_stats = QueryStats::default();
        let mut a = Vec::new();
        tree.range_intersect_any(&windows, &mut a_stats, |_, &i| a.push(i));
        let mut b_stats = QueryStats::default();
        let mut b = Vec::new();
        WindowQuery::visit_windows(&tree, &windows, &mut b_stats, &mut |&i| {
            b.push(i);
            true
        });
        assert_eq!(a, b);
        assert_eq!(a_stats, b_stats);
    }

    #[test]
    fn collect_into_reuses_buffer() {
        let tree = grid_tree(100);
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        tree.collect_intersecting_into(&window([0.0, 0.0], [3.0, 3.0]), &mut stats, &mut out);
        let first: Vec<usize> = out.clone();
        tree.collect_intersecting_into(&window([0.0, 0.0], [3.0, 3.0]), &mut stats, &mut out);
        assert_eq!(out, first, "buffer is cleared, not appended to");
        assert!(!out.is_empty());
    }

    #[test]
    fn boundary_intersection_is_closed() {
        let mut tree: RTree<u32> = RTree::new(2, RTreeParams::with_fanout(4));
        tree.insert_point(Point::from([5.0, 5.0]), 1);
        let w = window([0.0, 0.0], [5.0, 5.0]); // point on corner
        let mut stats = QueryStats::default();
        let got = tree.collect_intersecting(&w, &mut stats);
        assert_eq!(got, vec![1]);
    }
}
