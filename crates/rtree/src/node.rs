//! Arena-allocated tree nodes.

use crp_geom::HyperRect;

/// Index of a node in the tree arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// One entry of an internal node: a child subtree and its bounding box.
#[derive(Clone, Debug)]
pub(crate) struct BranchEntry {
    pub rect: HyperRect,
    pub child: NodeId,
}

/// One entry of a leaf node: a data rectangle and its payload.
#[derive(Clone, Debug)]
pub(crate) struct LeafEntry<T> {
    pub rect: HyperRect,
    pub data: T,
}

/// Node payload: either child pointers or data records.
#[derive(Clone, Debug)]
pub(crate) enum NodeEntries<T> {
    Branch(Vec<BranchEntry>),
    Leaf(Vec<LeafEntry<T>>),
}

/// A tree node. `level == 0` for leaves; the root sits at the highest
/// level. Freed nodes (after splits/merges) are recycled through a free
/// list owned by the tree.
#[derive(Clone, Debug)]
pub(crate) struct Node<T> {
    pub level: u32,
    pub entries: NodeEntries<T>,
}

impl<T> Node<T> {
    pub fn new_leaf() -> Self {
        Node {
            level: 0,
            entries: NodeEntries::Leaf(Vec::new()),
        }
    }

    pub fn new_branch(level: u32) -> Self {
        Node {
            level,
            entries: NodeEntries::Branch(Vec::new()),
        }
    }

    pub fn is_leaf(&self) -> bool {
        matches!(self.entries, NodeEntries::Leaf(_))
    }

    pub fn len(&self) -> usize {
        match &self.entries {
            NodeEntries::Branch(v) => v.len(),
            NodeEntries::Leaf(v) => v.len(),
        }
    }

    /// MBR of all entries. `None` for an empty node.
    pub fn mbr(&self) -> Option<HyperRect> {
        match &self.entries {
            NodeEntries::Branch(v) => {
                let mut it = v.iter();
                let mut acc = it.next()?.rect.clone();
                for e in it {
                    acc.expand_to_rect(&e.rect);
                }
                Some(acc)
            }
            NodeEntries::Leaf(v) => {
                let mut it = v.iter();
                let mut acc = it.next()?.rect.clone();
                for e in it {
                    acc.expand_to_rect(&e.rect);
                }
                Some(acc)
            }
        }
    }

    pub fn branch_entries(&self) -> &[BranchEntry] {
        match &self.entries {
            NodeEntries::Branch(v) => v,
            NodeEntries::Leaf(_) => panic!("expected branch node"),
        }
    }

    pub fn branch_entries_mut(&mut self) -> &mut Vec<BranchEntry> {
        match &mut self.entries {
            NodeEntries::Branch(v) => v,
            NodeEntries::Leaf(_) => panic!("expected branch node"),
        }
    }

    pub fn leaf_entries_mut(&mut self) -> &mut Vec<LeafEntry<T>> {
        match &mut self.entries {
            NodeEntries::Leaf(v) => v,
            NodeEntries::Branch(_) => panic!("expected leaf node"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_geom::Point;

    fn rect(lo: f64, hi: f64) -> HyperRect {
        HyperRect::new(Point::from([lo, lo]), Point::from([hi, hi]))
    }

    #[test]
    fn leaf_mbr() {
        let mut n: Node<u32> = Node::new_leaf();
        assert!(n.mbr().is_none());
        n.leaf_entries_mut().push(LeafEntry {
            rect: rect(0.0, 1.0),
            data: 1,
        });
        n.leaf_entries_mut().push(LeafEntry {
            rect: rect(2.0, 3.0),
            data: 2,
        });
        assert_eq!(n.mbr().unwrap(), rect(0.0, 3.0));
        assert_eq!(n.len(), 2);
        assert!(n.is_leaf());
    }

    #[test]
    #[should_panic(expected = "expected branch")]
    fn wrong_accessor_panics() {
        let n: Node<u32> = Node::new_leaf();
        let _ = n.branch_entries();
    }
}
