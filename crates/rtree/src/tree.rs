//! The R*-tree proper: insertion, deletion, structural invariants.

use crate::node::{BranchEntry, LeafEntry, Node, NodeEntries, NodeId};
use crate::packed::PackedRTree;
use crate::params::RTreeParams;
use crate::query::QueryStats;
use crp_geom::{HyperRect, Point};
use std::sync::{Arc, OnceLock};

/// An in-memory R*-tree mapping rectangles to payloads of type `T`.
///
/// See the crate docs for the design rationale. All structure-modifying
/// operations keep the classic R-tree invariants (checked by
/// [`RTree::check_invariants`] in tests):
///
/// * every non-root node holds between `m` and `M` entries,
/// * the rectangle stored for a child in its parent is exactly the MBR of
///   the child's entries,
/// * all leaves sit at level 0 and the tree is height-balanced.
///
/// Nodes live in an arena indexed by [`NodeId`]; descent paths are threaded
/// explicitly through the modifying operations, so no parent pointers (and
/// no whole-tree searches) are needed.
pub struct RTree<T> {
    pub(crate) nodes: Vec<Node<T>>,
    free: Vec<NodeId>,
    pub(crate) root: NodeId,
    pub(crate) dim: usize,
    pub(crate) params: RTreeParams,
    pub(crate) len: usize,
    /// Incremental-maintenance counters (inserts, removes, entries moved
    /// by forced reinsertion / condense-tree). Bulk loading does not
    /// count: the counters measure the update path a mutable session
    /// pays for, not construction.
    upkeep: QueryStats,
    /// Mutation counter: advanced by every structure-modifying public
    /// operation and stamped into frozen images, so a stale
    /// [`PackedRTree`] snapshot is detectable by tag comparison.
    generation: u64,
    /// Lazily built packed projection of the current tree state,
    /// cleared by every mutation (which holds `&mut self`) and rebuilt
    /// on the next [`RTree::frozen`] call. Held behind an [`Arc`] so a
    /// cloned tree (an MVCC epoch snapshot) shares the image zero-copy
    /// and readers can pin it past the clone's lifetime.
    frozen: OnceLock<Arc<PackedRTree<T>>>,
}

/// Epoch-snapshot clone: the node arena is deep-copied (the writer will
/// keep mutating its own), but an already-built frozen image is shared
/// through its [`Arc`] — the packed projection is immutable, so a
/// snapshot costs no rebuild and no second copy of the SoA slabs.
impl<T: Clone> Clone for RTree<T> {
    fn clone(&self) -> Self {
        let frozen = OnceLock::new();
        if let Some(image) = self.frozen.get() {
            let _ = frozen.set(Arc::clone(image));
        }
        RTree {
            nodes: self.nodes.clone(),
            free: self.free.clone(),
            root: self.root,
            dim: self.dim,
            params: self.params,
            len: self.len,
            upkeep: self.upkeep,
            generation: self.generation,
            frozen,
        }
    }
}

/// What gets (re-)inserted during overflow/underflow treatment: either a
/// data record (level 0) or an orphaned subtree root.
enum Item<T> {
    Data(T),
    Subtree(NodeId),
}

impl<T> RTree<T> {
    /// Creates an empty tree for `dim`-dimensional data.
    pub fn new(dim: usize, params: RTreeParams) -> Self {
        let root_node = Node::new_leaf();
        RTree {
            nodes: vec![root_node],
            free: Vec::new(),
            root: NodeId(0),
            dim,
            params,
            len: 0,
            upkeep: QueryStats::default(),
            generation: 0,
            frozen: OnceLock::new(),
        }
    }

    /// Empty tree with the paper's 4 KiB-page parameters.
    pub fn with_paper_params(dim: usize) -> Self {
        Self::new(dim, RTreeParams::paper_default(dim))
    }

    /// Number of data entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no data.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the indexed space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Tree height (1 for a single leaf root).
    pub fn height(&self) -> usize {
        self.node(self.root).level as usize + 1
    }

    /// Number of live nodes (for I/O modelling and tests).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Shape parameters.
    pub fn params(&self) -> RTreeParams {
        self.params
    }

    /// The incremental-maintenance counters accumulated so far (only
    /// the `inserts` / `removes` / `reinserts` fields are populated;
    /// query-side node accesses stay in the per-query accumulators).
    pub fn upkeep(&self) -> QueryStats {
        self.upkeep
    }

    /// Resets the maintenance counters, returning the totals so far —
    /// the delta an engine folds into its session accumulator after
    /// each applied update.
    pub fn take_upkeep(&mut self) -> QueryStats {
        std::mem::take(&mut self.upkeep)
    }

    /// MBR of the whole tree, `None` when empty.
    pub fn mbr(&self) -> Option<HyperRect> {
        self.node(self.root).mbr()
    }

    /// The mutation counter stamped into frozen images: advanced by
    /// every [`RTree::insert`] / [`RTree::remove`] that changes the
    /// tree. Two frozen images with equal generations describe the
    /// same tree state.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Invalidates the cached frozen image and tags the new state —
    /// called (under `&mut self`) by every structural mutation.
    fn invalidate_frozen(&mut self) {
        self.generation += 1;
        self.frozen = OnceLock::new();
    }

    /// Builds a fresh packed, read-only SoA projection of the current
    /// tree state (see [`PackedRTree`]). Prefer [`RTree::frozen`],
    /// which caches the image until the next mutation.
    pub fn freeze(&self) -> PackedRTree<T>
    where
        T: Clone,
    {
        PackedRTree::build(self)
    }

    /// The cached frozen image of the current tree state, built on
    /// first use and shared by every reader until a mutation
    /// invalidates it (generation-tagged; rebuilt lazily on the next
    /// call, so incremental `apply` keeps working and each epoch gets a
    /// stable snapshot).
    pub fn frozen(&self) -> &PackedRTree<T>
    where
        T: Clone,
    {
        self.frozen
            .get_or_init(|| Arc::new(PackedRTree::build(self)))
    }

    /// The cached frozen image behind its shared handle — what an MVCC
    /// snapshot pins: the [`Arc`] keeps the packed projection alive for
    /// readers even after the owning tree mutates or drops.
    pub fn frozen_image(&self) -> Arc<PackedRTree<T>>
    where
        T: Clone,
    {
        self.frozen();
        Arc::clone(self.frozen.get().expect("frozen image just built"))
    }

    /// Eagerly (re)builds the frozen image after a mutation, moving the
    /// packed-projection rebuild off the first post-update read path.
    /// Counted in [`QueryStats::refreezes`] via the upkeep accumulator;
    /// a no-op (and not counted) when the image is already warm.
    pub fn refreeze(&mut self)
    where
        T: Clone,
    {
        if self.frozen.get().is_none() {
            let image = Arc::new(PackedRTree::build(self));
            let _ = self.frozen.set(image);
            self.upkeep.refreezes += 1;
        }
    }

    #[inline]
    pub(crate) fn node(&self, id: NodeId) -> &Node<T> {
        &self.nodes[id.index()]
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node<T> {
        &mut self.nodes[id.index()]
    }

    pub(crate) fn alloc(&mut self, node: Node<T>) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id.index()] = node;
            id
        } else {
            let id = NodeId(self.nodes.len() as u32);
            self.nodes.push(node);
            id
        }
    }

    pub(crate) fn release(&mut self, id: NodeId) {
        // Leave a harmless empty leaf in the slot; the id goes on the
        // free list for reuse.
        self.nodes[id.index()] = Node::new_leaf();
        self.free.push(id);
    }

    /// Inserts a rectangle with its payload.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle's dimensionality differs from the tree's.
    pub fn insert(&mut self, rect: HyperRect, data: T) {
        assert_eq!(rect.dim(), self.dim, "dimension mismatch");
        self.invalidate_frozen();
        // Forced reinsertion fires at most once per level per logical
        // insertion (the R*-tree rule).
        let mut reinserted = vec![false; self.height()];
        self.insert_item(rect, Item::Data(data), 0, &mut reinserted);
        self.len += 1;
        self.upkeep.inserts += 1;
    }

    /// Inserts a point (degenerate rectangle).
    pub fn insert_point(&mut self, point: Point, data: T) {
        self.insert(HyperRect::from_point(&point), data);
    }

    fn insert_item(
        &mut self,
        rect: HyperRect,
        item: Item<T>,
        target_level: u32,
        reinserted: &mut Vec<bool>,
    ) {
        let path = self.choose_subtree_path(&rect, target_level);
        let target = *path.last().expect("path contains at least the root");
        match item {
            Item::Data(data) => {
                debug_assert_eq!(target_level, 0);
                self.node_mut(target)
                    .leaf_entries_mut()
                    .push(LeafEntry { rect, data });
            }
            Item::Subtree(child) => {
                self.node_mut(target)
                    .branch_entries_mut()
                    .push(BranchEntry { rect, child });
            }
        }
        self.handle_overflow(path, reinserted);
    }

    /// R*-tree ChooseSubtree: descend to a node at `target_level`,
    /// minimising overlap enlargement just above the leaves and area
    /// enlargement elsewhere. Returns the full descent path (root first).
    fn choose_subtree_path(&self, rect: &HyperRect, target_level: u32) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.height());
        let mut current = self.root;
        loop {
            path.push(current);
            let node = self.node(current);
            if node.level == target_level {
                return path;
            }
            let entries = node.branch_entries();
            debug_assert!(!entries.is_empty(), "internal node with no children");
            let chosen = if node.level == 1 && target_level == 0 {
                // Children are leaves: minimise overlap enlargement.
                pick_least_overlap(entries, rect)
            } else {
                pick_least_enlargement(entries, rect)
            };
            current = entries[chosen].child;
        }
    }

    /// Fixes up the tree after an entry was pushed into `path.last()`:
    /// splits / reinserts overflowing nodes, then refreshes bounding
    /// rectangles up to the root.
    fn handle_overflow(&mut self, mut path: Vec<NodeId>, reinserted: &mut Vec<bool>) {
        loop {
            let current = *path.last().expect("non-empty path");
            if self.node(current).len() <= self.params.max_entries {
                self.refresh_rects_along(&path);
                return;
            }
            let level = self.node(current).level as usize;
            let is_root = current == self.root;
            let can_reinsert = !is_root
                && self.params.reinsert_count > 0
                && level < reinserted.len()
                && !reinserted[level];
            if can_reinsert {
                reinserted[level] = true;
                self.forced_reinsert(&path, reinserted);
                return;
            }
            if is_root {
                self.split_root();
                return;
            }
            let parent = path[path.len() - 2];
            self.split_child(parent, current);
            path.pop();
        }
    }

    /// Recomputes the bounding rectangle stored for each path node in its
    /// parent, walking from the deepest node to the root.
    fn refresh_rects_along(&mut self, path: &[NodeId]) {
        for w in (1..path.len()).rev() {
            let child = path[w];
            let parent = path[w - 1];
            let Some(child_mbr) = self.node(child).mbr() else {
                continue;
            };
            let pnode = self.node_mut(parent);
            for e in pnode.branch_entries_mut().iter_mut() {
                if e.child == child {
                    e.rect = child_mbr;
                    break;
                }
            }
        }
    }

    /// Removes the `p` entries farthest from the node's centre and
    /// reinserts them (R*-tree forced reinsertion, "close reinsert").
    fn forced_reinsert(&mut self, path: &[NodeId], reinserted: &mut Vec<bool>) {
        let node_id = *path.last().expect("non-empty path");
        let center = self
            .node(node_id)
            .mbr()
            .expect("overflowing node is non-empty")
            .center();
        let level = self.node(node_id).level;
        let p = self
            .params
            .reinsert_count
            .min(self.node(node_id).len() - self.params.min_entries);
        debug_assert!(p >= 1, "overflowing node can always spare one entry");
        self.upkeep.reinserts += p as u64;

        let removed: Vec<(HyperRect, Item<T>)> = {
            let node = self.node_mut(node_id);
            match &mut node.entries {
                NodeEntries::Leaf(v) => {
                    sort_farthest_first(v, &center, |e| &e.rect);
                    v.drain(..p).map(|e| (e.rect, Item::Data(e.data))).collect()
                }
                NodeEntries::Branch(v) => {
                    sort_farthest_first(v, &center, |e| &e.rect);
                    v.drain(..p)
                        .map(|e| (e.rect, Item::Subtree(e.child)))
                        .collect()
                }
            }
        };
        self.refresh_rects_along(path);
        // Reinsert closest-first ("close reinsert" performed best in the
        // original R*-tree evaluation); `removed` is farthest-first.
        for (rect, item) in removed.into_iter().rev() {
            self.insert_item(rect, item, level, reinserted);
        }
    }

    /// Splits the overflowing root, growing the tree by one level.
    fn split_root(&mut self) {
        let level = self.node(self.root).level;
        let (left, right) = self.split_node_contents(self.root);
        let left_rect = left.mbr().expect("split half is non-empty");
        let right_rect = right.mbr().expect("split half is non-empty");
        *self.node_mut(self.root) = left;
        let right_id = self.alloc(right);
        let mut new_root = Node::new_branch(level + 1);
        new_root.branch_entries_mut().push(BranchEntry {
            rect: left_rect,
            child: self.root,
        });
        new_root.branch_entries_mut().push(BranchEntry {
            rect: right_rect,
            child: right_id,
        });
        self.root = self.alloc(new_root);
    }

    /// Splits an overflowing non-root node; the parent receives the new
    /// sibling entry (and may itself overflow — handled by the caller).
    fn split_child(&mut self, parent: NodeId, node_id: NodeId) {
        let (left, right) = self.split_node_contents(node_id);
        let left_rect = left.mbr().expect("split half is non-empty");
        let right_rect = right.mbr().expect("split half is non-empty");
        *self.node_mut(node_id) = left;
        let right_id = self.alloc(right);
        let pnode = self.node_mut(parent);
        for e in pnode.branch_entries_mut().iter_mut() {
            if e.child == node_id {
                e.rect = left_rect.clone();
                break;
            }
        }
        pnode.branch_entries_mut().push(BranchEntry {
            rect: right_rect,
            child: right_id,
        });
    }

    /// Applies the R*-tree topological split to the entries of `node_id`,
    /// returning the two halves as fresh nodes (same level).
    fn split_node_contents(&mut self, node_id: NodeId) -> (Node<T>, Node<T>) {
        let level = self.node(node_id).level;
        let node = self.node_mut(node_id);
        match &mut node.entries {
            NodeEntries::Leaf(v) => {
                let entries = std::mem::take(v);
                let (l, r) = split_entries(entries, |e| &e.rect, self.params.min_entries, self.dim);
                (
                    Node {
                        level,
                        entries: NodeEntries::Leaf(l),
                    },
                    Node {
                        level,
                        entries: NodeEntries::Leaf(r),
                    },
                )
            }
            NodeEntries::Branch(v) => {
                let entries = std::mem::take(v);
                let (l, r) = split_entries(entries, |e| &e.rect, self.params.min_entries, self.dim);
                (
                    Node {
                        level,
                        entries: NodeEntries::Branch(l),
                    },
                    Node {
                        level,
                        entries: NodeEntries::Branch(r),
                    },
                )
            }
        }
    }

    /// The root's node id — the entry point for external best-first
    /// traversals (e.g. the BBS skyline algorithm), which cannot be
    /// expressed through the window-query visitors.
    pub fn root_node_id(&self) -> NodeId {
        self.root
    }

    /// Whether `id` refers to a leaf node.
    pub fn node_is_leaf(&self, id: NodeId) -> bool {
        self.node(id).is_leaf()
    }

    /// Visits the entries of one node: branch entries yield
    /// `(rect, Some(child), None)`, leaf entries `(rect, None, Some(&data))`.
    /// Callers doing their own traversal are responsible for counting the
    /// node access.
    pub fn visit_children(
        &self,
        id: NodeId,
        mut f: impl FnMut(&HyperRect, Option<NodeId>, Option<&T>),
    ) {
        match &self.node(id).entries {
            NodeEntries::Branch(v) => {
                for e in v {
                    f(&e.rect, Some(e.child), None);
                }
            }
            NodeEntries::Leaf(v) => {
                for e in v {
                    f(&e.rect, None, Some(&e.data));
                }
            }
        }
    }

    /// Visits every `(rect, data)` pair in the tree (arbitrary order).
    pub fn for_each(&self, mut f: impl FnMut(&HyperRect, &T)) {
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            match &node.entries {
                NodeEntries::Branch(v) => stack.extend(v.iter().map(|e| e.child)),
                NodeEntries::Leaf(v) => {
                    for e in v {
                        f(&e.rect, &e.data);
                    }
                }
            }
        }
    }

    /// Invariants for bulk-loaded (packed) trees: balance, MBR
    /// consistency, level sanity and entry count — but *not* the min-fill
    /// rule, which STR's final node per level may legitimately violate.
    pub fn assert_packed_invariants(&self) {
        let mut seen = 0usize;
        self.check_node_packed(self.root, self.node(self.root).level, &mut seen);
        assert_eq!(seen, self.len, "len() does not match stored entries");
    }

    fn check_node_packed(&self, id: NodeId, expected_level: u32, seen: &mut usize) {
        let node = self.node(id);
        assert_eq!(node.level, expected_level, "level mismatch at {id:?}");
        assert!(
            node.len() <= self.params.max_entries,
            "node {id:?} overflows"
        );
        match &node.entries {
            NodeEntries::Branch(v) => {
                for e in v {
                    let child_mbr = self.node(e.child).mbr().expect("non-empty child");
                    assert_eq!(e.rect, child_mbr, "stale child rect under {id:?}");
                    self.check_node_packed(e.child, expected_level - 1, seen);
                }
            }
            NodeEntries::Leaf(v) => {
                assert_eq!(expected_level, 0, "leaf must sit at level 0");
                *seen += v.len();
            }
        }
    }

    /// Validates all structural invariants; panics with a diagnostic on
    /// violation. Intended for tests and debug assertions.
    pub fn check_invariants(&self) {
        let root = self.node(self.root);
        if !root.is_leaf() {
            assert!(
                root.len() >= 2,
                "non-leaf root must have >= 2 children, has {}",
                root.len()
            );
        }
        let mut seen = 0usize;
        self.check_node(self.root, self.node(self.root).level, true, &mut seen);
        assert_eq!(seen, self.len, "len() does not match stored entries");
    }

    fn check_node(&self, id: NodeId, expected_level: u32, is_root: bool, seen: &mut usize) {
        let node = self.node(id);
        assert_eq!(node.level, expected_level, "level mismatch at {id:?}");
        assert!(
            node.len() <= self.params.max_entries,
            "node {id:?} overflows: {} > {}",
            node.len(),
            self.params.max_entries
        );
        if !is_root {
            assert!(
                node.len() >= self.params.min_entries,
                "node {id:?} underflows: {} < {}",
                node.len(),
                self.params.min_entries
            );
        }
        match &node.entries {
            NodeEntries::Branch(v) => {
                assert!(expected_level > 0, "branch node at level 0");
                for e in v {
                    let child_mbr = self
                        .node(e.child)
                        .mbr()
                        .expect("child of a branch node is non-empty");
                    assert_eq!(
                        e.rect, child_mbr,
                        "stored child rect differs from child MBR under {id:?}"
                    );
                    self.check_node(e.child, expected_level - 1, false, seen);
                }
            }
            NodeEntries::Leaf(v) => {
                assert_eq!(expected_level, 0, "leaf must sit at level 0");
                *seen += v.len();
            }
        }
    }
}

impl<T: PartialEq> RTree<T> {
    /// Removes one entry matching `rect` and `data`. Returns `true` when
    /// an entry was removed. Underflowing nodes are dissolved and their
    /// entries reinserted (condense-tree).
    pub fn remove(&mut self, rect: &HyperRect, data: &T) -> bool {
        let mut path = Vec::new();
        if !self.find_leaf_path(self.root, rect, data, &mut path) {
            return false;
        }
        self.invalidate_frozen();
        let leaf = *path.last().expect("found path is non-empty");
        {
            let entries = self.node_mut(leaf).leaf_entries_mut();
            let pos = entries
                .iter()
                .position(|e| &e.rect == rect && &e.data == data)
                .expect("find_leaf_path located the entry");
            entries.swap_remove(pos);
        }
        self.len -= 1;
        self.upkeep.removes += 1;
        self.condense(path);
        true
    }

    fn find_leaf_path(
        &self,
        current: NodeId,
        rect: &HyperRect,
        data: &T,
        path: &mut Vec<NodeId>,
    ) -> bool {
        path.push(current);
        let node = self.node(current);
        match &node.entries {
            NodeEntries::Leaf(v) => {
                if v.iter().any(|e| &e.rect == rect && &e.data == data) {
                    return true;
                }
            }
            NodeEntries::Branch(v) => {
                for e in v.iter().filter(|e| e.rect.contains_rect(rect)) {
                    if self.find_leaf_path(e.child, rect, data, path) {
                        return true;
                    }
                }
            }
        }
        path.pop();
        false
    }

    /// Condense-tree: walking the deletion path bottom-up, dissolve
    /// underflowing nodes (orphaning their entries), refresh surviving
    /// rectangles, shrink the root, then reinsert orphans at their level.
    fn condense(&mut self, path: Vec<NodeId>) {
        let mut orphans: Vec<(u32, HyperRect, Item<T>)> = Vec::new();
        for i in (1..path.len()).rev() {
            let node_id = path[i];
            let parent = path[i - 1];
            if self.node(node_id).len() < self.params.min_entries {
                let entries = self.node_mut(parent).branch_entries_mut();
                let pos = entries
                    .iter()
                    .position(|e| e.child == node_id)
                    .expect("child listed in parent");
                entries.swap_remove(pos);
                let node = std::mem::replace(self.node_mut(node_id), Node::new_leaf());
                let level = node.level;
                match node.entries {
                    NodeEntries::Leaf(v) => {
                        orphans.extend(v.into_iter().map(|e| (0, e.rect, Item::Data(e.data))))
                    }
                    NodeEntries::Branch(v) => orphans.extend(
                        v.into_iter()
                            .map(|e| (level, e.rect, Item::Subtree(e.child))),
                    ),
                }
                self.release(node_id);
            }
        }
        // Refresh the rectangles of the surviving path nodes bottom-up.
        // Only the path nodes' own MBRs can have changed, so the shared
        // path walk suffices (recomputing every sibling's MBR here made
        // deletion O(fanout²) — measurably slower than a bulk rebuild
        // at the paper's 4 KiB fanout). Dissolved path nodes were
        // released (their arena slot now holds an empty leaf
        // placeholder, whose `mbr()` is `None`) and are skipped.
        self.refresh_rects_along(&path);
        // Shrink the root while it is an internal node with one child.
        while !self.node(self.root).is_leaf() && self.node(self.root).len() == 1 {
            let old_root = self.root;
            let child = self.node(self.root).branch_entries()[0].child;
            self.root = child;
            self.release(old_root);
        }
        if self.len == 0 && !self.node(self.root).is_leaf() {
            let old_root = self.root;
            let leaf = self.alloc(Node::new_leaf());
            self.root = leaf;
            self.release(old_root);
        }
        // Reinsert orphans. Subtrees whose height no longer fits under the
        // (possibly shrunken) root are dissolved into records. Each moved
        // item — a data record, or a subtree reinserted whole — counts
        // once in `upkeep.reinserts`; dissolved subtrees are counted per
        // record inside `dissolve_into_records` instead (not both).
        for (level, rect, item) in orphans {
            match item {
                Item::Data(data) => {
                    self.upkeep.reinserts += 1;
                    let mut reinserted = vec![false; self.height()];
                    self.insert_item(rect, Item::Data(data), 0, &mut reinserted);
                }
                Item::Subtree(child) => {
                    let child_level = level - 1;
                    debug_assert_eq!(self.node(child).level, child_level);
                    if self.node(self.root).level > child_level {
                        self.upkeep.reinserts += 1;
                        let mut reinserted = vec![false; self.height()];
                        self.insert_item(
                            rect,
                            Item::Subtree(child),
                            child_level + 1,
                            &mut reinserted,
                        );
                    } else {
                        self.dissolve_into_records(child);
                    }
                }
            }
        }
    }

    /// Reinserts every record of a subtree individually and releases its
    /// nodes (rare path: the tree shrank below the orphan's height).
    fn dissolve_into_records(&mut self, id: NodeId) {
        let node = std::mem::replace(self.node_mut(id), Node::new_leaf());
        self.release(id);
        match node.entries {
            NodeEntries::Leaf(v) => {
                self.upkeep.reinserts += v.len() as u64;
                for e in v {
                    let mut reinserted = vec![false; self.height()];
                    self.insert_item(e.rect, Item::Data(e.data), 0, &mut reinserted);
                }
            }
            NodeEntries::Branch(v) => {
                for e in v {
                    self.dissolve_into_records(e.child);
                }
            }
        }
    }
}

fn sort_farthest_first<E>(entries: &mut [E], center: &Point, rect_of: impl Fn(&E) -> &HyperRect) {
    entries.sort_by(|a, b| {
        let da = rect_of(a).center().distance_sq(center);
        let db = rect_of(b).center().distance_sq(center);
        db.partial_cmp(&da).expect("finite distances")
    });
}

fn pick_least_enlargement(entries: &[BranchEntry], rect: &HyperRect) -> usize {
    let mut best = 0usize;
    let mut best_enl = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in entries.iter().enumerate() {
        let enl = e.rect.enlargement(rect);
        let area = e.rect.volume();
        if enl < best_enl || (enl == best_enl && area < best_area) {
            best = i;
            best_enl = enl;
            best_area = area;
        }
    }
    best
}

/// Above this many children, ChooseSubtree only evaluates the overlap
/// criterion for the entries with least area enlargement (the R*-tree
/// paper's own recommendation for large fanouts — the full criterion is
/// O(M²), which dominates insertion at the 4 KiB-page fanout).
const OVERLAP_CANDIDATES: usize = 16;

fn pick_least_overlap(entries: &[BranchEntry], rect: &HyperRect) -> usize {
    let mut candidates: Vec<usize> = (0..entries.len()).collect();
    if entries.len() > OVERLAP_CANDIDATES {
        // Deterministic preselection: smallest enlargement, ties by
        // area then index (keys computed once, not per comparison).
        let keys: Vec<(f64, f64)> = entries
            .iter()
            .map(|e| (e.rect.enlargement(rect), e.rect.volume()))
            .collect();
        candidates.sort_by(|&a, &b| {
            keys[a]
                .partial_cmp(&keys[b])
                .expect("finite enlargements and volumes")
                .then(a.cmp(&b))
        });
        candidates.truncate(OVERLAP_CANDIDATES);
    }
    let mut best = candidates[0];
    let mut best_overlap_delta = f64::INFINITY;
    let mut best_enl = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for &i in &candidates {
        let e = &entries[i];
        let enlarged = e.rect.union(rect);
        let mut overlap_before = 0.0;
        let mut overlap_after = 0.0;
        for (j, other) in entries.iter().enumerate() {
            if i == j {
                continue;
            }
            overlap_before += e.rect.overlap_volume(&other.rect);
            overlap_after += enlarged.overlap_volume(&other.rect);
        }
        let delta = overlap_after - overlap_before;
        let enl = e.rect.enlargement(rect);
        let area = e.rect.volume();
        if delta < best_overlap_delta
            || (delta == best_overlap_delta
                && (enl < best_enl || (enl == best_enl && area < best_area)))
        {
            best = i;
            best_overlap_delta = delta;
            best_enl = enl;
            best_area = area;
        }
    }
    best
}

/// R*-tree split: choose the split axis by minimum total margin over all
/// legal distributions, then the distribution with minimum overlap
/// (ties: minimum total area). Generic over entry type via a rect
/// accessor so leaf and branch entries share the implementation.
pub(crate) fn split_entries<E>(
    mut entries: Vec<E>,
    rect_of: impl Fn(&E) -> &HyperRect,
    min_entries: usize,
    dim: usize,
) -> (Vec<E>, Vec<E>) {
    let total = entries.len();
    debug_assert!(total >= 2 * min_entries, "not enough entries to split");
    let k_range = min_entries..=(total - min_entries);

    // Pick the axis with the smallest margin sum, considering entries
    // sorted by lower and by upper bound.
    let mut best_axis = 0usize;
    let mut best_by_upper = false;
    let mut best_margin = f64::INFINITY;
    for axis in 0..dim {
        for by_upper in [false, true] {
            sort_by_axis(&mut entries, &rect_of, axis, by_upper);
            let (lo_mbrs, hi_mbrs) = prefix_suffix_mbrs(&entries, &rect_of);
            let mut margin_sum = 0.0;
            for k in k_range.clone() {
                margin_sum += lo_mbrs[k - 1].margin() + hi_mbrs[k].margin();
            }
            if margin_sum < best_margin {
                best_margin = margin_sum;
                best_axis = axis;
                best_by_upper = by_upper;
            }
        }
    }

    sort_by_axis(&mut entries, &rect_of, best_axis, best_by_upper);
    let (lo_mbrs, hi_mbrs) = prefix_suffix_mbrs(&entries, &rect_of);
    let mut best_k = min_entries;
    let mut best_overlap = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for k in k_range {
        let overlap = lo_mbrs[k - 1].overlap_volume(&hi_mbrs[k]);
        let area = lo_mbrs[k - 1].volume() + hi_mbrs[k].volume();
        if overlap < best_overlap || (overlap == best_overlap && area < best_area) {
            best_overlap = overlap;
            best_area = area;
            best_k = k;
        }
    }

    let right = entries.split_off(best_k);
    (entries, right)
}

fn sort_by_axis<E>(
    entries: &mut [E],
    rect_of: &impl Fn(&E) -> &HyperRect,
    axis: usize,
    by_upper: bool,
) {
    entries.sort_by(|a, b| {
        let (ra, rb) = (rect_of(a), rect_of(b));
        let (ka, kb) = if by_upper {
            (ra.hi()[axis], rb.hi()[axis])
        } else {
            (ra.lo()[axis], rb.lo()[axis])
        };
        ka.partial_cmp(&kb).expect("finite coordinates")
    });
}

/// MBRs of every prefix (`lo_mbrs[i]` covers entries `0..=i`) and suffix
/// (`hi_mbrs[i]` covers entries `i..`).
fn prefix_suffix_mbrs<E>(
    entries: &[E],
    rect_of: &impl Fn(&E) -> &HyperRect,
) -> (Vec<HyperRect>, Vec<HyperRect>) {
    let n = entries.len();
    let mut lo = Vec::with_capacity(n);
    let mut acc = rect_of(&entries[0]).clone();
    lo.push(acc.clone());
    for e in &entries[1..] {
        acc.expand_to_rect(rect_of(e));
        lo.push(acc.clone());
    }
    let mut hi = vec![rect_of(&entries[n - 1]).clone(); n];
    for i in (0..n - 1).rev() {
        let mut r = rect_of(&entries[i]).clone();
        r.expand_to_rect(&hi[i + 1]);
        hi[i] = r;
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pt(x: f64, y: f64) -> Point {
        Point::from([x, y])
    }

    #[test]
    fn empty_tree() {
        let tree: RTree<u32> = RTree::new(2, RTreeParams::with_fanout(8));
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert!(tree.mbr().is_none());
        tree.check_invariants();
    }

    #[test]
    fn sequential_inserts_keep_invariants() {
        let mut tree: RTree<usize> = RTree::new(2, RTreeParams::with_fanout(4));
        for i in 0..200usize {
            tree.insert_point(pt(i as f64, (i * 7 % 31) as f64), i);
            tree.check_invariants();
        }
        assert_eq!(tree.len(), 200);
        assert!(tree.height() > 1);
        let mut count = 0;
        tree.for_each(|_, _| count += 1);
        assert_eq!(count, 200);
    }

    #[test]
    fn random_inserts_many_duplicates() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut tree: RTree<u32> = RTree::new(3, RTreeParams::with_fanout(8));
        for i in 0..500u32 {
            let p = Point::new(
                (0..3)
                    .map(|_| rng.random_range(0.0..10.0f64).round())
                    .collect::<Vec<_>>(),
            );
            tree.insert_point(p, i);
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 500);
    }

    #[test]
    fn rect_entries_supported() {
        let mut tree: RTree<u32> = RTree::new(2, RTreeParams::with_fanout(4));
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..100u32 {
            let c = pt(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0));
            let r = HyperRect::centered(
                &c,
                &[rng.random_range(0.0..5.0), rng.random_range(0.0..5.0)],
            );
            tree.insert(r, i);
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 100);
    }

    #[test]
    fn remove_existing_and_missing() {
        let mut tree: RTree<usize> = RTree::new(2, RTreeParams::with_fanout(4));
        let mut rects = Vec::new();
        for i in 0..120usize {
            let p = pt((i % 12) as f64, (i / 12) as f64);
            let r = HyperRect::from_point(&p);
            tree.insert(r.clone(), i);
            rects.push(r);
        }
        assert!(!tree.remove(&rects[3], &999)); // wrong payload
        assert!(tree.remove(&rects[3], &3));
        assert!(!tree.remove(&rects[3], &3)); // already gone
        assert_eq!(tree.len(), 119);
        tree.check_invariants();
        // Remove everything.
        for i in (0..120usize).filter(|i| *i != 3) {
            assert!(tree.remove(&rects[i], &i), "failed to remove {i}");
            tree.check_invariants();
        }
        assert!(tree.is_empty());
    }

    #[test]
    fn remove_heavy_keeps_invariants() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut tree: RTree<usize> = RTree::new(2, RTreeParams::with_fanout(5));
        let mut live: Vec<(HyperRect, usize)> = Vec::new();
        for i in 0..300usize {
            let p = pt(rng.random_range(0.0..50.0), rng.random_range(0.0..50.0));
            let r = HyperRect::from_point(&p);
            tree.insert(r.clone(), i);
            live.push((r, i));
        }
        // Interleave removals and insertions.
        for step in 0..200usize {
            if step % 3 != 2 && !live.is_empty() {
                let idx = rng.random_range(0..live.len());
                let (r, d) = live.swap_remove(idx);
                assert!(tree.remove(&r, &d));
            } else {
                let p = pt(rng.random_range(0.0..50.0), rng.random_range(0.0..50.0));
                let r = HyperRect::from_point(&p);
                tree.insert(r.clone(), 1000 + step);
                live.push((r, 1000 + step));
            }
            tree.check_invariants();
        }
        assert_eq!(tree.len(), live.len());
    }

    #[test]
    fn upkeep_counts_the_update_path() {
        let mut tree: RTree<usize> = RTree::new(2, RTreeParams::with_fanout(4));
        let mut rects = Vec::new();
        for i in 0..80usize {
            let r = HyperRect::from_point(&pt((i % 9) as f64, (i / 9) as f64));
            tree.insert(r.clone(), i);
            rects.push(r);
        }
        let after_inserts = tree.upkeep();
        assert_eq!(after_inserts.inserts, 80);
        assert_eq!(after_inserts.removes, 0);
        // A small fanout forces overflow treatment: forced reinsertion
        // must have moved entries.
        assert!(after_inserts.reinserts > 0, "no reinserts at fanout 4");
        for (i, r) in rects.iter().enumerate() {
            assert!(tree.remove(r, &i));
        }
        let total = tree.upkeep();
        assert_eq!(total.removes, 80);
        // take_upkeep drains the counters.
        assert_eq!(tree.take_upkeep(), total);
        assert_eq!(tree.upkeep(), QueryStats::default());
        // Query-side fields are never touched by maintenance.
        assert_eq!(total.node_accesses, 0);
        assert_eq!(total.cache_hits, 0);
    }

    #[test]
    fn no_reinsert_configuration_works() {
        let mut params = RTreeParams::with_fanout(4);
        params.reinsert_count = 0;
        let mut tree: RTree<usize> = RTree::new(2, params);
        for i in 0..100usize {
            tree.insert_point(pt(i as f64, i as f64), i);
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 100);
    }

    #[test]
    fn split_entries_respects_min_fill() {
        let entries: Vec<(HyperRect, usize)> = (0..10)
            .map(|i| (HyperRect::from_point(&pt(i as f64, 0.0)), i))
            .collect();
        let (l, r) = split_entries(entries, |e| &e.0, 4, 2);
        assert!(l.len() >= 4 && r.len() >= 4);
        assert_eq!(l.len() + r.len(), 10);
        // The margin heuristic should split along x cleanly: all lefts
        // before all rights.
        let lmax = l.iter().map(|e| e.0.lo()[0]).fold(f64::MIN, f64::max);
        let rmin = r.iter().map(|e| e.0.lo()[0]).fold(f64::MAX, f64::min);
        assert!(lmax < rmin);
    }

    #[test]
    fn large_insert_then_drain() {
        let mut tree: RTree<usize> = RTree::with_paper_params(2);
        let mut items = Vec::new();
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..2000usize {
            let p = pt(
                rng.random_range(0.0..10_000.0),
                rng.random_range(0.0..10_000.0),
            );
            let r = HyperRect::from_point(&p);
            tree.insert(r.clone(), i);
            items.push((r, i));
        }
        tree.check_invariants();
        for (r, i) in &items {
            assert!(tree.remove(r, i));
        }
        assert!(tree.is_empty());
        tree.check_invariants();
    }
}
