//! An in-memory R*-tree with node-access accounting.
//!
//! The paper indexes every dataset "by an R-tree with 4,096 bytes page
//! size" and reports the *number of node accesses* as its I/O metric.
//! This crate reproduces that substrate:
//!
//! * [`RTreeParams::from_page_size`] derives the fanout from a page size
//!   and dimensionality exactly the way a disk-resident tree would,
//! * insertion follows the R*-tree heuristics (least-overlap choose-subtree
//!   at the leaf level, margin-driven split-axis selection, forced
//!   reinsertion on first overflow per level),
//! * [`RTree::bulk_load`] provides Sort-Tile-Recursive packing for the
//!   large synthetic workloads,
//! * every query takes a [`QueryStats`] accumulator so experiments can
//!   report node accesses the same way the paper does.
//!
//! The tree is generic over the payload type `T` (object identifiers in
//! this workspace).

mod bulk;
mod node;
mod packed;
mod params;
mod query;
mod stats;
mod tree;

pub use node::NodeId;
pub use packed::{
    active_rect_kernel, rect_simd_supported, set_rect_kernel, PackedRTree, RectKernel,
};
pub use params::RTreeParams;
pub use query::{QueryStats, WindowQuery};
pub use stats::AtomicQueryStats;
pub use tree::RTree;

#[cfg(test)]
mod tests {
    use super::*;
    use crp_geom::{HyperRect, Point};

    #[test]
    fn end_to_end_smoke() {
        let mut tree: RTree<usize> = RTree::new(2, RTreeParams::with_fanout(4));
        for i in 0..100usize {
            let x = (i % 10) as f64;
            let y = (i / 10) as f64;
            tree.insert_point(Point::from([x, y]), i);
        }
        assert_eq!(tree.len(), 100);
        tree.check_invariants();

        let mut stats = QueryStats::default();
        let mut found = Vec::new();
        let window = HyperRect::new(Point::from([2.0, 2.0]), Point::from([4.0, 4.0]));
        tree.range_intersect(&window, &mut stats, |_, &i| found.push(i));
        found.sort_unstable();
        let expected: Vec<usize> = (0..100)
            .filter(|i| (2..=4).contains(&(i % 10)) && (2..=4).contains(&(i / 10)))
            .collect();
        assert_eq!(found, expected);
        assert!(stats.node_accesses > 0);
    }
}
