//! Thread-safe node-access and maintenance accounting.
//!
//! Queries themselves stay single-threaded and keep taking a plain
//! `&mut QueryStats` (no atomics on the hot traversal path). When many
//! queries run concurrently — the `ExplainEngine`'s rayon batch mode —
//! each worker accumulates into its own [`QueryStats`] and folds the
//! result into a shared [`AtomicQueryStats`], so a long-lived engine can
//! report total I/O (and, for mutable sessions, update-path and
//! explanation-cache counters) across a parallel batch without locks.

use crate::query::QueryStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters, safe to fold into from many threads. Mirrors every
/// field of [`QueryStats`]: node accesses, the incremental-maintenance
/// counters (inserts / removes / reinserts) and the explanation-cache
/// counters (hits / misses / evictions).
#[derive(Debug, Default)]
pub struct AtomicQueryStats {
    node_accesses: AtomicU64,
    leaf_accesses: AtomicU64,
    inserts: AtomicU64,
    removes: AtomicU64,
    reinserts: AtomicU64,
    refreezes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    eval_fast: AtomicU64,
    eval_slow: AtomicU64,
}

impl AtomicQueryStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one query's counters in (relaxed; only totals matter).
    pub fn absorb(&self, stats: QueryStats) {
        self.node_accesses
            .fetch_add(stats.node_accesses, Ordering::Relaxed);
        self.leaf_accesses
            .fetch_add(stats.leaf_accesses, Ordering::Relaxed);
        self.inserts.fetch_add(stats.inserts, Ordering::Relaxed);
        self.removes.fetch_add(stats.removes, Ordering::Relaxed);
        self.reinserts.fetch_add(stats.reinserts, Ordering::Relaxed);
        self.refreezes.fetch_add(stats.refreezes, Ordering::Relaxed);
        self.cache_hits
            .fetch_add(stats.cache_hits, Ordering::Relaxed);
        self.cache_misses
            .fetch_add(stats.cache_misses, Ordering::Relaxed);
        self.cache_evictions
            .fetch_add(stats.cache_evictions, Ordering::Relaxed);
        self.eval_fast.fetch_add(stats.eval_fast, Ordering::Relaxed);
        self.eval_slow.fetch_add(stats.eval_slow, Ordering::Relaxed);
    }

    /// [`AtomicQueryStats::absorb`] by reference — the engine-level
    /// rollup a sharded session uses to fold per-shard totals into one
    /// accumulator without consuming the shard snapshots.
    pub fn merge(&self, other: &QueryStats) {
        self.absorb(*other);
    }

    /// Current totals as a plain [`QueryStats`].
    pub fn snapshot(&self) -> QueryStats {
        QueryStats {
            node_accesses: self.node_accesses.load(Ordering::Relaxed),
            leaf_accesses: self.leaf_accesses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            reinserts: self.reinserts.load(Ordering::Relaxed),
            refreezes: self.refreezes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            eval_fast: self.eval_fast.load(Ordering::Relaxed),
            eval_slow: self.eval_slow.load(Ordering::Relaxed),
        }
    }

    /// Resets the counters to zero, returning the totals accumulated so
    /// far.
    pub fn take(&self) -> QueryStats {
        QueryStats {
            node_accesses: self.node_accesses.swap(0, Ordering::Relaxed),
            leaf_accesses: self.leaf_accesses.swap(0, Ordering::Relaxed),
            inserts: self.inserts.swap(0, Ordering::Relaxed),
            removes: self.removes.swap(0, Ordering::Relaxed),
            reinserts: self.reinserts.swap(0, Ordering::Relaxed),
            refreezes: self.refreezes.swap(0, Ordering::Relaxed),
            cache_hits: self.cache_hits.swap(0, Ordering::Relaxed),
            cache_misses: self.cache_misses.swap(0, Ordering::Relaxed),
            cache_evictions: self.cache_evictions.swap(0, Ordering::Relaxed),
            eval_fast: self.eval_fast.swap(0, Ordering::Relaxed),
            eval_slow: self.eval_slow.swap(0, Ordering::Relaxed),
        }
    }
}

impl Clone for AtomicQueryStats {
    fn clone(&self) -> Self {
        self.snapshot().into()
    }
}

impl From<QueryStats> for AtomicQueryStats {
    fn from(stats: QueryStats) -> Self {
        let atomic = Self::new();
        atomic.absorb(stats);
        atomic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_snapshot_take_roundtrip() {
        let shared = AtomicQueryStats::new();
        shared.absorb(QueryStats {
            node_accesses: 3,
            leaf_accesses: 1,
            inserts: 2,
            cache_misses: 1,
            ..Default::default()
        });
        shared.absorb(QueryStats {
            node_accesses: 4,
            leaf_accesses: 2,
            removes: 1,
            reinserts: 5,
            cache_hits: 2,
            cache_evictions: 3,
            ..Default::default()
        });
        assert_eq!(
            shared.snapshot(),
            QueryStats {
                node_accesses: 7,
                leaf_accesses: 3,
                inserts: 2,
                removes: 1,
                reinserts: 5,
                cache_hits: 2,
                cache_misses: 1,
                cache_evictions: 3,
                ..Default::default()
            }
        );
        let taken = shared.take();
        assert_eq!(taken.node_accesses, 7);
        assert_eq!(taken.reinserts, 5);
        assert_eq!(shared.snapshot(), QueryStats::default());
    }

    #[test]
    fn concurrent_absorbs_sum_exactly() {
        let shared = AtomicQueryStats::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1_000 {
                        shared.absorb(QueryStats {
                            node_accesses: 2,
                            leaf_accesses: 1,
                            cache_hits: 1,
                            ..Default::default()
                        });
                    }
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap.node_accesses, 16_000);
        assert_eq!(snap.leaf_accesses, 8_000);
        assert_eq!(snap.cache_hits, 8_000);
    }

    #[test]
    fn merge_and_sum_roll_shard_counters_up() {
        // Three "shards", each with its own accumulator.
        let shards = [
            AtomicQueryStats::new(),
            AtomicQueryStats::new(),
            AtomicQueryStats::new(),
        ];
        for (i, shard) in shards.iter().enumerate() {
            shard.merge(&QueryStats {
                node_accesses: (i + 1) as u64,
                leaf_accesses: i as u64,
                inserts: 1,
                ..Default::default()
            });
        }
        // Sum of shard snapshots = engine-level total.
        let total: QueryStats = shards.iter().map(|s| s.snapshot()).sum();
        assert_eq!(
            total,
            QueryStats {
                node_accesses: 6,
                leaf_accesses: 3,
                inserts: 3,
                ..Default::default()
            }
        );
        // The same rollup through an engine-level accumulator.
        let engine = AtomicQueryStats::new();
        for shard in &shards {
            engine.merge(&shard.snapshot());
        }
        assert_eq!(engine.snapshot(), total);
        // Add / AddAssign agree with Sum.
        let mut acc = QueryStats::default();
        for shard in &shards {
            acc += shard.snapshot();
        }
        assert_eq!(acc, total);
    }

    #[test]
    fn clone_and_from() {
        let shared: AtomicQueryStats = QueryStats {
            node_accesses: 5,
            leaf_accesses: 4,
            cache_evictions: 2,
            ..Default::default()
        }
        .into();
        let cloned = shared.clone();
        assert_eq!(cloned.snapshot(), shared.snapshot());
    }
}
