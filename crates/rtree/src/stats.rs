//! Thread-safe node-access accounting.
//!
//! Queries themselves stay single-threaded and keep taking a plain
//! `&mut QueryStats` (no atomics on the hot traversal path). When many
//! queries run concurrently — the `ExplainEngine`'s rayon batch mode —
//! each worker accumulates into its own [`QueryStats`] and folds the
//! result into a shared [`AtomicQueryStats`], so a long-lived engine can
//! report total I/O across a parallel batch without locks.

use crate::query::QueryStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared node-access counters, safe to fold into from many threads.
#[derive(Debug, Default)]
pub struct AtomicQueryStats {
    node_accesses: AtomicU64,
    leaf_accesses: AtomicU64,
}

impl AtomicQueryStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one query's counters in (relaxed; only totals matter).
    pub fn absorb(&self, stats: QueryStats) {
        self.node_accesses
            .fetch_add(stats.node_accesses, Ordering::Relaxed);
        self.leaf_accesses
            .fetch_add(stats.leaf_accesses, Ordering::Relaxed);
    }

    /// Current totals as a plain [`QueryStats`].
    pub fn snapshot(&self) -> QueryStats {
        QueryStats {
            node_accesses: self.node_accesses.load(Ordering::Relaxed),
            leaf_accesses: self.leaf_accesses.load(Ordering::Relaxed),
        }
    }

    /// Resets the counters to zero, returning the totals accumulated so
    /// far.
    pub fn take(&self) -> QueryStats {
        QueryStats {
            node_accesses: self.node_accesses.swap(0, Ordering::Relaxed),
            leaf_accesses: self.leaf_accesses.swap(0, Ordering::Relaxed),
        }
    }
}

impl Clone for AtomicQueryStats {
    fn clone(&self) -> Self {
        let snap = self.snapshot();
        Self {
            node_accesses: AtomicU64::new(snap.node_accesses),
            leaf_accesses: AtomicU64::new(snap.leaf_accesses),
        }
    }
}

impl From<QueryStats> for AtomicQueryStats {
    fn from(stats: QueryStats) -> Self {
        Self {
            node_accesses: AtomicU64::new(stats.node_accesses),
            leaf_accesses: AtomicU64::new(stats.leaf_accesses),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_snapshot_take_roundtrip() {
        let shared = AtomicQueryStats::new();
        shared.absorb(QueryStats {
            node_accesses: 3,
            leaf_accesses: 1,
        });
        shared.absorb(QueryStats {
            node_accesses: 4,
            leaf_accesses: 2,
        });
        assert_eq!(
            shared.snapshot(),
            QueryStats {
                node_accesses: 7,
                leaf_accesses: 3
            }
        );
        let taken = shared.take();
        assert_eq!(taken.node_accesses, 7);
        assert_eq!(shared.snapshot(), QueryStats::default());
    }

    #[test]
    fn concurrent_absorbs_sum_exactly() {
        let shared = AtomicQueryStats::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1_000 {
                        shared.absorb(QueryStats {
                            node_accesses: 2,
                            leaf_accesses: 1,
                        });
                    }
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap.node_accesses, 16_000);
        assert_eq!(snap.leaf_accesses, 8_000);
    }

    #[test]
    fn clone_and_from() {
        let shared: AtomicQueryStats = QueryStats {
            node_accesses: 5,
            leaf_accesses: 4,
        }
        .into();
        let cloned = shared.clone();
        assert_eq!(cloned.snapshot(), shared.snapshot());
    }
}
