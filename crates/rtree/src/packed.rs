//! A packed, read-only SoA projection of the R*-tree.
//!
//! Stage-1 filtering (Lemma 2 window tests over MBRs) is a read-heavy
//! workload over a structure built for *updates*: the arena tree stores
//! `HyperRect` structs whose corner points heap-allocate their
//! coordinate vectors, so every window test chases two pointers per
//! entry. [`PackedRTree`] freezes the arena into one contiguous,
//! level-ordered image:
//!
//! ```text
//! nodes:  [ root | level h-1 … | level 0 ]      (BFS order, root = 0)
//! lo/hi:  per-axis coordinate slabs, axis-major —
//!         axis a, node n  →  lo[a·slots + n.first .. + n.padded]
//! slots:  child packed-node index (branch) or payload index (leaf)
//! ```
//!
//! Every node's entry row starts on a 64-byte boundary and is padded to
//! a multiple of 8 slots with sentinel rectangles (`lo = +∞`,
//! `hi = −∞`) that can never intersect anything, so a node visit is a
//! branch-free linear scan over cache-line-aligned `f64` rows — and a
//! natural SIMD target. The rect-vs-window kernel comes in an AVX2 and
//! a bit-identical scalar twin behind the same runtime dispatch scheme
//! as the refine stage's `masked_product` (`CRP_KERNEL` env override,
//! [`set_rect_kernel`] pinning): comparisons are exact predicates, so
//! the two kernels produce the same bitmasks on every input.
//!
//! Traversal order, pruning and the [`QueryStats`] node/leaf counters
//! are identical to the pointer tree's ([`WindowQuery`] is implemented
//! by both over the same depth-first contract), which the engine's
//! property tests pin across representations. A frozen image is also a
//! consistent snapshot of one tree state — the copy-on-write substrate
//! the planned epoch-MVCC work builds on — tagged with the source
//! tree's [`generation`](crate::RTree::generation).

use crate::node::NodeEntries;
use crate::query::{with_scratch, QueryStats, WindowQuery};
use crate::tree::RTree;
use crp_geom::HyperRect;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

// --- kernel dispatch (mirrors the refine stage's scheme) -------------

/// Which rect-vs-window kernel the packed traversal uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RectKernel {
    /// Probe CPU features once and pick the fastest available.
    Auto,
    /// Force the portable scalar kernel.
    Scalar,
    /// Force the AVX2 kernel (errors if unsupported).
    Simd,
}

impl FromStr for RectKernel {
    type Err = String;

    /// Strict, case-sensitive: exactly `auto`, `scalar` or `simd`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(RectKernel::Auto),
            "scalar" => Ok(RectKernel::Scalar),
            "simd" => Ok(RectKernel::Simd),
            other => Err(format!(
                "unknown rect kernel '{other}' (expected auto, scalar or simd)"
            )),
        }
    }
}

const KERNEL_UNSET: u8 = 0;
const KERNEL_SCALAR: u8 = 1;
const KERNEL_SIMD: u8 = 2;

/// Process-wide kernel selection, resolved lazily from `CRP_KERNEL`.
static KERNEL: AtomicU8 = AtomicU8::new(KERNEL_UNSET);

/// The SIMD kernel handles at most this many axes (register budget for
/// the broadcast window bounds); higher-dimensional trees fall back to
/// the scalar twin, which is unbounded.
const MAX_SIMD_DIM: usize = 8;

/// True when the CPU supports the AVX2 rect kernel.
pub fn rect_simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Pins the rect kernel for this process, overriding `CRP_KERNEL`.
/// [`RectKernel::Simd`] errors when AVX2 is unavailable;
/// [`RectKernel::Auto`] silently falls back to scalar.
pub fn set_rect_kernel(kind: RectKernel) -> Result<(), String> {
    let v = match kind {
        RectKernel::Auto => {
            if rect_simd_supported() {
                KERNEL_SIMD
            } else {
                KERNEL_SCALAR
            }
        }
        RectKernel::Scalar => KERNEL_SCALAR,
        RectKernel::Simd => {
            if !rect_simd_supported() {
                return Err("simd rect kernel requested but AVX2 is not available".into());
            }
            KERNEL_SIMD
        }
    };
    KERNEL.store(v, Ordering::Relaxed);
    Ok(())
}

/// The kernel the next packed traversal will run: `"scalar"` or
/// `"simd"`.
pub fn active_rect_kernel() -> &'static str {
    if resolved() == KERNEL_SIMD {
        "simd"
    } else {
        "scalar"
    }
}

/// Lazily seeds the selection from the `CRP_KERNEL` environment
/// variable (shared with the refine kernels): `scalar` forces the
/// portable twin, `simd` requests AVX2 but degrades silently when
/// unsupported, anything else resolves to the best available.
fn resolved() -> u8 {
    match KERNEL.load(Ordering::Relaxed) {
        KERNEL_UNSET => {
            let v = match std::env::var("CRP_KERNEL").ok().as_deref() {
                Some("scalar") => KERNEL_SCALAR,
                _ => {
                    if rect_simd_supported() {
                        KERNEL_SIMD
                    } else {
                        KERNEL_SCALAR
                    }
                }
            };
            KERNEL.store(v, Ordering::Relaxed);
            v
        }
        v => v,
    }
}

// --- the frozen image ------------------------------------------------

/// Entry slots per padding unit — one 64-byte cache line of `f64`s, so
/// every node row starts line-aligned and SIMD chunks never straddle a
/// node boundary.
const PAD: usize = 8;

/// One 64-byte line of coordinates; the alignment anchor of the slabs.
#[derive(Clone, Copy, Debug)]
#[repr(C, align(64))]
struct CacheLine([f64; PAD]);

/// Cache-line-aligned `f64` storage (a plain `Vec<f64>` only guarantees
/// 8-byte alignment).
#[derive(Clone, Debug)]
struct AlignedBuf {
    lines: Vec<CacheLine>,
    len: usize,
}

impl AlignedBuf {
    fn filled(len: usize, value: f64) -> Self {
        Self {
            lines: vec![CacheLine([value; PAD]); len.div_ceil(PAD)],
            len,
        }
    }

    fn as_slice(&self) -> &[f64] {
        // SAFETY: `CacheLine` is `repr(C)` over `[f64; PAD]`, so the
        // line vector is `lines.len() * PAD ≥ len` contiguous f64s.
        unsafe { std::slice::from_raw_parts(self.lines.as_ptr().cast::<f64>(), self.len) }
    }

    fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: as in `as_slice`.
        unsafe { std::slice::from_raw_parts_mut(self.lines.as_mut_ptr().cast::<f64>(), self.len) }
    }
}

/// One frozen node: a contiguous, padded span of the entry slabs.
#[derive(Clone, Copy, Debug)]
struct PackedNode {
    /// First entry slot (a multiple of [`PAD`]).
    first: u32,
    /// Live entries.
    count: u32,
    /// Slot count including sentinel padding (a multiple of [`PAD`]).
    padded: u32,
    /// Level-0 node holding payloads rather than children.
    leaf: bool,
}

/// A packed, read-only projection of one [`RTree`] state. Built by
/// [`RTree::freeze`] / cached by [`RTree::frozen`]; the module-level
/// comment at the top of `packed.rs` describes the layout.
#[derive(Clone, Debug)]
pub struct PackedRTree<T> {
    dim: usize,
    len: usize,
    generation: u64,
    height: usize,
    /// Level-ordered (BFS) nodes; the root is node 0.
    nodes: Vec<PackedNode>,
    /// Per-axis lower bounds, axis-major over `slot_count` slots.
    lo: AlignedBuf,
    /// Per-axis upper bounds, same layout as `lo`.
    hi: AlignedBuf,
    /// Per-slot child packed-node index (branch) or payload index
    /// (leaf); `u32::MAX` in sentinel slots.
    slots: Vec<u32>,
    /// Leaf payloads in slab order.
    payloads: Vec<T>,
    /// Total slot count — each axis row of `lo`/`hi` is this long.
    slot_count: usize,
    /// Longest padded node span; sizes the per-node mask scratch.
    max_padded: usize,
}

impl<T: Clone> PackedRTree<T> {
    /// Freezes `tree`'s current state. One pass assigns BFS order and
    /// slab offsets, a second fills the coordinate rows, so the build
    /// is linear in the arena size.
    pub(crate) fn build(tree: &RTree<T>) -> Self {
        let dim = tree.dim();
        if tree.is_empty() {
            return Self {
                dim,
                len: 0,
                generation: tree.generation(),
                height: 0,
                nodes: Vec::new(),
                lo: AlignedBuf::filled(0, f64::INFINITY),
                hi: AlignedBuf::filled(0, f64::NEG_INFINITY),
                slots: Vec::new(),
                payloads: Vec::new(),
                slot_count: 0,
                max_padded: 0,
            };
        }

        // BFS order: parents before children, levels contiguous.
        let mut order = vec![tree.root];
        let mut head = 0;
        while head < order.len() {
            let id = order[head];
            head += 1;
            if let NodeEntries::Branch(v) = &tree.node(id).entries {
                for e in v {
                    order.push(e.child);
                }
            }
        }

        let mut nodes = Vec::with_capacity(order.len());
        let mut slot_count = 0usize;
        let mut max_padded = 0usize;
        for &id in &order {
            let node = tree.node(id);
            let count = node.len();
            let padded = count.next_multiple_of(PAD);
            nodes.push(PackedNode {
                first: slot_count as u32,
                count: count as u32,
                padded: padded as u32,
                leaf: node.is_leaf(),
            });
            slot_count += padded;
            max_padded = max_padded.max(padded);
        }

        // Arena id → packed index, for child links.
        let mut index = vec![u32::MAX; tree.nodes.len()];
        for (pi, id) in order.iter().enumerate() {
            index[id.index()] = pi as u32;
        }

        let mut lo = AlignedBuf::filled(dim * slot_count, f64::INFINITY);
        let mut hi = AlignedBuf::filled(dim * slot_count, f64::NEG_INFINITY);
        let mut slots = vec![u32::MAX; slot_count];
        let mut payloads = Vec::with_capacity(tree.len());
        {
            let lo_s = lo.as_mut_slice();
            let hi_s = hi.as_mut_slice();
            let mut write = |slot: usize, rect: &HyperRect| {
                for a in 0..dim {
                    lo_s[a * slot_count + slot] = rect.lo()[a];
                    hi_s[a * slot_count + slot] = rect.hi()[a];
                }
            };
            for (pi, &id) in order.iter().enumerate() {
                let first = nodes[pi].first as usize;
                match &tree.node(id).entries {
                    NodeEntries::Leaf(v) => {
                        for (j, e) in v.iter().enumerate() {
                            write(first + j, &e.rect);
                            slots[first + j] = payloads.len() as u32;
                            payloads.push(e.data.clone());
                        }
                    }
                    NodeEntries::Branch(v) => {
                        for (j, e) in v.iter().enumerate() {
                            write(first + j, &e.rect);
                            slots[first + j] = index[e.child.index()];
                        }
                    }
                }
            }
        }

        Self {
            dim,
            len: tree.len(),
            generation: tree.generation(),
            height: tree.height(),
            nodes,
            lo,
            hi,
            slots,
            payloads,
            slot_count,
            max_padded,
        }
    }
}

impl<T> PackedRTree<T> {
    /// Dimensionality of the indexed space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of data entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the frozen tree holds no data.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The source tree's mutation counter at freeze time.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Height of the frozen tree (0 when empty).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of frozen nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Bytes of coordinate slab the traversal streams per full scan of
    /// one node span — the effective-bandwidth denominator benches use.
    pub fn node_scan_bytes(&self, entries: usize) -> usize {
        entries * self.dim * 2 * std::mem::size_of::<f64>()
    }

    /// Total live (unpadded) entries across all nodes — the rect tests
    /// a full pointer-tree sweep performs, since the packed image
    /// mirrors the source node structure one-to-one.
    pub fn entry_count(&self) -> usize {
        self.nodes.iter().map(|n| n.count as usize).sum()
    }

    /// Total padded coordinate slots — the rect tests a full packed
    /// sweep performs (sentinel slots are scanned but never match).
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// The grouped fused descent with optional per-group accounting.
    ///
    /// Shared-cost counters land in `stats` (each physical node visit
    /// once). When `per_group` is `Some`, group `g`'s counters advance
    /// exactly as its *solo* descent would — the traversal threads a
    /// liveness bitset down the tree (a group stays live below an entry
    /// only if one of its windows intersects it), and a group's solo
    /// pruning applies the same tests — so fused execution stays
    /// bit-identical to per-query execution in results *and* per-query
    /// accounting, while the physical union cost is what `stats`
    /// reports.
    pub fn visit_grouped_stats<'a>(
        &'a self,
        groups: &[&[HyperRect]],
        stats: &mut QueryStats,
        mut per_group: Option<&mut [QueryStats]>,
        visitor: &mut dyn FnMut(usize, &'a T) -> bool,
    ) -> bool {
        if self.len == 0 || groups.iter().all(|g| g.is_empty()) {
            return true;
        }
        if let Some(pg) = per_group.as_deref() {
            assert_eq!(pg.len(), groups.len(), "one stats slot per group");
        }
        let n_groups = groups.len();
        let group_words = n_groups.div_ceil(64);
        let mask_words = self.max_padded.div_ceil(64);
        let track = per_group.is_some();
        #[cfg(target_arch = "x86_64")]
        let use_simd = self.dim <= MAX_SIMD_DIM && resolved() == KERNEL_SIMD;
        #[cfg(not(target_arch = "x86_64"))]
        let use_simd = false;

        with_scratch(|scratch| {
            let masks = &mut scratch.masks;
            let live = &mut scratch.live;
            let stack = &mut scratch.packed_stack;
            masks.clear();
            masks.resize(n_groups * mask_words, 0);
            live.clear();
            stack.clear();

            // Root frame: every group with windows is live (a solo
            // descent visits the root unconditionally).
            live.resize(group_words, 0);
            for (g, windows) in groups.iter().enumerate() {
                if !windows.is_empty() {
                    live[g / 64] |= 1u64 << (g % 64);
                }
            }
            stack.push((0u32, 0u32));

            while let Some((node_idx, frame)) = stack.pop() {
                let node = self.nodes[node_idx as usize];
                let first = node.first as usize;
                let padded = node.padded as usize;
                let span_words = padded.div_ceil(64);
                let frame_start = frame as usize * group_words;

                stats.node_accesses += 1;
                if node.leaf {
                    stats.leaf_accesses += 1;
                }
                if let Some(pg) = per_group.as_deref_mut() {
                    for_each_bit(&live[frame_start..frame_start + group_words], |g| {
                        pg[g].node_accesses += 1;
                        if node.leaf {
                            pg[g].leaf_accesses += 1;
                        }
                    });
                }

                // Per-group entry masks. When tracking liveness only
                // live groups are computed (a dead group cannot match
                // anything below a branch it pruned); otherwise every
                // group is — monotonicity makes both exact.
                for g in 0..n_groups {
                    let in_play = if track {
                        live[frame_start + g / 64] & (1u64 << (g % 64)) != 0
                    } else {
                        !groups[g].is_empty()
                    };
                    let words = &mut masks[g * mask_words..g * mask_words + span_words];
                    words.fill(0);
                    if !in_play {
                        continue;
                    }
                    self.node_mask(use_simd, first, padded, groups[g], words);
                }

                // Only set bits are walked below (sentinel slots never
                // match, so padding bits are always clear): the union
                // word across groups drives a bit-scan instead of a
                // per-slot loop — the per-node overhead that would
                // otherwise rival the kernel itself on selective
                // windows.
                if node.leaf {
                    for wi in 0..span_words {
                        let mut union_word = 0u64;
                        for g in 0..n_groups {
                            union_word |= masks[g * mask_words + wi];
                        }
                        // Ascending j, groups in index order per j —
                        // identical to the per-slot order.
                        while union_word != 0 {
                            let b = union_word.trailing_zeros() as usize;
                            union_word &= union_word - 1;
                            let j = wi * 64 + b;
                            for g in 0..n_groups {
                                if masks[g * mask_words + wi] & (1u64 << b) != 0 {
                                    let payload = &self.payloads[self.slots[first + j] as usize];
                                    if !visitor(g, payload) {
                                        stack.clear();
                                        return false;
                                    }
                                }
                            }
                        }
                    }
                } else {
                    // Push matching children in reverse entry order so
                    // they pop — and are visited — in entry order,
                    // exactly like the recursive pointer descent.
                    for wi in (0..span_words).rev() {
                        let mut union_word = 0u64;
                        for g in 0..n_groups {
                            union_word |= masks[g * mask_words + wi];
                        }
                        while union_word != 0 {
                            let b = 63 - union_word.leading_zeros() as usize;
                            union_word &= !(1u64 << b);
                            let j = wi * 64 + b;
                            let child_frame = if track {
                                let off = live.len();
                                for gw in 0..group_words {
                                    let mut word = 0u64;
                                    for gb in 0..64 {
                                        let g = gw * 64 + gb;
                                        if g >= n_groups {
                                            break;
                                        }
                                        let was_live = live[frame_start + gw] & (1u64 << gb) != 0;
                                        if was_live && masks[g * mask_words + wi] & (1u64 << b) != 0
                                        {
                                            word |= 1u64 << gb;
                                        }
                                    }
                                    live.push(word);
                                }
                                (off / group_words) as u32
                            } else {
                                0
                            };
                            stack.push((self.slots[first + j], child_frame));
                        }
                    }
                }
            }
            true
        })
    }

    /// Dispatches the per-node window-mask kernel: sets bit `j` of
    /// `out` iff `windows` contains a rectangle intersecting entry slot
    /// `first + j` (closed boundaries). Sentinel slots never match.
    fn node_mask(
        &self,
        use_simd: bool,
        first: usize,
        padded: usize,
        windows: &[HyperRect],
        out: &mut [u64],
    ) {
        #[cfg(target_arch = "x86_64")]
        if use_simd {
            // SAFETY: `use_simd` is only true when the resolved kernel
            // is SIMD, which requires `is_x86_feature_detected!("avx2")`
            // to have returned true in this process.
            unsafe {
                mask_avx2(
                    self.lo.as_slice(),
                    self.hi.as_slice(),
                    self.dim,
                    self.slot_count,
                    first,
                    padded,
                    windows,
                    out,
                );
            }
            return;
        }
        let _ = use_simd;
        mask_scalar(
            self.lo.as_slice(),
            self.hi.as_slice(),
            self.dim,
            self.slot_count,
            first,
            padded,
            windows,
            out,
        );
    }
}

impl<T> WindowQuery<T> for PackedRTree<T> {
    fn visit_grouped<'a>(
        &'a self,
        groups: &[&[HyperRect]],
        stats: &mut QueryStats,
        visitor: &mut dyn FnMut(usize, &'a T) -> bool,
    ) -> bool {
        self.visit_grouped_stats(groups, stats, None, visitor)
    }
}

/// Calls `f(index)` for every set bit, in ascending order.
fn for_each_bit(words: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            f(wi * 64 + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

/// The portable window-mask kernel: the reference the AVX2 twin is
/// bit-identical to (both evaluate the same exact `<=` predicates; the
/// only difference is four entries per step).
#[allow(clippy::too_many_arguments)]
fn mask_scalar(
    lo: &[f64],
    hi: &[f64],
    dim: usize,
    slot_count: usize,
    first: usize,
    padded: usize,
    windows: &[HyperRect],
    out: &mut [u64],
) {
    for w in windows {
        for j in 0..padded {
            let mut ok = true;
            for a in 0..dim {
                let idx = a * slot_count + first + j;
                ok &= lo[idx] <= w.hi()[a] && w.lo()[a] <= hi[idx];
            }
            if ok {
                out[j / 64] |= 1u64 << (j % 64);
            }
        }
    }
}

/// The AVX2 window-mask kernel: four entry slots per step, per-axis
/// window bounds broadcast once per window.
///
/// # Safety
///
/// The caller must ensure AVX2 is available (runtime-detected by the
/// dispatcher) and `dim <= MAX_SIMD_DIM`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn mask_avx2(
    lo: &[f64],
    hi: &[f64],
    dim: usize,
    slot_count: usize,
    first: usize,
    padded: usize,
    windows: &[HyperRect],
    out: &mut [u64],
) {
    use std::arch::x86_64::*;
    debug_assert!(dim <= MAX_SIMD_DIM);
    debug_assert_eq!(first % PAD, 0);
    debug_assert_eq!(padded % PAD, 0);
    for w in windows {
        let mut whi = [_mm256_setzero_pd(); MAX_SIMD_DIM];
        let mut wlo = [_mm256_setzero_pd(); MAX_SIMD_DIM];
        for a in 0..dim {
            whi[a] = _mm256_set1_pd(w.hi()[a]);
            wlo[a] = _mm256_set1_pd(w.lo()[a]);
        }
        let mut j = 0;
        while j < padded {
            let mut acc = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
            for a in 0..dim {
                let idx = a * slot_count + first + j;
                // SAFETY: each axis row is `slot_count` slots long and
                // `first + padded <= slot_count`, so `idx + 3` stays
                // inside the slab.
                let lv = _mm256_loadu_pd(lo.as_ptr().add(idx));
                let hv = _mm256_loadu_pd(hi.as_ptr().add(idx));
                acc = _mm256_and_pd(acc, _mm256_cmp_pd::<_CMP_LE_OQ>(lv, whi[a]));
                acc = _mm256_and_pd(acc, _mm256_cmp_pd::<_CMP_LE_OQ>(wlo[a], hv));
            }
            let bits = _mm256_movemask_pd(acc) as u64 & 0xF;
            out[j / 64] |= bits << (j % 64);
            j += 4;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RTreeParams;
    use crp_geom::Point;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_rects(n: usize, dim: usize, seed: u64) -> Vec<(HyperRect, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let lo: Vec<f64> = (0..dim).map(|_| rng.random_range(0.0..100.0)).collect();
                let hi: Vec<f64> = lo.iter().map(|&l| l + rng.random_range(0.0..8.0)).collect();
                (HyperRect::new(Point::new(lo), Point::new(hi)), i)
            })
            .collect()
    }

    fn random_windows(n: usize, dim: usize, seed: u64) -> Vec<HyperRect> {
        random_rects(n, dim, seed)
            .into_iter()
            .map(|(r, _)| r)
            .collect()
    }

    fn hits_and_stats<Q: WindowQuery<usize>>(
        tree: &Q,
        windows: &[HyperRect],
    ) -> (Vec<usize>, QueryStats) {
        let mut stats = QueryStats::default();
        let mut out = Vec::new();
        tree.visit_windows(windows, &mut stats, &mut |&i| {
            out.push(i);
            true
        });
        (out, stats)
    }

    #[test]
    fn packed_matches_pointer_on_incrementally_built_trees() {
        for dim in [2usize, 3, 5] {
            let mut tree: RTree<usize> = RTree::new(dim, RTreeParams::with_fanout(8));
            for (r, i) in random_rects(500, dim, 11 + dim as u64) {
                tree.insert(r, i);
            }
            let packed = tree.freeze();
            assert_eq!(packed.len(), tree.len());
            assert_eq!(packed.height(), tree.height());
            for seed in 0..8u64 {
                let windows = random_windows(3, dim, 100 + seed);
                let (a, a_stats) = hits_and_stats(&tree, &windows);
                let (b, b_stats) = hits_and_stats(&packed, &windows);
                assert_eq!(a, b, "dim={dim} seed={seed}: hit order must match");
                assert_eq!(
                    a_stats, b_stats,
                    "dim={dim} seed={seed}: counters must match"
                );
            }
        }
    }

    #[test]
    fn packed_matches_pointer_on_bulk_loaded_trees() {
        let tree: RTree<usize> =
            RTree::bulk_load(3, RTreeParams::with_fanout(16), random_rects(4_000, 3, 7));
        let packed = tree.freeze();
        for seed in 0..6u64 {
            let windows = random_windows(4, 3, 300 + seed);
            let (a, a_stats) = hits_and_stats(&tree, &windows);
            let (b, b_stats) = hits_and_stats(&packed, &windows);
            assert_eq!(a, b);
            assert_eq!(a_stats, b_stats);
        }
    }

    #[test]
    fn scalar_and_simd_masks_are_bit_identical() {
        if !rect_simd_supported() {
            return;
        }
        let tree: RTree<usize> =
            RTree::bulk_load(3, RTreeParams::with_fanout(32), random_rects(2_000, 3, 21));
        let packed = tree.freeze();
        let windows = random_windows(5, 3, 99);
        for node in &packed.nodes {
            let span = (node.padded as usize).div_ceil(64);
            let mut scalar = vec![0u64; span];
            let mut simd = vec![0u64; span];
            mask_scalar(
                packed.lo.as_slice(),
                packed.hi.as_slice(),
                packed.dim,
                packed.slot_count,
                node.first as usize,
                node.padded as usize,
                &windows,
                &mut scalar,
            );
            // SAFETY: guarded by `rect_simd_supported()` above.
            unsafe {
                mask_avx2(
                    packed.lo.as_slice(),
                    packed.hi.as_slice(),
                    packed.dim,
                    packed.slot_count,
                    node.first as usize,
                    node.padded as usize,
                    &windows,
                    &mut simd,
                );
            }
            assert_eq!(scalar, simd);
        }
    }

    #[test]
    fn fused_groups_match_solo_descents_and_share_cost() {
        let tree: RTree<usize> =
            RTree::bulk_load(2, RTreeParams::with_fanout(8), random_rects(1_500, 2, 5));
        let packed = tree.freeze();
        let groups: Vec<Vec<HyperRect>> = (0..4u64).map(|s| random_windows(2, 2, 40 + s)).collect();
        let group_refs: Vec<&[HyperRect]> = groups.iter().map(|g| g.as_slice()).collect();

        let mut shared = QueryStats::default();
        let mut per_group = vec![QueryStats::default(); groups.len()];
        let mut fused: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
        packed.visit_grouped_stats(
            &group_refs,
            &mut shared,
            Some(&mut per_group),
            &mut |g, &i| {
                fused[g].push(i);
                true
            },
        );

        let mut solo_total = QueryStats::default();
        for (g, windows) in groups.iter().enumerate() {
            let (solo_hits, solo_stats) = hits_and_stats(&packed, windows);
            assert_eq!(fused[g], solo_hits, "group {g} hits");
            // Per-group accounting is exactly the solo descent's.
            assert_eq!(per_group[g], solo_stats, "group {g} stats");
            solo_total += solo_stats;
        }
        // The fused descent reads shared nodes once: strictly cheaper
        // than the per-query sum (at minimum the root is shared).
        assert!(shared.node_accesses < solo_total.node_accesses);
    }

    #[test]
    fn early_abort_stops_the_whole_traversal() {
        let tree: RTree<usize> =
            RTree::bulk_load(2, RTreeParams::with_fanout(8), random_rects(1_000, 2, 9));
        let packed = tree.freeze();
        let everything = vec![HyperRect::new(
            Point::from([-1.0, -1.0]),
            Point::from([200.0, 200.0]),
        )];
        let (_, full) = hits_and_stats(&packed, &everything);
        let mut stats = QueryStats::default();
        let mut seen = 0usize;
        let aborted = !packed.visit_windows(&everything, &mut stats, &mut |_| {
            seen += 1;
            false
        });
        assert!(aborted);
        assert_eq!(seen, 1);
        assert!(stats.node_accesses < full.node_accesses);

        // Pointer parity on the abort path too.
        let mut p_stats = QueryStats::default();
        let mut p_seen = 0usize;
        let p_aborted = !WindowQuery::visit_windows(&tree, &everything, &mut p_stats, &mut |_| {
            p_seen += 1;
            false
        });
        assert!(p_aborted);
        assert_eq!(p_seen, 1);
        assert_eq!(p_stats, stats);
    }

    #[test]
    fn freeze_is_generation_tagged_and_invalidated_by_mutation() {
        let mut tree: RTree<usize> = RTree::new(2, RTreeParams::with_fanout(4));
        for i in 0..50usize {
            tree.insert_point(Point::from([i as f64, (i * 7 % 13) as f64]), i);
        }
        let gen_before = tree.generation();
        let frozen_gen = tree.frozen().generation();
        assert_eq!(frozen_gen, gen_before);
        // Cached until a mutation: same image, same tag.
        assert_eq!(tree.frozen().generation(), frozen_gen);

        tree.insert_point(Point::from([1000.0, 1000.0]), 999);
        assert!(tree.generation() > gen_before);
        let refrozen = tree.frozen();
        assert_eq!(refrozen.generation(), tree.generation());
        // The rebuilt image sees the new entry.
        let w = HyperRect::new(Point::from([999.0, 999.0]), Point::from([1001.0, 1001.0]));
        let mut stats = QueryStats::default();
        let mut hits = Vec::new();
        refrozen.visit_windows(std::slice::from_ref(&w), &mut stats, &mut |&i| {
            hits.push(i);
            true
        });
        assert_eq!(hits, vec![999]);

        // remove() invalidates too; removing a missing entry does not.
        let gen_mid = tree.generation();
        assert!(!tree.remove(&w, &0));
        assert_eq!(tree.generation(), gen_mid);
        let rect0 = HyperRect::from_point(&Point::from([0.0, 0.0]));
        assert!(tree.remove(&rect0, &0));
        assert!(tree.generation() > gen_mid);
        assert_eq!(tree.frozen().generation(), tree.generation());
    }

    #[test]
    fn empty_tree_freezes_to_zero_access_image() {
        let tree: RTree<usize> = RTree::new(3, RTreeParams::with_fanout(8));
        let packed = tree.freeze();
        assert!(packed.is_empty());
        assert_eq!(packed.node_count(), 0);
        let w = HyperRect::new(Point::from([0.0; 3]), Point::from([1.0; 3]));
        let (hits, stats) = hits_and_stats(&packed, std::slice::from_ref(&w));
        assert!(hits.is_empty());
        assert_eq!(stats, QueryStats::default());
    }

    #[test]
    fn rect_kernel_parse_is_strict() {
        assert_eq!("auto".parse::<RectKernel>(), Ok(RectKernel::Auto));
        assert_eq!("scalar".parse::<RectKernel>(), Ok(RectKernel::Scalar));
        assert_eq!("simd".parse::<RectKernel>(), Ok(RectKernel::Simd));
        for bad in ["AVX2", "Scalar", "SIMD", "fast", "", "auto "] {
            assert!(
                bad.parse::<RectKernel>().is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn set_rect_kernel_roundtrip() {
        // Forcing scalar always works and is observable.
        set_rect_kernel(RectKernel::Scalar).expect("scalar is always available");
        assert_eq!(active_rect_kernel(), "scalar");
        if rect_simd_supported() {
            set_rect_kernel(RectKernel::Simd).expect("supported");
            assert_eq!(active_rect_kernel(), "simd");
        } else {
            assert!(set_rect_kernel(RectKernel::Simd).is_err());
        }
        // Restore the default for other tests in this process.
        set_rect_kernel(RectKernel::Auto).expect("auto never fails");
    }
}
