//! Quickstart: build a small uncertain dataset, run the probabilistic
//! reverse skyline query, pick a non-answer, and explain its absence
//! with the CP algorithm.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use prsq_crp::prelude::*;

fn main() {
    // A tiny 2-D uncertain dataset: five "products" whose measured
    // attributes vary across batches (each sample = one batch report).
    let ds = UncertainDataset::from_objects(vec![
        UncertainObject::with_equal_probs(
            ObjectId(0),
            vec![Point::from([10.0, 10.0]), Point::from([11.0, 9.0])],
        )
        .unwrap()
        .with_label("our product"),
        UncertainObject::with_equal_probs(
            ObjectId(1),
            vec![Point::from([7.0, 7.0]), Point::from([20.0, 20.0])],
        )
        .unwrap()
        .with_label("rival A"),
        UncertainObject::certain(ObjectId(2), Point::from([8.0, 9.0])).with_label("rival B"),
        UncertainObject::certain(ObjectId(3), Point::from([40.0, 2.0])).with_label("rival C"),
        UncertainObject::certain(ObjectId(4), Point::from([2.0, 40.0])).with_label("rival D"),
    ])
    .unwrap();

    // The customer profile the business cares about.
    let q = Point::from([5.0, 5.0]);
    let alpha = 0.75;

    // Who is in the probabilistic reverse skyline? (Pr(u) ≥ α.)
    println!("probabilistic reverse skyline at α = {alpha}:");
    for (id, prob) in probabilistic_reverse_skyline(&ds, &q, alpha) {
        let label = ds.get(id).and_then(|o| o.label()).unwrap_or("?");
        println!("  {label}: Pr = {prob:.3}");
    }

    // Our product is absent. Why? One engine session owns the R-tree
    // and dispatches CP through the filter → refine → fmcs pipeline.
    let engine =
        ExplainEngine::new(ds, EngineConfig::with_alpha(alpha)).expect("valid engine config");
    let ds = engine.dataset();
    let an = ObjectId(0);
    match engine.explain(&q, an) {
        Ok(outcome) => {
            println!("\ncauses for the absence of 'our product':");
            for cause in outcome.by_responsibility() {
                let label = ds.get(cause.id).and_then(|o| o.label()).unwrap_or("?");
                let gamma: Vec<String> = cause
                    .min_contingency
                    .iter()
                    .map(|g| {
                        ds.get(*g)
                            .and_then(|o| o.label())
                            .unwrap_or("?")
                            .to_string()
                    })
                    .collect();
                println!(
                    "  {label}: responsibility 1/{} (min contingency set: {{{}}}){}",
                    cause.min_contingency.len() + 1,
                    gamma.join(", "),
                    if cause.counterfactual {
                        " — counterfactual"
                    } else {
                        ""
                    }
                );
            }
            println!(
                "\n({} candidates filtered, {} contingency sets examined, {} node accesses)",
                outcome.stats.candidates,
                outcome.stats.subsets_examined,
                outcome.stats.query.node_accesses
            );
        }
        Err(CrpError::NotANonAnswer { prob }) => {
            println!("'our product' is actually an answer (Pr = {prob:.3}) — nothing to explain")
        }
        Err(e) => println!("error: {e}"),
    }
}
