//! The paper's motivating scenario (Section 1): a coach posts a "new
//! position" profile; players whose dynamic skyline contains the profile
//! with high probability are candidates. A player missing from the
//! candidate list asks *"what causes me to be unqualified for this
//! position, and what are the degrees of those causes?"*
//!
//! ```text
//! cargo run --release --example basketball_scout
//! ```

use prsq_crp::data::{nba_dataset, nba_position_query, NbaConfig};
use prsq_crp::prelude::*;

fn main() {
    // A synthetic league standing in for the NBA dataset (see DESIGN.md).
    let engine = ExplainEngine::new(
        nba_dataset(&NbaConfig {
            players: 800,
            ..NbaConfig::default()
        }),
        EngineConfig::default(),
    )
    .expect("valid engine config");
    let ds = engine.dataset();
    let q = nba_position_query();
    let alpha = 0.5;
    println!(
        "league of {} players, {} season records; position profile q = {q} (PTS, FGM, REB, AST)",
        ds.len(),
        ds.total_samples()
    );

    // Scan near-elite players first (small dominance windows, the
    // tractable "why am I just outside the candidate list?" cases) and
    // explain the first couple whose cause lists print nicely.
    let mut order: Vec<&UncertainObject> = ds.iter().collect();
    order.sort_by_key(|o| o.expectation().distance(&q) as u64);
    let config = CpConfig {
        use_probability_bound: true,
        ..CpConfig::with_budget(2_000_000)
    };
    let mut explained = 0;
    for obj in order {
        if explained >= 2 {
            break;
        }
        let outcome =
            match engine.explain_configured(ExplainStrategy::Cp, &q, alpha, obj.id(), &config) {
                Ok(o) if (3..=60).contains(&o.causes.len()) => o,
                _ => continue,
            };
        explained += 1;
        println!(
            "\n=== {} is NOT a candidate (α = {alpha}) — the competition: ===",
            obj.label().unwrap_or("player")
        );
        for cause in outcome.by_responsibility() {
            let player = ds.get(cause.id).expect("cause exists");
            let e = player.expectation();
            println!(
                "  {:<28} responsibility 1/{:<3} career avgs: {:.0} pts, {:.0} fgm, {:.0} reb, {:.0} ast",
                player.label().unwrap_or("player"),
                cause.min_contingency.len() + 1,
                e[0],
                e[1],
                e[2],
                e[3],
            );
        }
        println!(
            "  ({} candidate rivals, {} of them block every contingency set)",
            outcome.stats.candidates, outcome.stats.forced
        );
    }
    if explained == 0 {
        println!("no tractable non-candidate found — try a different seed or α");
    }
}
