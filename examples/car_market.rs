//! Certain-data scenario (Section 4 / Table 4): a dealer checks why a
//! particular listing does not appear in the reverse skyline of a
//! buyer's reference configuration — i.e. why the listing is not a
//! "potential sale" for buyers anchored at q — and CR returns every
//! competing listing that is strictly closer to the subject's profile
//! than the reference, each with responsibility 1/|Cc| (Lemma 7).
//!
//! ```text
//! cargo run --release --example car_market
//! ```

use prsq_crp::data::{cardb_dataset, CarDbConfig};
use prsq_crp::prelude::*;

fn main() {
    let engine = ExplainEngine::new(
        cardb_dataset(&CarDbConfig {
            listings: 8_000,
            seed: 0xCA7,
        }),
        EngineConfig::default(),
    )
    .expect("valid engine config");
    let ds = engine.dataset();
    let q = Point::from([11_580.0, 49_000.0]); // the paper's reference car
    println!(
        "{} listings; buyer reference q = (${}, {} mi)",
        ds.len(),
        q[0],
        q[1]
    );

    // First: which listings ARE in the reverse skyline of q? (The
    // engine's point tree serves the membership query too.)
    let mut stats = QueryStats::default();
    let rs = reverse_skyline_rtree(ds, engine.point_tree(), &q, &mut stats);
    println!(
        "reverse skyline size: {} ({} node accesses)",
        rs.len(),
        stats.node_accesses
    );

    // Explain a few absences.
    let mut explained = 0;
    for obj in ds.iter() {
        if explained >= 3 {
            break;
        }
        let outcome = match engine.explain(&q, obj.id()) {
            Ok(o) if (2..=8).contains(&o.causes.len()) => o,
            _ => continue,
        };
        explained += 1;
        let an = obj.certain_point();
        println!(
            "\n=== {} at (${}, {} mi) is outside the reverse skyline — blocked by: ===",
            obj.label().unwrap_or("listing"),
            an[0],
            an[1]
        );
        for cause in &outcome.causes {
            let c = ds.get(cause.id).expect("cause exists");
            let p = c.certain_point();
            println!(
                "  {:<28} (${:>6}, {:>6} mi)  responsibility 1/{}",
                c.label().unwrap_or("listing"),
                p[0],
                p[1],
                cause.min_contingency.len() + 1
            );
        }
    }
}
