//! A generic "why-not" explainer over any generated dataset: classifies
//! an object against the query, and if it is a non-answer produces the
//! full causality & responsibility report — including the actual minimal
//! contingency sets, which tell the user the *cheapest way to flip the
//! outcome* ("if these k objects were gone, removing the cause would put
//! you in the result").
//!
//! ```text
//! cargo run --release --example why_not_explainer [object-id]
//! ```

use prsq_crp::data::{uncertain_dataset, UncertainConfig};
use prsq_crp::prelude::*;
use prsq_crp::skyline::pr_reverse_skyline;

fn main() {
    let ds = uncertain_dataset(&UncertainConfig {
        cardinality: 5_000,
        dim: 2,
        radius_range: (0.0, 150.0),
        seed: 0xE1,
        ..UncertainConfig::default()
    });
    let q = Point::from([5_000.0, 5_000.0]);
    let alpha = 0.6;
    let engine =
        ExplainEngine::new(ds, EngineConfig::with_alpha(alpha)).expect("valid engine config");
    let ds = engine.dataset();

    // Subject: from argv, or scan for an interesting non-answer.
    let subject: ObjectId = match std::env::args().nth(1).and_then(|s| s.parse().ok()) {
        Some(raw) => ObjectId(raw),
        None => {
            let mut pick = None;
            for obj in ds.iter() {
                if let Ok(out) = engine.explain_configured(
                    ExplainStrategy::Cp,
                    &q,
                    alpha,
                    obj.id(),
                    &CpConfig::with_budget(500_000),
                ) {
                    if out.causes.len() >= 3 {
                        pick = Some(obj.id());
                        break;
                    }
                }
            }
            pick.expect("dataset contains explainable non-answers")
        }
    };

    let pos = ds.index_of(subject).expect("subject exists");
    let prob = pr_reverse_skyline(ds, pos, &q, |_| false);
    println!("subject {subject}: Pr(reverse-skyline) = {prob:.4}, threshold α = {alpha}");

    match engine.explain(&q, subject) {
        Ok(outcome) => {
            println!(
                "NON-ANSWER — {} actual cause(s) of the absence:",
                outcome.causes.len()
            );
            for cause in outcome.by_responsibility() {
                println!(
                    "  {} responsibility = {:.4}",
                    cause.id, cause.responsibility
                );
                if cause.counterfactual {
                    println!("    counterfactual: deleting it alone flips the result");
                } else {
                    let ids: Vec<String> = cause
                        .min_contingency
                        .iter()
                        .map(|g| g.to_string())
                        .collect();
                    println!(
                        "    pivotal once {{{}}} are removed (minimal contingency set, size {})",
                        ids.join(", "),
                        cause.min_contingency.len()
                    );
                }
            }
            println!(
                "work: {} candidates, {} contingency sets examined, {} Pr evaluations, {} node accesses",
                outcome.stats.candidates,
                outcome.stats.subsets_examined,
                outcome.stats.prsq_evaluations,
                outcome.stats.query.node_accesses,
            );
        }
        Err(CrpError::NotANonAnswer { prob }) => {
            println!("ANSWER — the object is in the probabilistic reverse skyline (Pr = {prob:.4})")
        }
        Err(e) => println!("cannot explain: {e}"),
    }
}
