//! A **live dataset** session: one mutable engine absorbing a stream of
//! inserts/deletes/replaces while explanations keep being served.
//!
//! Shows the three pillars of the live path:
//!
//! * **incremental index maintenance** — every update patches the
//!   R-trees in place (condense + reinsert); the session never
//!   re-indexes, and epochs track which dataset version each answer
//!   reflects,
//! * **the explanation cache** — repeated questions and α-sweeps over
//!   the same non-answer are served from memoised stage-1 rows, while
//!   updates evict exactly the entries whose candidate region they
//!   touch,
//! * **per-shard routing** — a spatial sharded session absorbs the same
//!   stream with one shard patched per update, self-rebuilding shards
//!   that go stale.
//!
//! ```text
//! cargo run --release --example live_session
//! ```

// The deprecated per-call entry points are exercised deliberately:
// these measurements/examples pin the legacy surface, which now
// forwards through the query planner.
#![allow(deprecated)]
use prsq_crp::data::{uncertain_dataset, UncertainConfig};
use prsq_crp::prelude::*;
use prsq_crp::uncertain::Update;

fn main() {
    let ds = uncertain_dataset(&UncertainConfig {
        cardinality: 20_000,
        dim: 2,
        radius_range: (0.0, 5.0),
        seed: 0x11FE,
        ..UncertainConfig::default()
    });
    let q = Point::from([5_000.0, 5_000.0]);
    let alpha = 0.6;

    let mut live =
        ExplainEngine::new(ds.clone(), EngineConfig::with_alpha(alpha)).expect("valid config");
    let mut sharded =
        ShardedExplainEngine::new(ds, EngineConfig::with_alpha(alpha), 4, ShardPolicy::Spatial)
            .expect("valid config");

    // Pick a non-answer to keep asking about.
    let an = live
        .dataset()
        .iter()
        .map(|o| o.id())
        .find(|&id| live.explain(&q, id).is_ok())
        .expect("some object is a non-answer");
    let baseline = live.explain(&q, an).expect("non-answer");
    println!(
        "epoch {}: {} has {} cause(s)",
        live.epoch(),
        an,
        baseline.causes.len()
    );

    // --- α-sweep: stage 1 is paid once, the cache serves the rest. ---
    for alpha in [0.2, 0.4, 0.8] {
        let out = live.explain_as(ExplainStrategy::Cp, &q, alpha, an);
        println!(
            "  α = {alpha}: {}",
            match out {
                Ok(o) => format!("{} cause(s)", o.causes.len()),
                Err(CrpError::NotANonAnswer { prob }) => format!("answer (Pr = {prob:.2})"),
                Err(e) => format!("{e}"),
            }
        );
    }
    let io = live.accumulated_io();
    println!(
        "after the sweep: {} node accesses total, {} cache hit(s), {} miss(es)",
        io.node_accesses, io.cache_hits, io.cache_misses
    );

    // --- stream updates while explaining ------------------------------
    let mut next_id = live.dataset().iter().map(|o| o.id().0).max().unwrap() + 1;
    let mut explained = 0usize;
    for step in 0..500u32 {
        // A tight cluster of new objects near the query, plus churn:
        // every third step retires the object inserted three steps ago.
        let jitter = f64::from(step % 17);
        let obj = UncertainObject::certain(
            ObjectId(next_id),
            Point::from([4_000.0 + 10.0 * jitter, 4_000.0 + 7.0 * jitter]),
        );
        let update = Update::Insert(obj);
        live.apply(update.clone()).expect("valid update");
        sharded.apply(update).expect("valid update");
        next_id += 1;
        if step % 3 == 2 {
            let retired = ObjectId(next_id - 3);
            live.apply(Update::Delete(retired)).expect("valid update");
            sharded
                .apply(Update::Delete(retired))
                .expect("valid update");
        }
        if step % 50 == 0 {
            // The session answers against the current version; the two
            // engines must agree cause-for-cause.
            let a = live.explain(&q, an).expect("still a non-answer");
            let b = sharded.explain(&q, an).expect("still a non-answer");
            assert_eq!(a.causes, b.causes, "sharded diverged from unsharded");
            explained += 1;
        }
    }
    println!(
        "\nstreamed 500 insert(s) + 166 delete(s); explained {} time(s) mid-stream; \
         now at epoch {}",
        explained,
        live.epoch()
    );

    let io = live.accumulated_io();
    println!(
        "unsharded session: {} inserted, {} removed, {} reinserted by tree maintenance; \
         cache: {} hit(s), {} miss(es), {} eviction(s)",
        io.inserts, io.removes, io.reinserts, io.cache_hits, io.cache_misses, io.cache_evictions
    );
    let sio = sharded.accumulated_io();
    println!(
        "sharded session:   {} inserted, {} removed, {} reinserted (merged across shards)",
        sio.inserts, sio.removes, sio.reinserts
    );
    println!(
        "per-shard state:   sizes {:?}, rebuilds {:?}, {} repartition(s)",
        sharded.shard_sizes(),
        sharded.shard_rebuilds(),
        sharded.repartitions()
    );

    // The answers still match a fresh engine built on the final data.
    let fresh = ExplainEngine::new(
        UncertainDataset::from_objects(live.dataset().iter().cloned()).expect("valid dataset"),
        EngineConfig::with_alpha(alpha),
    )
    .expect("valid config");
    let a = live.explain(&q, an).expect("non-answer");
    let b = fresh.explain(&q, an).expect("non-answer");
    assert_eq!(a.causes, b.causes, "live session drifted from the data");
    println!("\nlive session still agrees with a fresh engine on the final dataset ✓");
}
