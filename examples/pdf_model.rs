//! The continuous-pdf model (Section 3.2): uncertain objects are regions
//! with densities instead of sample lists. This example builds a small
//! pdf dataset, explains a non-answer through a pdf engine session
//! (candidates are integrated in closed form), and shows convergence to
//! the discrete algorithm as the integration resolution grows.
//!
//! ```text
//! cargo run --release --example pdf_model
//! ```

// The deprecated per-call entry points are exercised deliberately:
// these measurements/examples pin the legacy surface, which now
// forwards through the query planner.
#![allow(deprecated)]
use prsq_crp::prelude::*;
use prsq_crp::uncertain::ContinuousPdf;

fn main() {
    // A 2-D market of uncertain "offers": each offer is a price/latency
    // region the vendor guarantees, uniform within the region.
    let rect = |lo: [f64; 2], hi: [f64; 2]| HyperRect::new(Point::from(lo), Point::from(hi));
    let ds = PdfDataset::from_objects(vec![
        PdfObject::uniform(ObjectId(0), rect([9.0, 9.0], [11.0, 11.0])).with_label("our offer"),
        PdfObject::uniform(ObjectId(1), rect([6.5, 6.5], [7.5, 7.5])).with_label("sharp rival"),
        PdfObject::new(
            ObjectId(2),
            ContinuousPdf::uniform(rect([6.0, 2.0], [9.0, 6.5])),
        )
        .with_label("broad rival"),
        PdfObject::uniform(ObjectId(3), rect([30.0, 30.0], [34.0, 31.0])).with_label("distant"),
    ])
    .unwrap();
    let q = Point::from([5.0, 5.0]);
    let alpha = 0.5;

    println!("explaining the absence of 'our offer' from the probabilistic reverse skyline…");
    // The integration resolution is a session parameter: one pdf engine
    // per resolution (each owns its region R-tree).
    for resolution in [2usize, 4, 8] {
        let engine =
            ExplainEngine::for_pdf(ds.clone(), resolution, EngineConfig::with_alpha(alpha))
                .expect("valid engine config");
        match engine.explain(&q, ObjectId(0)) {
            Ok(out) => {
                println!(
                    "\nresolution {resolution} ({} integration cells):",
                    resolution * resolution
                );
                for cause in out.by_responsibility() {
                    println!(
                        "  {:<14} responsibility 1/{}",
                        ds.get(cause.id).and_then(|o| o.label()).unwrap_or("?"),
                        cause.min_contingency.len() + 1
                    );
                }
            }
            Err(e) => println!("resolution {resolution}: {e}"),
        }
    }

    // Cross-check: the discrete algorithm on the discretised dataset.
    let disc_engine = ExplainEngine::new(ds.discretize(8), EngineConfig::with_alpha(alpha))
        .expect("valid engine config");
    let disc = disc_engine.dataset();
    let out = disc_engine
        .explain_as(ExplainStrategy::Cp, &q, alpha, ObjectId(0))
        .expect("still a non-answer after discretisation");
    println!(
        "\ndiscretised check (resolution 8): {} causes",
        out.causes.len()
    );
    for cause in out.by_responsibility() {
        println!(
            "  {:<14} responsibility 1/{}",
            disc.get(cause.id).and_then(|o| o.label()).unwrap_or("?"),
            cause.min_contingency.len() + 1
        );
    }
}
