//! Partition-parallel explain: shard a synthetic workload across a
//! fleet of per-partition R-trees, answer one query through the sharded
//! engine, and show (a) the outcomes are bit-identical to the unsharded
//! session and (b) how the per-shard stage-1 API + merge step would map
//! onto a multi-node deployment.
//!
//! ```text
//! cargo run --release --example sharded_fleet
//! ```

use prsq_crp::core::merge_candidate_ids;
use prsq_crp::data::{uncertain_dataset, UncertainConfig};
use prsq_crp::prelude::*;

fn main() {
    // A mid-sized synthetic uncertain dataset (the Fig. 6 family).
    let ds = uncertain_dataset(&UncertainConfig {
        cardinality: 10_000,
        dim: 2,
        radius_range: (0.0, 5.0),
        seed: 0x5AAD,
        ..UncertainConfig::default()
    });
    let q = Point::from([5_000.0, 5_000.0]);
    let alpha = 0.6;

    // One unsharded session and one 4-shard spatial session over the
    // same data.
    let single = ExplainEngine::new(ds.clone(), EngineConfig::with_alpha(alpha))
        .expect("valid engine config");
    let sharded =
        ShardedExplainEngine::new(ds, EngineConfig::with_alpha(alpha), 4, ShardPolicy::Spatial)
            .expect("valid engine config");
    println!(
        "sharded session: {} shards ({:?} objects each), policy {}",
        sharded.shard_count(),
        sharded.shard_sizes(),
        sharded.policy()
    );

    // Find a non-answer to explain: the first object the query misses.
    let an = single
        .dataset()
        .iter()
        .map(|o| o.id())
        .find(|&id| single.explain(&q, id).is_ok())
        .expect("some object is a non-answer");

    // --- The distributed view: per-shard candidates + merge. ---------
    // Each shard answers its own window query (this is the request a
    // remote partition server would serve)…
    let parts: Vec<Vec<ObjectId>> = (0..sharded.shard_count())
        .map(|i| sharded.shard_candidates(i, &q, an).unwrap())
        .collect();
    for (i, part) in parts.iter().enumerate() {
        println!("shard {i}: {} candidate(s)", part.len());
    }
    // …and the router merges them into the exact global candidate set.
    let merged = merge_candidate_ids(parts);
    let global = single.candidate_ids(&q, an).unwrap();
    assert_eq!(merged, global, "merge reproduces the unsharded filter");
    println!(
        "merged candidates: {} == unsharded filter output ✓",
        merged.len()
    );

    // --- The engine view: same call, same answer. --------------------
    let a = single.explain(&q, an).unwrap();
    let b = sharded.explain(&q, an).unwrap();
    assert_eq!(a.causes, b.causes, "sharded outcomes are bit-identical");
    println!(
        "explain({an}): {} cause(s), top responsibility 1/{} — identical on both engines ✓",
        b.causes.len(),
        b.by_responsibility()
            .first()
            .map(|c| c.min_contingency.len() + 1)
            .unwrap_or(0)
    );
    println!(
        "node accesses — unsharded: {}, sharded (sum over shards): {}",
        single.accumulated_io().node_accesses,
        sharded.accumulated_io().node_accesses
    );
}
