//! Vendored, offline API-subset of `proptest`.
//!
//! The build environment has no network access, so this crate provides
//! the slice of the proptest API the workspace's property suites use:
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_oneof!`] macros, [`strategy::Strategy`] with `prop_map`,
//! range and tuple strategies, `prop::collection::vec`,
//! `prop::sample::Index`, [`arbitrary::any`] and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * inputs are generated from a **fixed deterministic seed** (plus the
//!   case index), so CI runs are reproducible by construction;
//! * there is **no shrinking** — a failing case reports the case index
//!   and the assertion message only;
//! * strategies are plain generator objects (`generate(&mut runner)`),
//!   not value trees.

pub mod strategy {
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// A generator of test-case inputs (subset of proptest's trait of
    /// the same name; no shrinking).
    pub trait Strategy {
        type Value;
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            (**self).generate(runner)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            (**self).generate(runner)
        }
    }

    /// Boxes a strategy for heterogeneous collections ([`Union`] arms).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// The [`Strategy::prop_map`] adaptor.
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            (self.f)(self.source.generate(runner))
        }
    }

    /// A constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of strategies over a common value type — the
    /// engine behind [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// # Panics
        ///
        /// Panics when `arms` is empty or all weights are zero.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total: u32 = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Self { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            let mut pick = runner.rng().random_range(0..self.total);
            for (w, arm) in &self.arms {
                if pick < *w {
                    return arm.generate(runner);
                }
                pick -= w;
            }
            unreachable!("weights sum to total")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(runner),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    /// The whole-domain strategy of `T` (proptest's `any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> Self {
                    runner.rng().next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng().next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.rng().random_range(-1.0e9..1.0e9)
        }
    }

    impl Arbitrary for crate::prop::sample::Index {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            crate::prop::sample::Index::new(runner.rng().random::<f64>())
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`,
/// `prop::sample::Index`).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRunner;
        use rand::Rng;

        /// Element-count specification for [`vec()`]: a fixed size, `a..b`
        /// or `a..=b`.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                Self {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        /// The strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
                let len = runner
                    .rng()
                    .random_range(self.size.lo..=self.size.hi_inclusive);
                (0..len).map(|_| self.element.generate(runner)).collect()
            }
        }

        /// `Vec` strategy with element strategy and size specification.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRunner;
        use rand::Rng;

        /// The strategy returned by [`select`].
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, runner: &mut TestRunner) -> T {
                let i = runner.rng().random_range(0..self.options.len());
                self.options[i].clone()
            }
        }

        /// Uniform choice from a fixed option list.
        ///
        /// # Panics
        ///
        /// Panics (at generation time) when `options` is empty.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        /// A position into a collection of runtime-determined length
        /// (proptest's `sample::Index`).
        #[derive(Clone, Copy, Debug)]
        pub struct Index(f64);

        impl Index {
            pub(crate) fn new(unit: f64) -> Self {
                Self(unit.clamp(0.0, 1.0 - f64::EPSILON))
            }

            /// Projects onto `0..len`.
            ///
            /// # Panics
            ///
            /// Panics when `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                ((self.0 * len as f64) as usize).min(len - 1)
            }
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic base seed for every proptest run (differs by case
    /// index and test name hash).
    const BASE_SEED: u64 = 0x50524F_50544553; // "PROPTES"

    /// Run configuration (subset: case count only).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 128 }
        }
    }

    /// A failed test case (carried as `Err` out of the case body by the
    /// `prop_assert*` macros).
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    /// Holds the RNG a strategy draws from.
    pub struct TestRunner {
        rng: StdRng,
    }

    impl TestRunner {
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Drives `case` for `config.cases` deterministic inputs, panicking
    /// on the first failure (no shrinking).
    pub fn run(
        config: ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut TestRunner) -> Result<(), TestCaseError>,
    ) {
        let name_hash = fnv1a(name);
        for i in 0..config.cases {
            let mut runner = TestRunner {
                rng: StdRng::seed_from_u64(
                    BASE_SEED
                        ^ name_hash
                            .wrapping_add(i as u64)
                            .wrapping_mul(0x9E3779B97F4A7C15),
                ),
            };
            if let Err(e) = case(&mut runner) {
                panic!(
                    "proptest '{name}' failed at case {i}/{}: {}",
                    config.cases, e.message
                );
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] case body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a [`proptest!`] case body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] case body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, …)`
/// runs its body against `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                $crate::test_runner::run($cfg, stringify!($name), |__runner| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __runner);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0..10usize, (a, b) in (0.0..1.0f64, 5..=6u32)) {
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!(b == 5 || b == 6, "b = {}", b);
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec((0..100u32).prop_map(|n| n * 2), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|n| n % 2 == 0));
        }

        #[test]
        fn oneof_and_index(
            n in prop_oneof![3 => 0..5i32, 1 => 100..105i32],
            i in any::<prop::sample::Index>()
        ) {
            prop_assert!((0..5).contains(&n) || (100..105).contains(&n));
            prop_assert!(i.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::test_runner::run(ProptestConfig::with_cases(3), "always_fails", |_runner| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn runs_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        crate::test_runner::run(ProptestConfig::with_cases(5), "det", |r| {
            first.push(Strategy::generate(&(0..1_000_000u64), r));
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        crate::test_runner::run(ProptestConfig::with_cases(5), "det", |r| {
            second.push(Strategy::generate(&(0..1_000_000u64), r));
            Ok(())
        });
        assert_eq!(first, second);
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }
}
