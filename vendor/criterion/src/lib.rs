//! Vendored, offline API-subset of `criterion`.
//!
//! Provides the macros and types the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`) with a
//! simple mean-of-wall-clock measurement loop instead of criterion's
//! statistical machinery. Measurement time is tunable via the
//! `CRITERION_MEASURE_MS` environment variable (default 300 ms per
//! benchmark after a short warm-up).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of a parameterised benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level harness handle.
pub struct Criterion {
    measure: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Self {
            measure: Duration::from_millis(ms),
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Parses command-line options. This subset honours `--test` (run
    /// every benchmark routine exactly once, no timing — what real
    /// criterion does for `cargo bench -- --test`, and what CI's smoke
    /// job relies on) and accepts-and-ignores the rest (notably the
    /// `--bench` flag cargo passes).
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.test_mode = true;
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let measure = self.measure;
        let test_mode = self.test_mode;
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            measure,
            test_mode,
        }
    }

    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        let measure = self.measure;
        run_benchmark(&id.to_string(), measure, self.test_mode, f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    measure: Duration,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness is time-budgeted,
    /// not sample-count-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrinks/extends the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure = d;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.measure,
            self.test_mode,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.measure,
            self.test_mode,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    measure: Duration,
    test_mode: bool,
    /// (total elapsed, iterations) accumulated by `iter`.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Smoke mode (`--test`): one iteration, no timing loop — the
        // routine's own assertions still run.
        if self.test_mode {
            let start = Instant::now();
            black_box(routine());
            self.result = Some((start.elapsed(), 1));
            return;
        }
        // Warm-up: run until ~10% of the budget is spent (at least once).
        let warmup_budget = self.measure / 10;
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= warmup_budget {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters as u32;
        // Measure in batches sized to roughly 1/20 of the budget each.
        let batch = (self.measure.as_nanos() / 20 / per_iter.as_nanos().max(1)).max(1) as u64;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.measure {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.result = Some((total, iters));
    }
}

fn run_benchmark(id: &str, measure: Duration, test_mode: bool, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        measure,
        test_mode,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(_) if test_mode => eprintln!("  {id:<48} ok (test mode, 1 iter)"),
        Some((total, iters)) => {
            let per_iter = total.as_secs_f64() / iters as f64;
            eprintln!("  {id:<48} {:>14} / iter  ({iters} iters)", human(per_iter));
        }
        None => eprintln!("  {id:<48} (no measurement: Bencher::iter never called)"),
    }
}

fn human(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Collects benchmark functions into a runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut count = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn test_mode_runs_routine_exactly_once() {
        let mut c = Criterion {
            measure: Duration::from_millis(60_000), // would hang if timed
            test_mode: true,
        };
        let mut count = 0u64;
        let mut group = c.benchmark_group("shim");
        group.bench_function("smoke", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        group.finish();
        assert_eq!(count, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
