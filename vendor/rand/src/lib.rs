//! Vendored, offline API-subset of the `rand` crate (0.9 naming).
//!
//! The build environment for this repository has no network access, so
//! the handful of `rand` APIs the workspace actually uses are provided
//! here: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random`] and [`Rng::random_range`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms and plenty for seeded test/benchmark workloads. It is NOT
//! a cryptographic RNG and makes no stability promise relative to the
//! real `rand` crate's stream values.

/// Seedable random generators (API subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a uniform value over a whole type's natural range — the
/// `StandardUniform` distribution of real `rand` ([`Rng::random`]).
pub trait Standard: Sized {
    fn sample(rng: &mut impl RngCore) -> Self;
}

/// A type usable as the argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods (API subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample over the type's natural range (`[0, 1)` for
    /// floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A biased coin flip.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A uniform `f64` in `[0, 1)` from 53 random bits.
fn unit_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform `u64` in `[0, span)` (Lemire-style, with rejection).
fn bounded_u64(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the largest multiple of `span`.
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

impl Standard for f64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut impl RngCore) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u = unit_f64(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let u = unit_f64(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .filter(|_| {
                StdRng::seed_from_u64(42).random_range(0..u64::MAX) == c.random_range(0..u64::MAX)
            })
            .count();
        assert!(same < 100);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(1..=3i32);
            assert!((1..=3).contains(&w));
            let f = rng.random_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bounds_are_reached() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5..5usize);
    }
}
