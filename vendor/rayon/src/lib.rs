//! Vendored, offline API-subset of `rayon`.
//!
//! The build environment has no network access, so this crate provides
//! the slice-parallelism subset the workspace uses: `par_iter()` on
//! slices/`Vec`s, `map`, `collect`, plus [`current_num_threads`] and
//! [`join`]. Work is distributed over contiguous chunks with
//! `std::thread::scope`; results preserve input order, so a
//! `par_iter().map(f).collect()` is **element-for-element identical** to
//! the serial `iter().map(f).collect()` whenever `f` is deterministic —
//! the property the `ExplainEngine` batch tests pin.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel operation will use.
///
/// Honors `RAYON_NUM_THREADS` when set (like real rayon), otherwise the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

pub mod iter {
    /// A parallel iterator over `&[T]`.
    pub struct ParIter<'a, T> {
        pub(crate) slice: &'a [T],
    }

    /// `par_iter().map(f)` — the only adaptor of this subset.
    pub struct ParMap<'a, T, F> {
        slice: &'a [T],
        f: F,
    }

    /// Types offering `par_iter()` (subset of rayon's
    /// `IntoParallelRefIterator`).
    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;
        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { slice: self }
        }
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
        where
            F: Fn(&T) -> R + Sync,
            R: Send,
        {
            ParMap {
                slice: self.slice,
                f,
            }
        }

        pub fn len(&self) -> usize {
            self.slice.len()
        }

        pub fn is_empty(&self) -> bool {
            self.slice.is_empty()
        }
    }

    impl<'a, T: Sync, R: Send, F: Fn(&T) -> R + Sync> ParMap<'a, T, F> {
        /// Runs the map in parallel and collects results **in input
        /// order**.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            run_ordered(self.slice, &self.f).into_iter().collect()
        }
    }

    /// Maps `f` over `slice` on up to [`super::current_num_threads`]
    /// scoped threads, one contiguous chunk each, and concatenates the
    /// chunk outputs in order.
    fn run_ordered<T: Sync, R: Send>(slice: &[T], f: &(impl Fn(&T) -> R + Sync)) -> Vec<R> {
        let n = slice.len();
        let threads = super::current_num_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return slice.iter().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = slice
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("rayon worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }
}

pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_map_matches_serial() {
        let data: Vec<u64> = (0..10_000).collect();
        let par: Vec<u64> = data.par_iter().map(|x| x * x).collect();
        let ser: Vec<u64> = data.iter().map(|x| x * x).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn short_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let got: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(got.is_empty());
        let one = [7u32];
        let got: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(got, vec![8]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }
}
